//! Integration: the hand-coded ZenOrb and the component-assembled
//! Compadres ORB must be observationally equivalent — same protocol, same
//! replies, same failure behavior — since the paper's comparison assumes
//! functional parity ("the Compadres ORB can be considered to be
//! functionally similar to RTZen", §3.3).

use std::sync::Arc;

use rtcorba::service::{EchoServant, ObjectRegistry, Servant};
use rtcorba::{ClientBuilder, OrbError, ServerBuilder};

struct AddServant;

impl Servant for AddServant {
    fn invoke(&self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        match operation {
            "sum" => {
                let mut dec = rtcorba::cdr::CdrDecoder::new(args, rtcorba::cdr::Endian::Big);
                let a = dec.read_i32().map_err(|e| e.to_string())?;
                let b = dec.read_i32().map_err(|e| e.to_string())?;
                let mut enc = rtcorba::cdr::CdrEncoder::new(rtcorba::cdr::Endian::Big);
                enc.write_i32(a + b);
                Ok(enc.into_bytes())
            }
            other => Err(format!("no operation {other:?}")),
        }
    }
}

fn registry() -> Arc<ObjectRegistry> {
    let reg = ObjectRegistry::new();
    reg.register(b"echo".to_vec(), Arc::new(EchoServant));
    reg.register(b"calc".to_vec(), Arc::new(AddServant));
    Arc::new(reg)
}

fn sum_args(a: i32, b: i32) -> Vec<u8> {
    let mut enc = rtcorba::cdr::CdrEncoder::new(rtcorba::cdr::Endian::Big);
    enc.write_i32(a);
    enc.write_i32(b);
    enc.into_bytes()
}

fn decode_sum(reply: &[u8]) -> i32 {
    rtcorba::cdr::CdrDecoder::new(reply, rtcorba::cdr::Endian::Big)
        .read_i32()
        .unwrap()
}

#[test]
fn both_orbs_compute_the_same_results_over_tcp() {
    let zen_server = ServerBuilder::new(registry()).serve_zen().unwrap();
    let zen = ClientBuilder::new()
        .connect_zen(zen_server.addr().unwrap())
        .unwrap();
    let corb_server = ServerBuilder::new(registry()).serve().unwrap();
    let corb = ClientBuilder::new()
        .connect(corb_server.addr().unwrap())
        .unwrap();

    for (a, b) in [(1, 2), (-5, 5), (i32::MAX - 1, 1), (1000, -2000)] {
        let args = sum_args(a, b);
        let z = decode_sum(&zen.invoke(b"calc", "sum", &args).unwrap());
        let c = decode_sum(&corb.invoke(b"calc", "sum", &args).unwrap());
        assert_eq!(z, c, "orbs disagree on {a}+{b}");
        assert_eq!(z, a.wrapping_add(b));
    }

    // Large payload echo parity.
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    assert_eq!(
        zen.invoke(b"echo", "echo", &payload).unwrap(),
        corb.invoke(b"echo", "echo", &payload).unwrap()
    );

    zen_server.shutdown();
    corb_server.shutdown();
}

#[test]
fn both_orbs_report_the_same_failures() {
    let zen_server = ServerBuilder::new(registry()).serve_zen().unwrap();
    let zen = ClientBuilder::new()
        .connect_zen(zen_server.addr().unwrap())
        .unwrap();
    let corb_server = ServerBuilder::new(registry()).serve().unwrap();
    let corb = ClientBuilder::new()
        .connect(corb_server.addr().unwrap())
        .unwrap();

    // Unknown object.
    assert!(matches!(
        zen.invoke(b"ghost", "echo", &[]),
        Err(OrbError::ObjectNotExist)
    ));
    assert!(matches!(
        corb.invoke(b"ghost", "echo", &[]),
        Err(OrbError::ObjectNotExist)
    ));

    // Servant exception carries the same message.
    let zen_msg = match zen.invoke(b"calc", "nope", &[]) {
        Err(OrbError::Exception(m)) => m,
        other => panic!("zen: expected exception, got {other:?}"),
    };
    let corb_msg = match corb.invoke(b"calc", "nope", &[]) {
        Err(OrbError::Exception(m)) => m,
        other => panic!("corb: expected exception, got {other:?}"),
    };
    assert_eq!(zen_msg, corb_msg);

    zen_server.shutdown();
    corb_server.shutdown();
}

#[test]
fn orbs_interoperate_on_the_wire() {
    // The GIOP implementations are one and the same substrate, so a Zen
    // client can talk to a Compadres server and vice versa.
    let corb_server = ServerBuilder::new(registry()).serve().unwrap();
    let zen_client = ClientBuilder::new()
        .connect_zen(corb_server.addr().unwrap())
        .unwrap();
    assert_eq!(
        zen_client.invoke(b"echo", "echo", &[1, 2, 3]).unwrap(),
        vec![1, 2, 3]
    );

    let zen_server = ServerBuilder::new(registry()).serve_zen().unwrap();
    let corb_client = ClientBuilder::new()
        .connect(zen_server.addr().unwrap())
        .unwrap();
    assert_eq!(
        decode_sum(
            &corb_client
                .invoke(b"calc", "sum", &sum_args(20, 22))
                .unwrap()
        ),
        42
    );

    corb_server.shutdown();
    zen_server.shutdown();
}

#[test]
fn concurrent_clients_against_one_compadres_server() {
    let server = ServerBuilder::new(registry()).serve().unwrap();
    let addr = server.addr().unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        handles.push(std::thread::spawn(move || {
            let client = ClientBuilder::new().connect(addr).unwrap();
            for i in 0..50i32 {
                let reply = client.invoke(b"calc", "sum", &sum_args(t, i)).unwrap();
                assert_eq!(decode_sum(&reply), t + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn zero_and_empty_payloads() {
    let server = ServerBuilder::new(registry()).serve().unwrap();
    let client = ClientBuilder::new()
        .connect(server.addr().unwrap())
        .unwrap();
    assert_eq!(
        client.invoke(b"echo", "echo", &[]).unwrap(),
        Vec::<u8>::new()
    );
    server.shutdown();
}
