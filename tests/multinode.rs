//! Deterministic multi-node failover test (DESIGN.md §5k).
//!
//! Spawns the full `FanIn` deployment as child processes on loopback —
//! two naming shards, the primary hub, its standby replica, two edge
//! senders — kills the primary exporter at a seeded point mid-traffic,
//! and asserts that:
//!
//! * membership detects the kill and every edge fails over exactly
//!   once, to the replica endpoint named in the deployment manifest;
//! * the primary endpoint name is rebound through sharded naming, so
//!   fresh clients resolve it to the standby;
//! * every post-kill reading reaches the standby — zero high-band
//!   deadline misses (the trace-budget counter stays 0) and zero
//!   admission rejections;
//! * each edge's membership/failover history satisfies the `rtcheck`
//!   membership specification (no failover without suspicion, rebind
//!   exactly once, no split-brain).
//!
//! Custom harness: children re-execute this binary with a role env var
//! (see `compadres_suite::multinode`).

use compadres_suite::multinode::{self, manifest, run_cluster};

fn main() {
    multinode::dispatch_child_role();

    // The manifest drives everything: sanity-check its shape first so a
    // partitioner regression fails here, not as a hung cluster.
    let dep = manifest();
    assert!(
        dep.nodes.len() >= 3,
        "placed CCL must partition into per-node plans, got {}",
        dep.nodes.len()
    );
    assert_eq!(dep.cross_links.len(), 2, "both sensor links cross nodes");
    let primary_ep = &dep.node("hub").unwrap().exports[0].endpoint;
    let standby_ep = &dep.node("standby").unwrap().exports[0].endpoint;
    assert_eq!(primary_ep, "FanIn/hub/H.In");
    assert_eq!(standby_ep, "FanIn/standby/H.In");

    let count = 240;
    let r = run_cluster(count, 0xC0FFEE);
    println!(
        "cluster run: {} readings/edge, primary killed at {}",
        r.count, r.kill_at
    );

    assert_eq!(r.edges.len(), 2);
    let mut high_after_total = 0;
    for e in &r.edges {
        assert_eq!(e.sent, count, "[{}] sent everything", e.node);
        assert_eq!(e.failovers, 1, "[{}] exactly one failover", e.node);
        assert_eq!(
            e.active, *standby_ep,
            "[{}] traffic ends on the standby endpoint",
            e.node
        );
        assert!(
            e.high_after >= 1,
            "[{}] seeded traffic must include post-kill high-band sends",
            e.node
        );
        high_after_total += e.high_after;

        // The real history must satisfy the model-based membership
        // spec — the same checker that rejects phantom failovers and
        // double rebinds in the seeded rtcheck sweep.
        if let Err(v) = rtcheck::membership::check(&e.history) {
            panic!("[{}] membership history violates the spec: {v}", e.node);
        }
        println!(
            "[{}] failover {:.1} ms, recovery {:.1} ms",
            e.node,
            e.failover_ms(),
            e.recovery_ms()
        );
    }

    // Everything sent at or after the kill point lands on the standby:
    // the canary is uncounted, so received may exceed the floor by at
    // most one per edge.
    let floor = 2 * (count - r.kill_at);
    assert!(
        r.standby.received >= floor && r.standby.received <= floor + 2,
        "standby received {} readings, expected {floor}..={}",
        r.standby.received,
        floor + 2
    );
    assert_eq!(
        r.standby.high, high_after_total,
        "every post-kill high-band reading reaches the standby"
    );
    assert_eq!(r.standby.rejected, 0, "no admission rejections");
    assert_eq!(
        r.standby.deadline_misses, 0,
        "zero high-band deadline misses through the failover"
    );
    assert!(
        r.primary_resolves_to_standby,
        "primary endpoint name must resolve to the standby after rebind"
    );
    println!(
        "multinode failover OK: standby took {} readings ({} high-band), 0 deadline misses",
        r.standby.received, r.standby.high
    );
}
