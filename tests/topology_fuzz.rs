//! Topology fuzzing: generate random component hierarchies with random
//! (legal) connections, build them, and pump traffic through every
//! connection — the framework must route, activate, and reclaim correctly
//! for *any* valid composition, not just the hand-written ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use compadres_core::{AppBuilder, HandlerCtx, Priority};
use rtplatform::rng::SplitMix64;

#[derive(Debug, Default, Clone)]
struct Packet {
    // Carried payload; handlers only count deliveries.
    #[allow(dead_code)]
    hops: u32,
}

/// A generated instance: its parent (index into the list, or none for a
/// root child of the immortal anchor) — forming a random tree.
#[derive(Debug, Clone)]
struct TopologySpec {
    /// parent[i] = Some(j < i) or None (child of the immortal root).
    parents: Vec<Option<usize>>,
    /// Connections as (from_instance, to_instance), filtered to legal
    /// pairs at build time.
    raw_links: Vec<(usize, usize)>,
    /// Per-instance synchronous flag for its in-port.
    sync: Vec<bool>,
}

fn topology(rng: &mut SplitMix64) -> TopologySpec {
    let n = rng.range_usize(2, 8);
    let parents = (0..n)
        .map(|i| {
            if i == 0 || rng.chance(0.5) {
                None
            } else {
                Some(rng.below(i))
            }
        })
        .collect();
    let raw_links = (0..rng.below(12))
        .map(|_| (rng.below(n), rng.below(n)))
        .collect();
    let sync = (0..n).map(|_| rng.chance(0.5)).collect();
    TopologySpec {
        parents,
        raw_links,
        sync,
    }
}

/// Computes the ancestry chain (instance indices, self first).
fn chain(parents: &[Option<usize>], mut i: usize) -> Vec<usize> {
    let mut out = vec![i];
    while let Some(p) = parents[i] {
        out.push(p);
        i = p;
    }
    out
}

/// Is a link i → j legal under the paper's rules (parent/child, sibling,
/// or ancestor/descendant)? Mirrors the validator's geometry so the fuzz
/// harness only emits compositions that must build.
fn legal(parents: &[Option<usize>], i: usize, j: usize) -> bool {
    if i == j {
        return false;
    }
    let ci = chain(parents, i);
    let cj = chain(parents, j);
    // Ancestor/descendant?
    if ci.contains(&j) || cj.contains(&i) {
        return true;
    }
    // Siblings (same parent)?
    parents[i] == parents[j]
}

fn depth(parents: &[Option<usize>], i: usize) -> usize {
    chain(parents, i).len()
}

fn build_documents(spec: &TopologySpec) -> Option<(String, String, usize)> {
    // Filter to legal, deduplicated links.
    let mut links: Vec<(usize, usize)> = Vec::new();
    for &(a, b) in &spec.raw_links {
        if legal(&spec.parents, a, b) && !links.contains(&(a, b)) {
            links.push((a, b));
        }
    }
    if links.is_empty() {
        return None;
    }

    let cdl = r#"
      <Components>
        <Component><ComponentName>Node</ComponentName>
          <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>Packet</MessageType></Port>
          <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Packet</MessageType></Port>
        </Component>
      </Components>"#
        .to_string();

    // Emit the CCL tree under a single immortal anchor.
    fn emit(spec: &TopologySpec, links: &[(usize, usize)], node: usize, out: &mut String) {
        let level = depth(&spec.parents, node);
        let attrs = if spec.sync[node] {
            "<MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize>"
                .to_string()
        } else {
            "<BufferSize>64</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>2</MaxThreadpoolSize>".to_string()
        };
        out.push_str(&format!(
            r#"<Component><InstanceName>N{node}</InstanceName><ClassName>Node</ClassName>
               <ComponentType>Scoped</ComponentType><ScopeLevel>{level}</ScopeLevel>
               <Connection>
                 <Port><PortName>In</PortName><PortAttributes>{attrs}</PortAttributes></Port>"#
        ));
        // Links declared on the source's Out port... but an Out port can
        // appear once per <Port>; merge all of this node's links.
        let mut port = String::new();
        for &(a, b) in links.iter().filter(|&&(a, _)| a == node) {
            let _ = a;
            port.push_str(&format!(
                "<Link><ToComponent>N{b}</ToComponent><ToPort>In</ToPort></Link>"
            ));
        }
        if !port.is_empty() {
            out.push_str(&format!("<Port><PortName>Out</PortName>{port}</Port>"));
        }
        out.push_str("</Connection>");
        for child in 0..spec.parents.len() {
            if spec.parents[child] == Some(node) {
                emit(spec, links, child, out);
            }
        }
        out.push_str("</Component>");
    }

    let mut body = String::new();
    for root in 0..spec.parents.len() {
        if spec.parents[root].is_none() {
            emit(spec, &links, root, &mut body);
        }
    }
    let max_level = (0..spec.parents.len())
        .map(|i| depth(&spec.parents, i))
        .max()
        .unwrap_or(1);
    let mut pools = String::new();
    for level in 1..=max_level {
        pools.push_str(&format!(
            "<ScopedPool><ScopeLevel>{level}</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>4</PoolSize></ScopedPool>"
        ));
    }
    let ccl = format!(
        r#"<Application><ApplicationName>Fuzz</ApplicationName>
        <Component><InstanceName>Anchor</InstanceName><ClassName>Node</ClassName><ComponentType>Immortal</ComponentType>
        {body}
        </Component>
        <RTSJAttributes><ImmortalSize>8000000</ImmortalSize>{pools}</RTSJAttributes>
        </Application>"#
    );
    Some((cdl, ccl, links.len()))
}

#[test]
fn any_legal_topology_builds_and_routes() {
    let mut rng = SplitMix64::new(0x70B0);
    for case in 0..24 {
        let spec = topology(&mut rng);
        let Some((cdl, ccl, n_links)) = build_documents(&spec) else {
            continue; // no links generated; nothing to test
        };
        let received = Arc::new(AtomicU64::new(0));
        let r2 = Arc::clone(&received);
        let app = AppBuilder::from_xml(&cdl, &ccl)
            .unwrap()
            .bind_message_type::<Packet>("Packet")
            .register_handler("Node", "In", move || {
                let r = Arc::clone(&r2);
                move |_msg: &mut Packet, _ctx: &mut HandlerCtx<'_>| {
                    r.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }
            })
            .build()
            .unwrap_or_else(|e| {
                panic!("case {case}: legal topology failed to build: {e}\nCCL:\n{ccl}")
            });
        app.start().unwrap();

        // Fire every instance's out-port (fan-out aware) three times.
        let mut sent = 0u64;
        for round in 0..3 {
            for i in 0..spec.parents.len() {
                let name = format!("N{i}");
                let delivered = app
                    .with_component(&name, |ctx| {
                        ctx.send_cloned("Out", &Packet { hops: round }, Priority::new(5))
                    })
                    .unwrap();
                match delivered {
                    Ok(n) => sent += n as u64,
                    Err(compadres_core::CompadresError::NotFound { .. }) => {
                        // Unconnected out-port: legal, nothing delivered.
                    }
                    Err(e) => panic!("send failed: {e}"),
                }
            }
        }
        assert!(app.wait_quiescent(Duration::from_secs(10)));
        assert_eq!(received.load(Ordering::SeqCst), sent);
        assert!(
            sent >= n_links as u64,
            "each link fired at least once per round"
        );

        // After the dust settles nothing leaks: scoped instances without
        // holds are inactive and pools are back to full.
        app.shutdown();
        let stats = app.stats();
        assert_eq!(stats.handler_panics, 0);
        assert_eq!(stats.buffer_rejections, 0);
    }
}

/// Non-random companion: a dense hand-picked topology exercising every
/// link class at once (internal both directions, sibling, shadow down,
/// shadow up), to guarantee the fuzz harness's emit path covers them.
#[test]
fn dense_reference_topology() {
    let spec = TopologySpec {
        //            N0    N1        N2        N3        N4
        parents: vec![None, Some(0), Some(1), Some(0), None],
        raw_links: vec![
            (0, 1), // parent -> child (internal)
            (2, 0), // grandchild -> grandparent (shadow up)
            (0, 2), // grandparent -> grandchild (shadow down)
            (1, 3), // siblings? N1 parent 0, N3 parent 0 -> siblings
            (0, 4), // roots N0 and N4: siblings under the anchor
            (4, 0),
        ],
        sync: vec![true, false, true, false, true],
    };
    let (cdl, ccl, n_links) = build_documents(&spec).expect("links exist");
    assert_eq!(n_links, 6, "all six links are legal");
    let received = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&received);
    let app = AppBuilder::from_xml(&cdl, &ccl)
        .unwrap()
        .bind_message_type::<Packet>("Packet")
        .register_handler("Node", "In", move || {
            let r = Arc::clone(&r2);
            move |_msg: &mut Packet, _ctx: &mut HandlerCtx<'_>| {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        })
        .build()
        .unwrap();
    app.start().unwrap();
    let mut sent = 0u64;
    for i in 0..spec.parents.len() {
        if let Ok(n) = app
            .with_component(&format!("N{i}"), |ctx| {
                ctx.send_cloned("Out", &Packet { hops: 1 }, Priority::new(5))
            })
            .unwrap()
        {
            sent += n as u64;
        }
    }
    assert_eq!(sent, 6);
    assert!(app.wait_quiescent(Duration::from_secs(10)));
    assert_eq!(received.load(Ordering::SeqCst), 6);
}
