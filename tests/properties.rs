//! Property-based tests over the core substrates: CDR marshalling, XML
//! round-trips, priority queues and the scoped-memory invariants.

use proptest::prelude::*;

// ---------------------------------------------------------------------
// CDR marshalling
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CdrValue {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I32(i32),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Octets(Vec<u8>),
}

fn cdr_value() -> impl Strategy<Value = CdrValue> {
    prop_oneof![
        any::<u8>().prop_map(CdrValue::U8),
        any::<u16>().prop_map(CdrValue::U16),
        any::<u32>().prop_map(CdrValue::U32),
        any::<u64>().prop_map(CdrValue::U64),
        any::<i32>().prop_map(CdrValue::I32),
        any::<i64>().prop_map(CdrValue::I64),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(CdrValue::F64),
        any::<bool>().prop_map(CdrValue::Bool),
        "[a-zA-Z0-9 _:-]{0,40}".prop_map(CdrValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(CdrValue::Octets),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdr_roundtrips_any_value_sequence(
        values in proptest::collection::vec(cdr_value(), 0..20),
        little in any::<bool>(),
    ) {
        use rtcorba::cdr::{CdrDecoder, CdrEncoder, Endian};
        let endian = if little { Endian::Little } else { Endian::Big };
        let mut enc = CdrEncoder::new(endian);
        for v in &values {
            match v {
                CdrValue::U8(x) => enc.write_u8(*x),
                CdrValue::U16(x) => enc.write_u16(*x),
                CdrValue::U32(x) => enc.write_u32(*x),
                CdrValue::U64(x) => enc.write_u64(*x),
                CdrValue::I32(x) => enc.write_i32(*x),
                CdrValue::I64(x) => enc.write_i64(*x),
                CdrValue::F64(x) => enc.write_f64(*x),
                CdrValue::Bool(x) => enc.write_bool(*x),
                CdrValue::Str(x) => enc.write_string(x),
                CdrValue::Octets(x) => enc.write_octets(x),
            }
        }
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, endian);
        for v in &values {
            match v {
                CdrValue::U8(x) => prop_assert_eq!(dec.read_u8().unwrap(), *x),
                CdrValue::U16(x) => prop_assert_eq!(dec.read_u16().unwrap(), *x),
                CdrValue::U32(x) => prop_assert_eq!(dec.read_u32().unwrap(), *x),
                CdrValue::U64(x) => prop_assert_eq!(dec.read_u64().unwrap(), *x),
                CdrValue::I32(x) => prop_assert_eq!(dec.read_i32().unwrap(), *x),
                CdrValue::I64(x) => prop_assert_eq!(dec.read_i64().unwrap(), *x),
                CdrValue::F64(x) => prop_assert_eq!(dec.read_f64().unwrap(), *x),
                CdrValue::Bool(x) => prop_assert_eq!(dec.read_bool().unwrap(), *x),
                CdrValue::Str(x) => prop_assert_eq!(&dec.read_string().unwrap(), x),
                CdrValue::Octets(x) => prop_assert_eq!(&dec.read_octets().unwrap(), x),
            }
        }
        prop_assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn giop_request_roundtrips(
        request_id in any::<u32>(),
        response_expected in any::<bool>(),
        object_key in proptest::collection::vec(any::<u8>(), 0..32),
        operation in "[a-zA-Z_][a-zA-Z0-9_]{0,20}",
        body in proptest::collection::vec(any::<u8>(), 0..256),
        little in any::<bool>(),
    ) {
        use rtcorba::cdr::Endian;
        use rtcorba::giop::{decode, Message, RequestMessage};
        let endian = if little { Endian::Little } else { Endian::Big };
        let req = RequestMessage { request_id, response_expected, object_key, operation, body };
        let frame = req.encode(endian);
        match decode(&frame).unwrap() {
            Message::Request(r) => prop_assert_eq!(r, req),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------
// XML round-trips
// ---------------------------------------------------------------------

fn xml_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,10}"
}

fn xml_text() -> impl Strategy<Value = String> {
    // Leading/trailing whitespace is trimmed by the parser; interior
    // whitespace sequences must survive. Keep to printable characters
    // without raw markup (the writer escapes <>& anyway — include them!).
    "[a-zA-Z0-9<>&'\" _;:,!-]{0,24}".prop_map(|s| s.trim().to_string())
}

fn xml_tree() -> impl Strategy<Value = rtxml::Element> {
    let leaf = (xml_name(), xml_text(), proptest::collection::vec((xml_name(), xml_text()), 0..3))
        .prop_map(|(name, text, attr_pairs)| {
            let mut e = rtxml::Element::new(name).with_text(text);
            for (i, (n, v)) in attr_pairs.into_iter().enumerate() {
                // Attribute names must be unique per element.
                e = e.with_attr(format!("{n}{i}"), v);
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (xml_name(), proptest::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut e = rtxml::Element::new(name);
            for c in children {
                e = e.with_child(c);
            }
            e
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_print_parse_roundtrip(tree in xml_tree()) {
        let printed = rtxml::to_string(&tree);
        let parsed = rtxml::parse(&printed).unwrap();
        prop_assert_eq!(parsed, tree);
    }
}

// ---------------------------------------------------------------------
// Priority FIFO ordering
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn priority_fifo_orders_correctly(items in proptest::collection::vec((1u8..99, any::<u16>()), 0..200)) {
        use rtsched::{Priority, PriorityFifo};
        let q = PriorityFifo::new();
        for (p, tag) in &items {
            q.push(Priority::new(*p), *tag);
        }
        let mut popped = Vec::new();
        while let Some((p, tag)) = q.try_pop() {
            popped.push((p, tag));
        }
        prop_assert_eq!(popped.len(), items.len());
        // Priorities are non-increasing.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 >= w[1].0);
        }
        // Within each priority band, arrival order is preserved.
        for p in popped.iter().map(|(p, _)| *p).collect::<std::collections::BTreeSet<_>>() {
            let expected: Vec<u16> = items
                .iter()
                .filter(|(ip, _)| rtsched::Priority::new(*ip) == p)
                .map(|(_, t)| *t)
                .collect();
            let got: Vec<u16> = popped.iter().filter(|(pp, _)| *pp == p).map(|(_, t)| *t).collect();
            prop_assert_eq!(got, expected);
        }
    }
}

// ---------------------------------------------------------------------
// Scoped-memory invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entering a random chain of scopes, allocating along the way, then
    /// unwinding: accounting balances, references die exactly when their
    /// scope is reclaimed, and ancestor references always stay legal.
    #[test]
    fn scope_chain_lifecycle(depth in 1usize..5, allocs in proptest::collection::vec(1usize..200, 1..10)) {
        use rtmem::{Ctx, MemoryModel};
        let model = MemoryModel::new();
        let regions: Vec<_> = (0..depth).map(|_| model.create_scoped(64 << 10).unwrap()).collect();
        let mut ctx = Ctx::no_heap(&model);

        fn descend(
            ctx: &mut Ctx,
            model: &MemoryModel,
            regions: &[rtmem::RegionId],
            allocs: &[usize],
            refs: &mut Vec<rtmem::RBytes>,
        ) {
            match regions.split_first() {
                None => {
                    for &len in allocs {
                        refs.push(ctx.alloc_bytes(len).unwrap());
                    }
                    // Deepest scope may reference every ancestor.
                    for r in refs.iter() {
                        assert!(model.may_reference(ctx.current(), r.region()).unwrap()
                            || r.region() == ctx.current());
                    }
                }
                Some((&head, rest)) => {
                    ctx.enter(head, |ctx| {
                        refs.push(ctx.alloc_bytes(8).unwrap());
                        descend(ctx, model, rest, allocs, refs);
                    })
                    .unwrap();
                }
            }
        }

        let mut refs = Vec::new();
        descend(&mut ctx, &model, &regions, &allocs, &mut refs);

        // Everything reclaimed after the unwind: all references stale,
        // accounting at zero, parents cleared.
        for r in &refs {
            let stale = matches!(r.to_vec(&ctx), Err(rtmem::RtmemError::StaleReference { .. }));
            prop_assert!(stale);
        }
        for &region in &regions {
            let snap = model.snapshot(region).unwrap();
            prop_assert_eq!(snap.used, 0);
            prop_assert_eq!(snap.entered, 0);
            prop_assert_eq!(snap.parent, None);
            prop_assert_eq!(snap.epoch, 1);
        }
    }

    /// Allocation accounting never exceeds the configured budget, and the
    /// error is reported exactly when it would.
    #[test]
    fn region_budget_is_respected(budget in 64usize..4096, sizes in proptest::collection::vec(1usize..512, 1..40)) {
        use rtmem::{Ctx, MemoryModel, RtmemError};
        let model = MemoryModel::new();
        let region = model.create_scoped(budget).unwrap();
        let mut ctx = Ctx::no_heap(&model);
        ctx.enter(region, |ctx| {
            let mut used = 0usize;
            for &len in &sizes {
                let aligned = (len + 7) & !7;
                match ctx.alloc_bytes(len) {
                    Ok(_) => {
                        used += aligned;
                        assert!(used <= budget, "over budget: {used} > {budget}");
                    }
                    Err(RtmemError::OutOfMemory { .. }) => {
                        assert!(used + aligned > budget, "spurious OOM at used={used}, len={len}");
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
                let snap = model.snapshot(region).unwrap();
                assert_eq!(snap.used, used);
            }
        }).unwrap();
    }
}

// ---------------------------------------------------------------------
// Validation properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sibling fan-out composition validates, and injecting a
    /// self-loop always breaks it.
    #[test]
    fn sibling_fanout_validates_and_self_loop_never_does(n in 1usize..6) {
        let cdl = r#"
          <Components>
            <Component><ComponentName>Hub</ComponentName>
              <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
              <Port><PortName>In</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
            <Component><ComponentName>Spoke</ComponentName>
              <Port><PortName>In</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
          </Components>"#;
        let mut spokes = String::new();
        let mut links = String::new();
        for i in 0..n {
            spokes.push_str(&format!(
                "<Component><InstanceName>S{i}</InstanceName><ClassName>Spoke</ClassName>\
                 <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel></Component>"
            ));
            links.push_str(&format!(
                "<Link><ToComponent>S{i}</ToComponent><ToPort>In</ToPort></Link>"
            ));
        }
        let ccl_ok = format!(
            r#"<Application><ApplicationName>FanOut</ApplicationName>
            <Component><InstanceName>H</InstanceName><ClassName>Hub</ClassName><ComponentType>Immortal</ComponentType>
              <Connection><Port><PortName>Out</PortName>{links}</Port></Connection>
              {spokes}
            </Component></Application>"#
        );
        let parsed_cdl = compadres_core::parse_cdl(cdl).unwrap();
        let parsed_ccl = compadres_core::parse_ccl(&ccl_ok).unwrap();
        let app = compadres_core::validate(&parsed_cdl, &parsed_ccl).unwrap();
        prop_assert_eq!(app.connections.len(), n);

        // Now add a self-loop on the hub: must be rejected.
        let ccl_loop = ccl_ok.replace(
            "</Port></Connection>",
            "<Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link></Port></Connection>",
        );
        let parsed_loop = compadres_core::parse_ccl(&ccl_loop).unwrap();
        prop_assert!(compadres_core::validate(&parsed_cdl, &parsed_loop).is_err());
    }
}
