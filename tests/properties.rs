//! Randomized property tests over the core substrates: CDR marshalling,
//! XML round-trips, priority queues and the scoped-memory invariants.
//!
//! Formerly proptest suites; now seeded [`SplitMix64`] sweeps so the
//! workspace builds fully offline. Seeds are fixed, so failures are
//! reproducible — to shrink, bisect the case counter.

use rtplatform::rng::SplitMix64;

fn rand_string(
    rng: &mut SplitMix64,
    charset: &[u8],
    first: Option<&[u8]>,
    max_len: usize,
) -> String {
    let mut s = String::new();
    if let Some(first) = first {
        s.push(first[rng.below(first.len())] as char);
    }
    let len = rng.below(max_len + 1);
    for _ in 0..len {
        s.push(charset[rng.below(charset.len())] as char);
    }
    s
}

fn rand_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    (0..rng.below(max_len + 1))
        .map(|_| rng.next_u64() as u8)
        .collect()
}

// ---------------------------------------------------------------------
// CDR marshalling
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CdrValue {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I32(i32),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Octets(Vec<u8>),
}

fn cdr_value(rng: &mut SplitMix64) -> CdrValue {
    const STR_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _:-";
    match rng.below(10) {
        0 => CdrValue::U8(rng.next_u64() as u8),
        1 => CdrValue::U16(rng.next_u64() as u16),
        2 => CdrValue::U32(rng.next_u64() as u32),
        3 => CdrValue::U64(rng.next_u64()),
        4 => CdrValue::I32(rng.next_u64() as i32),
        5 => CdrValue::I64(rng.next_u64() as i64),
        6 => CdrValue::F64(rng.range_f64(-1e12, 1e12)),
        7 => CdrValue::Bool(rng.chance(0.5)),
        8 => CdrValue::Str(rand_string(rng, STR_CHARS, None, 40)),
        _ => CdrValue::Octets(rand_bytes(rng, 64)),
    }
}

#[test]
fn cdr_roundtrips_any_value_sequence() {
    use rtcorba::cdr::{CdrDecoder, CdrEncoder, Endian};
    let mut rng = SplitMix64::new(0xCD2);
    for _case in 0..128 {
        let endian = if rng.chance(0.5) {
            Endian::Little
        } else {
            Endian::Big
        };
        let values: Vec<CdrValue> = (0..rng.below(20)).map(|_| cdr_value(&mut rng)).collect();
        let mut enc = CdrEncoder::new(endian);
        for v in &values {
            match v {
                CdrValue::U8(x) => enc.write_u8(*x),
                CdrValue::U16(x) => enc.write_u16(*x),
                CdrValue::U32(x) => enc.write_u32(*x),
                CdrValue::U64(x) => enc.write_u64(*x),
                CdrValue::I32(x) => enc.write_i32(*x),
                CdrValue::I64(x) => enc.write_i64(*x),
                CdrValue::F64(x) => enc.write_f64(*x),
                CdrValue::Bool(x) => enc.write_bool(*x),
                CdrValue::Str(x) => enc.write_string(x),
                CdrValue::Octets(x) => enc.write_octets(x),
            }
        }
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, endian);
        for v in &values {
            match v {
                CdrValue::U8(x) => assert_eq!(dec.read_u8().unwrap(), *x),
                CdrValue::U16(x) => assert_eq!(dec.read_u16().unwrap(), *x),
                CdrValue::U32(x) => assert_eq!(dec.read_u32().unwrap(), *x),
                CdrValue::U64(x) => assert_eq!(dec.read_u64().unwrap(), *x),
                CdrValue::I32(x) => assert_eq!(dec.read_i32().unwrap(), *x),
                CdrValue::I64(x) => assert_eq!(dec.read_i64().unwrap(), *x),
                CdrValue::F64(x) => assert_eq!(dec.read_f64().unwrap(), *x),
                CdrValue::Bool(x) => assert_eq!(dec.read_bool().unwrap(), *x),
                CdrValue::Str(x) => assert_eq!(&dec.read_string().unwrap(), x),
                CdrValue::Octets(x) => assert_eq!(&dec.read_octets().unwrap(), x),
            }
        }
        assert_eq!(dec.remaining(), 0);
    }
}

#[test]
fn giop_request_roundtrips() {
    use rtcorba::cdr::Endian;
    use rtcorba::giop::{decode, Message, RequestMessage};
    const OP_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
    const OP_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let mut rng = SplitMix64::new(0x610);
    for _case in 0..128 {
        let endian = if rng.chance(0.5) {
            Endian::Little
        } else {
            Endian::Big
        };
        let req = RequestMessage {
            request_id: rng.next_u64() as u32,
            response_expected: rng.chance(0.5),
            object_key: rand_bytes(&mut rng, 32),
            operation: rand_string(&mut rng, OP_CHARS, Some(OP_FIRST), 20),
            body: rand_bytes(&mut rng, 256),
            service_context: Vec::new(),
        };
        let frame = req.encode(endian);
        match decode(&frame).unwrap() {
            Message::Request(r) => assert_eq!(r, req),
            other => panic!("unexpected {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// XML round-trips
// ---------------------------------------------------------------------

fn xml_name(rng: &mut SplitMix64) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    rand_string(rng, REST, Some(FIRST), 10)
}

fn xml_text(rng: &mut SplitMix64) -> String {
    // Leading/trailing whitespace is trimmed by the parser; interior
    // whitespace sequences must survive. Keep to printable characters
    // without raw markup (the writer escapes <>& anyway — include them!).
    const CHARS: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789<>&'\" _;:,!-";
    rand_string(rng, CHARS, None, 24).trim().to_string()
}

fn xml_tree(rng: &mut SplitMix64, depth: usize) -> rtxml::Element {
    if depth == 0 || rng.chance(0.4) {
        let mut e = rtxml::Element::new(xml_name(rng)).with_text(xml_text(rng));
        for i in 0..rng.below(3) {
            // Attribute names must be unique per element.
            e = e.with_attr(format!("{}{i}", xml_name(rng)), xml_text(rng));
        }
        e
    } else {
        let mut e = rtxml::Element::new(xml_name(rng));
        for _ in 0..rng.below(4) {
            e = e.with_child(xml_tree(rng, depth - 1));
        }
        e
    }
}

#[test]
fn xml_print_parse_roundtrip() {
    let mut rng = SplitMix64::new(0x3717);
    for _case in 0..128 {
        let tree = xml_tree(&mut rng, 3);
        let printed = rtxml::to_string(&tree);
        let parsed = rtxml::parse(&printed).unwrap();
        assert_eq!(parsed, tree, "printed form:\n{printed}");
    }
}

// ---------------------------------------------------------------------
// Priority FIFO ordering
// ---------------------------------------------------------------------

#[test]
fn priority_fifo_orders_correctly() {
    use rtsched::{Priority, PriorityFifo};
    let mut rng = SplitMix64::new(0xF1F0);
    for _case in 0..128 {
        let items: Vec<(u8, u16)> = (0..rng.below(200))
            .map(|_| (rng.range_usize(1, 99) as u8, rng.next_u64() as u16))
            .collect();
        let q = PriorityFifo::new();
        for (p, tag) in &items {
            q.push(Priority::new(*p), *tag);
        }
        let mut popped = Vec::new();
        while let Some((p, tag)) = q.try_pop() {
            popped.push((p, tag));
        }
        assert_eq!(popped.len(), items.len());
        // Priorities are non-increasing.
        for w in popped.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
        // Within each priority band, arrival order is preserved.
        for p in popped
            .iter()
            .map(|(p, _)| *p)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let expected: Vec<u16> = items
                .iter()
                .filter(|(ip, _)| rtsched::Priority::new(*ip) == p)
                .map(|(_, t)| *t)
                .collect();
            let got: Vec<u16> = popped
                .iter()
                .filter(|(pp, _)| *pp == p)
                .map(|(_, t)| *t)
                .collect();
            assert_eq!(got, expected);
        }
    }
}

// ---------------------------------------------------------------------
// Scoped-memory invariants
// ---------------------------------------------------------------------

/// Entering a random chain of scopes, allocating along the way, then
/// unwinding: accounting balances, references die exactly when their
/// scope is reclaimed, and ancestor references always stay legal.
#[test]
fn scope_chain_lifecycle() {
    use rtmem::{Ctx, MemoryModel};

    fn descend(
        ctx: &mut Ctx,
        model: &MemoryModel,
        regions: &[rtmem::RegionId],
        allocs: &[usize],
        refs: &mut Vec<rtmem::RBytes>,
    ) {
        match regions.split_first() {
            None => {
                for &len in allocs {
                    refs.push(ctx.alloc_bytes(len).unwrap());
                }
                // Deepest scope may reference every ancestor.
                for r in refs.iter() {
                    assert!(
                        model.may_reference(ctx.current(), r.region()).unwrap()
                            || r.region() == ctx.current()
                    );
                }
            }
            Some((&head, rest)) => {
                ctx.enter(head, |ctx| {
                    refs.push(ctx.alloc_bytes(8).unwrap());
                    descend(ctx, model, rest, allocs, refs);
                })
                .unwrap();
            }
        }
    }

    let mut rng = SplitMix64::new(0x5C0);
    for _case in 0..64 {
        let depth = rng.range_usize(1, 5);
        let allocs: Vec<usize> = (0..rng.range_usize(1, 10))
            .map(|_| rng.range_usize(1, 200))
            .collect();
        let model = MemoryModel::new();
        let regions: Vec<_> = (0..depth)
            .map(|_| model.create_scoped(64 << 10).unwrap())
            .collect();
        let mut ctx = Ctx::no_heap(&model);

        let mut refs = Vec::new();
        descend(&mut ctx, &model, &regions, &allocs, &mut refs);

        // Everything reclaimed after the unwind: all references stale,
        // accounting at zero, parents cleared.
        for r in &refs {
            let stale = matches!(
                r.to_vec(&ctx),
                Err(rtmem::RtmemError::StaleReference { .. })
            );
            assert!(stale);
        }
        for &region in &regions {
            let snap = model.snapshot(region).unwrap();
            assert_eq!(snap.used, 0);
            assert_eq!(snap.entered, 0);
            assert_eq!(snap.parent, None);
            assert_eq!(snap.epoch, 1);
        }
    }
}

/// Allocation accounting never exceeds the configured budget, and the
/// error is reported exactly when it would.
#[test]
fn region_budget_is_respected() {
    use rtmem::{Ctx, MemoryModel, RtmemError};
    let mut rng = SplitMix64::new(0xB4D);
    for _case in 0..64 {
        let budget = rng.range_usize(64, 4096);
        let sizes: Vec<usize> = (0..rng.range_usize(1, 40))
            .map(|_| rng.range_usize(1, 512))
            .collect();
        let model = MemoryModel::new();
        let region = model.create_scoped(budget).unwrap();
        let mut ctx = Ctx::no_heap(&model);
        ctx.enter(region, |ctx| {
            let mut used = 0usize;
            for &len in &sizes {
                let aligned = (len + 7) & !7;
                match ctx.alloc_bytes(len) {
                    Ok(_) => {
                        used += aligned;
                        assert!(used <= budget, "over budget: {used} > {budget}");
                    }
                    Err(RtmemError::OutOfMemory { .. }) => {
                        assert!(
                            used + aligned > budget,
                            "spurious OOM at used={used}, len={len}"
                        );
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
                let snap = model.snapshot(region).unwrap();
                assert_eq!(snap.used, used);
            }
        })
        .unwrap();
    }
}

// ---------------------------------------------------------------------
// Validation properties
// ---------------------------------------------------------------------

/// Any sibling fan-out composition validates, and injecting a
/// self-loop always breaks it.
#[test]
fn sibling_fanout_validates_and_self_loop_never_does() {
    for n in 1usize..6 {
        let cdl = r#"
          <Components>
            <Component><ComponentName>Hub</ComponentName>
              <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
              <Port><PortName>In</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
            <Component><ComponentName>Spoke</ComponentName>
              <Port><PortName>In</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
          </Components>"#;
        let mut spokes = String::new();
        let mut links = String::new();
        for i in 0..n {
            spokes.push_str(&format!(
                "<Component><InstanceName>S{i}</InstanceName><ClassName>Spoke</ClassName>\
                 <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel></Component>"
            ));
            links.push_str(&format!(
                "<Link><ToComponent>S{i}</ToComponent><ToPort>In</ToPort></Link>"
            ));
        }
        let ccl_ok = format!(
            r#"<Application><ApplicationName>FanOut</ApplicationName>
            <Component><InstanceName>H</InstanceName><ClassName>Hub</ClassName><ComponentType>Immortal</ComponentType>
              <Connection><Port><PortName>Out</PortName>{links}</Port></Connection>
              {spokes}
            </Component></Application>"#
        );
        let parsed_cdl = compadres_core::parse_cdl(cdl).unwrap();
        let parsed_ccl = compadres_core::parse_ccl(&ccl_ok).unwrap();
        let app = compadres_core::validate(&parsed_cdl, &parsed_ccl).unwrap();
        assert_eq!(app.connections.len(), n);

        // Now add a self-loop on the hub: must be rejected.
        let ccl_loop = ccl_ok.replace(
            "</Port></Connection>",
            "<Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link></Port></Connection>",
        );
        let parsed_loop = compadres_core::parse_ccl(&ccl_loop).unwrap();
        assert!(compadres_core::validate(&parsed_cdl, &parsed_loop).is_err());
    }
}
