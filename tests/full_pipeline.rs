//! Workspace-level integration: the complete paper workflow — CDL →
//! compiler skeletons, CCL → validated plan → assembled application →
//! runtime message flow — exercised across all crates at once.

use std::sync::mpsc;
use std::time::Duration;

use compadres_compiler::{generate_skeletons, render_plan, SkeletonOptions};
use compadres_core::{AppBuilder, HandlerCtx, Priority};

#[derive(Debug, Default, Clone)]
struct Sample {
    v: u64,
}

const CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>Root</ComponentName>
    <Port><PortName>Feed</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>Drain</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Stage</ComponentName>
    <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>Down</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Leaf</ComponentName>
    <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>Up</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</Components>"#;

const SYNC: &str =
    "<MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize>";

fn ccl() -> String {
    format!(
        r#"
<Application>
  <ApplicationName>DeepPipeline</ApplicationName>
  <Component>
    <InstanceName>R</InstanceName>
    <ClassName>Root</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port><PortName>Feed</PortName>
        <Link><ToComponent>S1</ToComponent><ToPort>In</ToPort></Link>
      </Port>
      <Port><PortName>Drain</PortName><PortAttributes>{SYNC}</PortAttributes></Port>
    </Connection>
    <Component>
      <InstanceName>S1</InstanceName>
      <ClassName>Stage</ClassName>
      <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port><PortName>In</PortName><PortAttributes>{SYNC}</PortAttributes></Port>
        <Port><PortName>Down</PortName>
          <Link><ToComponent>S2</ToComponent><ToPort>In</ToPort></Link>
        </Port>
      </Connection>
      <Component>
        <InstanceName>S2</InstanceName>
        <ClassName>Stage</ClassName>
        <ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>
        <Connection>
          <Port><PortName>In</PortName><PortAttributes>{SYNC}</PortAttributes></Port>
          <Port><PortName>Down</PortName>
            <Link><ToComponent>L</ToComponent><ToPort>In</ToPort></Link>
          </Port>
        </Connection>
        <Component>
          <InstanceName>L</InstanceName>
          <ClassName>Leaf</ClassName>
          <ComponentType>Scoped</ComponentType><ScopeLevel>3</ScopeLevel>
          <Connection>
            <Port><PortName>In</PortName><PortAttributes>{SYNC}</PortAttributes></Port>
            <Port><PortName>Up</PortName>
              <Link><ToComponent>R</ToComponent><ToPort>Drain</ToPort></Link>
            </Port>
          </Connection>
        </Component>
      </Component>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>4000000</ImmortalSize>
    <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>65536</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>2</ScopeLevel><ScopeSize>65536</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>3</ScopeLevel><ScopeSize>65536</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
  </RTSJAttributes>
</Application>"#
    )
}

fn build() -> (compadres_core::App, mpsc::Receiver<u64>) {
    let (tx, rx) = mpsc::channel();
    let app = AppBuilder::from_xml(CDL, &ccl())
        .unwrap()
        .bind_message_type::<Sample>("Sample")
        .register_handler("Stage", "In", || {
            |msg: &mut Sample, ctx: &mut HandlerCtx<'_>| {
                let mut fwd = ctx.get_message::<Sample>("Down")?;
                fwd.v = msg.v + 1;
                ctx.send("Down", fwd, ctx.priority())
            }
        })
        .register_handler("Leaf", "In", || {
            |msg: &mut Sample, ctx: &mut HandlerCtx<'_>| {
                let mut up = ctx.get_message::<Sample>("Up")?;
                up.v = msg.v * 10;
                ctx.send("Up", up, ctx.priority())
            }
        })
        .register_handler("Root", "Drain", move || {
            let tx = tx.clone();
            move |msg: &mut Sample, _ctx: &mut HandlerCtx<'_>| {
                let _ = tx.send(msg.v);
                Ok(())
            }
        })
        .build()
        .unwrap();
    app.start().unwrap();
    (app, rx)
}

#[test]
fn four_level_pipeline_with_shadow_return() {
    let (app, rx) = build();
    // R → S1 → S2 → L, then L returns directly to R via a shadow port
    // spanning three levels.
    app.with_component("R", |ctx| {
        let mut m = ctx.get_message::<Sample>("Feed").unwrap();
        m.v = 5;
        ctx.send("Feed", m, Priority::new(9)).unwrap();
    })
    .unwrap();
    // (5 + 1 + 1) * 10 = 70.
    assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 70);
    // All scoped components were ephemeral and are inactive again.
    for name in ["S1", "S2", "L"] {
        assert!(!app.is_active(name).unwrap(), "{name} should be reclaimed");
    }
}

#[test]
fn repeated_traffic_reuses_pooled_scopes() {
    let (app, rx) = build();
    for i in 0..50u64 {
        app.with_component("R", |ctx| {
            let mut m = ctx.get_message::<Sample>("Feed").unwrap();
            m.v = i;
            ctx.send("Feed", m, Priority::new(9)).unwrap();
        })
        .unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            (i + 2) * 10
        );
    }
    // Regions: heap + immortal + 3 pools x 2 — nothing leaked.
    assert_eq!(app.model().live_regions(), 2 + 6);
    assert_eq!(
        app.stats().messages_processed,
        200,
        "four hops per round trip"
    );
}

#[test]
fn keepalive_chain_pins_all_ancestors() {
    let (app, rx) = build();
    let keep = app.connect("L").unwrap();
    // Connecting the leaf activates the whole ancestor chain.
    for name in ["S1", "S2", "L"] {
        assert!(
            app.is_active(name).unwrap(),
            "{name} active while leaf connected"
        );
    }
    app.with_component("R", |ctx| {
        let mut m = ctx.get_message::<Sample>("Feed").unwrap();
        m.v = 1;
        ctx.send("Feed", m, Priority::new(9)).unwrap();
    })
    .unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 30);
    keep.disconnect();
    for name in ["S1", "S2", "L"] {
        assert!(
            !app.is_active(name).unwrap(),
            "{name} reclaimed after disconnect"
        );
    }
}

#[test]
fn compiler_artifacts_for_same_documents() {
    // The compiler pieces agree with the runtime on what is valid.
    let cdl = compadres_core::parse_cdl(CDL).unwrap();
    let ccl_doc = compadres_core::parse_ccl(&ccl()).unwrap();

    let skeletons = generate_skeletons(&cdl, &SkeletonOptions::default());
    assert!(skeletons.contains("pub struct RootComponent"));
    assert!(skeletons.contains("pub struct StageInHandler"));
    assert!(skeletons.contains("impl MessageHandler<Sample> for LeafInHandler"));

    let plan = render_plan(&cdl, &ccl_doc).unwrap();
    assert!(plan.contains("Application: DeepPipeline"));
    assert!(plan.contains("L : Leaf [scoped level 3]"));
    assert!(
        plan.contains("[shadow]"),
        "L→R link reported as a shadow port:\n{plan}"
    );
    assert!(plan.contains("scope pool level 3: 2 x 65536 bytes"));
}

#[test]
fn validation_and_runtime_agree_on_rejection() {
    // A CCL with a level mismatch is rejected by both the plan renderer
    // and the builder.
    let bad_ccl = ccl().replace("<ScopeLevel>2</ScopeLevel>", "<ScopeLevel>9</ScopeLevel>");
    assert!(bad_ccl.contains("<ScopeLevel>9</ScopeLevel>"));
    let cdl = compadres_core::parse_cdl(CDL).unwrap();
    let ccl_doc = compadres_core::parse_ccl(&bad_ccl).unwrap();
    assert!(render_plan(&cdl, &ccl_doc).is_err());
    assert!(AppBuilder::from_model(cdl, ccl_doc)
        .bind_message_type::<Sample>("Sample")
        .build()
        .is_err());
}
