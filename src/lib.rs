//! Umbrella package for the Compadres reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual functionality lives
//! in the member crates re-exported below.

pub mod multinode;

pub use compadres_compiler as compiler;
pub use compadres_core as core;
pub use rtcorba as corba;
pub use rtmem as mem;
pub use rtplatform as platform;
pub use rtsched as sched;
pub use rtxml as xml;
