//! Multi-node deployment harness: one assembly, many processes.
//!
//! The compiler's `partition` phase turns a placed CCL into per-node
//! deployment plans (DESIGN.md §5k). This module is the runtime proof:
//! it spawns one OS process per node of the [`FANIN_CCL`] manifest on
//! loopback — two sharded naming servers, a primary hub, its standby
//! replica, and two edge senders — then kills the primary exporter
//! mid-traffic and watches membership detect it, the failover sender
//! promote the standby, and sharded naming rebind the primary endpoint
//! name. Every child derives its own configuration from the *same*
//! manifest (`manifest()`), so the topology is specified exactly once,
//! in the CCL.
//!
//! The harness is deterministic: children coordinate with the parent
//! over a stdin/stdout line protocol (no sleeps standing in for
//! ordering), the kill point is seeded, and the edges pause at the kill
//! point so the primary dies between messages, never mid-frame. Both
//! the integration test (`tests/multinode.rs`) and the runnable example
//! (`examples/multinode.rs`) re-execute their own binary with
//! [`ROLE_ENV`] set to become a child node; call
//! [`dispatch_child_role`] first thing in `main`.

use std::io::{BufRead, BufReader, Write as _};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use compadres_compiler::{heartbeat_endpoint, partition, Deployment};
use compadres_core::membership::{
    EndpointResolver, FailoverSender, HeartbeatResponder, MemberEvent, MemberEventKind, Membership,
    MembershipConfig, MembershipLog,
};
use compadres_core::remote::PortExporter;
use compadres_core::smm::BytesCodec;
use compadres_core::{AppBuilder, HandlerCtx, Priority};
use rtcorba::naming::{NamingServant, NAME_SERVICE_KEY};
use rtcorba::service::{ObjectRegistry, Servant};
use rtcorba::shard::ShardedNaming;
use rtobs::Observer;
use rtplatform::fault::FaultPolicy;
use rtplatform::rng::SplitMix64;

/// Environment variable selecting the child role (`naming`, `sink`,
/// `edge`). Unset means "parent orchestrator".
pub const ROLE_ENV: &str = "COMPADRES_MN_ROLE";
const NODE_ENV: &str = "COMPADRES_MN_NODE";
const SHARDS_ENV: &str = "COMPADRES_MN_SHARDS";
const COUNT_ENV: &str = "COMPADRES_MN_COUNT";
const KILL_AT_ENV: &str = "COMPADRES_MN_KILL_AT";
const SEED_ENV: &str = "COMPADRES_MN_SEED";

/// Priority band boundary: sends at or above this are "high band" and
/// carry a trace deadline budget across the wire.
pub const HIGH_BAND: u8 = 50;
const LOW_BAND: u8 = 10;
/// Deadline budget attached to every high-band send. Generous against
/// the sub-second failover so a clean run records zero misses; a
/// wedged failover path would blow it and show up in the exporter's
/// `deadline_misses` counter.
const HIGH_BAND_BUDGET_NS: u64 = 3_000_000_000;

/// The fan-in component library shared by every node.
pub const FANIN_CDL: &str = r#"<Components>
  <Component><ComponentName>Sensor</ComponentName>
    <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>Reading</MessageType></Port>
  </Component>
  <Component><ComponentName>Hub</ComponentName>
    <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Reading</MessageType></Port>
  </Component>
</Components>"#;

/// The placed assembly: two edge sensors fanning in to a hub that
/// carries a standby replica. Partitioning yields four node plans and
/// lowers both sensor links to remote/export pairs against the
/// `FanIn/hub/H.In` endpoint, with `FanIn/standby/H.In` as failover.
pub const FANIN_CCL: &str = r#"<Application>
  <ApplicationName>FanIn</ApplicationName>
  <Component node="edge0"><InstanceName>S0</InstanceName><ClassName>Sensor</ClassName><ComponentType>Immortal</ComponentType>
    <Connection><Port><PortName>Out</PortName>
      <Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link>
    </Port></Connection>
  </Component>
  <Component node="edge1"><InstanceName>S1</InstanceName><ClassName>Sensor</ClassName><ComponentType>Immortal</ComponentType>
    <Connection><Port><PortName>Out</PortName>
      <Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link>
    </Port></Connection>
  </Component>
  <Component node="hub" replicas="standby"><InstanceName>H</InstanceName><ClassName>Hub</ClassName><ComponentType>Immortal</ComponentType>
    <Connection><Port><PortName>In</PortName>
      <PortAttributes><BufferSize>256</BufferSize><MinThreadpoolSize>1</MinThreadpoolSize><MaxThreadpoolSize>1</MaxThreadpoolSize></PortAttributes>
    </Port></Connection>
  </Component>
</Application>"#;

/// The message every sensor ships to the hub.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Reading {
    /// Sequence number within one sensor's stream.
    pub seq: u32,
    /// Payload.
    pub level: i64,
}

impl BytesCodec for Reading {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.level.encode(out);
    }
    fn decode(bytes: &[u8]) -> Self {
        Reading {
            seq: u32::decode(&bytes[..4]),
            level: i64::decode(&bytes[4..]),
        }
    }
}

/// The deployment every process (parent and children) derives its
/// configuration from — the single source of topology truth.
///
/// # Panics
///
/// Never for the in-tree manifest; the constants are validated by the
/// compiler tests.
pub fn manifest() -> Deployment {
    let cdl = compadres_core::parse_cdl(FANIN_CDL).expect("harness CDL parses");
    let ccl = compadres_core::parse_ccl(FANIN_CCL).expect("harness CCL parses");
    partition(&cdl, &ccl).expect("harness CCL partitions")
}

fn env(name: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| panic!("{name} must be set for this role"))
}

fn env_u64(name: &str) -> u64 {
    env(name)
        .parse()
        .unwrap_or_else(|_| panic!("{name} must be a number"))
}

fn encode_shards(shards: &[(String, SocketAddr)]) -> String {
    shards
        .iter()
        .map(|(l, a)| format!("{l}={a}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_shards(s: &str) -> Vec<(String, SocketAddr)> {
    s.split(',')
        .map(|pair| {
            let (label, addr) = pair.split_once('=').expect("shard pair is label=addr");
            (label.to_string(), addr.parse().expect("shard addr parses"))
        })
        .collect()
}

/// Renders a [`MemberEvent`] as one harness-protocol line (`EV <t_ns>
/// <kind> <subject>`); [`parse_member_event`] is its inverse.
pub fn format_member_event(e: &MemberEvent) -> String {
    format!("EV {} {:?} {}", e.t_ns, e.kind, e.subject)
}

/// Parses a line produced by [`format_member_event`].
pub fn parse_member_event(line: &str) -> Option<MemberEvent> {
    let rest = line.strip_prefix("EV ")?;
    let mut parts = rest.splitn(3, ' ');
    let t_ns = parts.next()?.parse().ok()?;
    let kind = match parts.next()? {
        "Alive" => MemberEventKind::Alive,
        "Suspect" => MemberEventKind::Suspect,
        "Down" => MemberEventKind::Down,
        "FailoverStart" => MemberEventKind::FailoverStart,
        "FailoverComplete" => MemberEventKind::FailoverComplete,
        "Rebind" => MemberEventKind::Rebind,
        _ => return None,
    };
    let subject = parts.next()?.to_string();
    Some(MemberEvent {
        t_ns,
        subject,
        kind,
    })
}

/// If [`ROLE_ENV`] is set, runs that child role and never returns.
/// Call first thing in `main` of any binary that spawns the cluster.
pub fn dispatch_child_role() {
    match std::env::var(ROLE_ENV).ok().as_deref() {
        None => {}
        Some("naming") => run_naming(),
        Some("sink") => run_sink(),
        Some("edge") => run_edge(),
        Some(other) => {
            eprintln!("multinode: unknown role {other:?}");
            std::process::exit(2);
        }
    }
}

fn stdin_lines() -> impl Iterator<Item = String> {
    std::io::stdin()
        .lines()
        .map_while(|l| l.ok())
        .map(|l| l.trim().to_string())
}

fn wait_for(expected: &str) {
    for line in stdin_lines() {
        if line == expected {
            return;
        }
    }
    // Parent went away: nothing left to coordinate with.
    std::process::exit(1);
}

/// `naming` role: one shard of the sharded naming service.
fn run_naming() -> ! {
    let registry = ObjectRegistry::with_echo();
    registry.register(
        NAME_SERVICE_KEY.to_vec(),
        Arc::new(NamingServant::new()) as Arc<dyn Servant>,
    );
    let server = rtcorba::ServerBuilder::new(registry)
        .serve()
        .expect("naming shard serves");
    println!("ADDR {}", server.addr().expect("naming shard addr"));
    wait_for("quit");
    server.shutdown();
    std::process::exit(0);
}

/// `sink` role: one hub node (primary or standby). Builds its app from
/// its own node plan, exports the hub in-port, answers heartbeats, and
/// registers both endpoints in sharded naming.
fn run_sink() -> ! {
    rtplatform::heap::retain_freed_memory();
    let node = env(NODE_ENV);
    let shards = parse_shards(&env(SHARDS_ENV));
    let dep = manifest();
    let plan = dep.node(&node).expect("node is in the manifest").clone();
    let export = plan.exports.first().expect("sink node has an export");

    let received = Arc::new(AtomicU64::new(0));
    let high = Arc::new(AtomicU64::new(0));
    let (received2, high2) = (Arc::clone(&received), Arc::clone(&high));
    let cdl = compadres_core::parse_cdl(FANIN_CDL).expect("harness CDL parses");
    let app = AppBuilder::from_model(cdl, plan.ccl.clone())
        .bind_message_type::<Reading>("Reading")
        .register_handler("Hub", "In", move || {
            let received = Arc::clone(&received2);
            let high = Arc::clone(&high2);
            move |_msg: &mut Reading, _ctx: &mut HandlerCtx<'_>| {
                received.fetch_add(1, Ordering::Relaxed);
                if rtsched::current_priority() >= Priority::new(HIGH_BAND) {
                    high.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
        })
        .build()
        .expect("sink app builds from its node plan");
    app.start().expect("sink app starts");
    let app = Arc::new(app);

    let exporter =
        PortExporter::bind::<Reading>(&app, &export.instance, &export.port).expect("export binds");
    let hb = HeartbeatResponder::bind().expect("heartbeat responder binds");
    let naming = ShardedNaming::new(shards);
    EndpointResolver::rebind(&naming, &export.endpoint, exporter.local_addr())
        .expect("endpoint registers in naming");
    EndpointResolver::rebind(
        &naming,
        &heartbeat_endpoint(&dep.app, &node),
        hb.local_addr(),
    )
    .expect("heartbeat registers in naming");

    println!("READY");
    for line in stdin_lines() {
        match line.as_str() {
            "report" => println!(
                "STATS received={} high={} rejected={} deadline_misses={}",
                received.load(Ordering::Relaxed),
                high.load(Ordering::Relaxed),
                exporter.rejected(),
                exporter.deadline_misses()
            ),
            "quit" => break,
            _ => {}
        }
    }
    exporter.shutdown();
    std::process::exit(0);
}

/// `edge` role: one sensor node. Resolves its remote endpoint through
/// sharded naming, probes the hub's heartbeat, and on `Down` fails over
/// to the replica endpoints named in its node plan. High-band sends
/// carry a deadline budget; every send is retried until delivered, so
/// a completed run proves no message needed more than the failover to
/// get through.
fn run_edge() -> ! {
    let node = env(NODE_ENV);
    let shards = parse_shards(&env(SHARDS_ENV));
    let count = env_u64(COUNT_ENV);
    let kill_at = env_u64(KILL_AT_ENV);
    let seed = env_u64(SEED_ENV);

    let dep = manifest();
    let plan = dep.node(&node).expect("node is in the manifest");
    let remote = plan.remotes.first().expect("edge node has a remote");
    let hub_node = remote
        .endpoint
        .split('/')
        .nth(1)
        .expect("endpoint names carry a node");
    let naming: Arc<ShardedNaming> = Arc::new(ShardedNaming::new(shards));
    let hb_addr = EndpointResolver::resolve(&*naming, &heartbeat_endpoint(&dep.app, hub_node))
        .expect("hub heartbeat resolves");

    let log = MembershipLog::new();
    let obs = Arc::new(Observer::new());
    let policy = FaultPolicy {
        connect_timeout: Duration::from_millis(150),
        send_timeout: Duration::from_millis(150),
        max_retries: 1,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        ..FaultPolicy::default()
    };
    let sender = Arc::new(
        FailoverSender::<Reading>::connect(
            &remote.endpoint,
            remote.failover.clone(),
            Arc::clone(&naming) as Arc<dyn EndpointResolver>,
            policy,
            log.clone(),
        )
        .expect("edge connects to primary endpoint"),
    );
    sender.set_observer(&obs);

    let membership = Arc::new(Membership::new(
        MembershipConfig {
            probe_timeout: Duration::from_millis(150),
            suspect_after: 2,
            down_after: 3,
            probe_interval: Duration::from_millis(20),
        },
        log.clone(),
    ));
    membership.add_peer(hub_node, hb_addr);
    let sender2 = Arc::clone(&sender);
    membership.on_down(move |_| {
        let _ = sender2.fail_over();
    });
    membership.start();

    println!("CONNECTED {}", sender.active_endpoint());
    wait_for("go");

    let mut rng = SplitMix64::new(seed);
    let (mut high_total, mut high_after) = (0u64, 0u64);
    for i in 0..count {
        if i == kill_at {
            println!("PAUSED");
            wait_for("resume");
            // One low-band canary absorbs the TCP loss window of the
            // dead link: the first write after the peer's RST can
            // succeed locally and vanish, every later one fails fast
            // and is retried. No counted message rides that window.
            let _ = sender.send(
                &Reading {
                    seq: u32::MAX,
                    level: 0,
                },
                Priority::new(LOW_BAND),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let is_high = rng.chance(0.25);
        deliver(
            &sender,
            &obs,
            Reading {
                seq: i as u32,
                level: i as i64,
            },
            is_high,
        );
        if is_high {
            high_total += 1;
            if i >= kill_at {
                high_after += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    membership.stop();

    println!(
        "STATS sent={count} high_total={high_total} high_after={high_after} failovers={} active={}",
        sender.failovers(),
        sender.active_endpoint()
    );
    for e in log.snapshot() {
        println!("{}", format_member_event(&e));
    }
    println!("DONE");
    std::process::exit(0);
}

/// Sends one reading, retrying until the active link accepts it. Each
/// high-band attempt opens a fresh trace so the deadline budget is
/// anchored at the attempt, not at first try.
fn deliver(sender: &FailoverSender<Reading>, obs: &Arc<Observer>, msg: Reading, high: bool) {
    let give_up = Instant::now() + Duration::from_secs(20);
    loop {
        let sent = if high {
            let root = obs.new_trace(Some(HIGH_BAND_BUDGET_NS));
            rtobs::span::with_span(root, || sender.send(&msg, Priority::new(HIGH_BAND)))
        } else {
            sender.send(&msg, Priority::new(LOW_BAND))
        };
        if sent.is_ok() {
            return;
        }
        assert!(
            Instant::now() < give_up,
            "reading {} undeliverable: failover never completed",
            msg.seq
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A spawned child node and its protocol streams. Killed and reaped on
/// drop so a panicking parent never leaks processes.
pub struct Proc {
    name: String,
    child: Child,
    out: BufReader<ChildStdout>,
    stdin: Option<ChildStdin>,
}

impl Proc {
    /// Re-executes the current binary as `role`, with extra env vars.
    ///
    /// # Panics
    ///
    /// When the child cannot be spawned.
    pub fn spawn(name: &str, role: &str, envs: &[(&str, String)]) -> Proc {
        let exe = std::env::current_exe().expect("current exe path");
        let mut cmd = Command::new(exe);
        cmd.env(ROLE_ENV, role)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn child node");
        let out = BufReader::new(child.stdout.take().expect("child stdout piped"));
        let stdin = child.stdin.take();
        Proc {
            name: name.to_string(),
            child,
            out,
            stdin,
        }
    }

    /// Reads lines until one starts with `tag`, returning the rest of
    /// that line; unrelated lines are echoed for the journal.
    ///
    /// # Panics
    ///
    /// When the child closes stdout first.
    pub fn expect(&mut self, tag: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.out.read_line(&mut line).expect("read child stdout");
            assert!(n > 0, "[{}] exited before printing {tag}", self.name);
            let line = line.trim_end();
            if let Some(rest) = line.strip_prefix(tag) {
                return rest.trim_start().to_string();
            }
            println!("[{}] {line}", self.name);
        }
    }

    /// Sends one protocol line to the child's stdin.
    ///
    /// # Panics
    ///
    /// When the pipe is gone.
    pub fn say(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("child stdin piped");
        writeln!(stdin, "{line}").expect("write child stdin");
        stdin.flush().expect("flush child stdin");
    }

    /// SIGKILLs the child — the seeded primary-exporter kill.
    pub fn kill_now(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks the child to exit and reaps it (kills after 5 s).
    pub fn quit(&mut self) {
        if self.stdin.is_some() {
            let _ = self
                .stdin
                .as_mut()
                .map(|s| writeln!(s, "quit").and_then(|()| s.flush()));
        }
        drop(self.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if self.child.try_wait().expect("reap child").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.kill_now();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What one edge node reported after its run.
pub struct EdgeReport {
    /// Node name (`edge0`, `edge1`).
    pub node: String,
    /// Counted readings sent (excludes the post-kill canary).
    pub sent: u64,
    /// High-band readings among them.
    pub high_total: u64,
    /// High-band readings sent at or after the kill point — all of
    /// these must reach the standby.
    pub high_after: u64,
    /// Completed failovers (must be exactly 1).
    pub failovers: u64,
    /// Endpoint traffic flowed to at the end.
    pub active: String,
    /// The edge's full membership/failover history.
    pub history: Vec<MemberEvent>,
}

impl EdgeReport {
    fn t_of(&self, kind: MemberEventKind) -> Option<u64> {
        self.history.iter().find(|e| e.kind == kind).map(|e| e.t_ns)
    }

    /// Failover latency (`FailoverStart` → `FailoverComplete`), ms.
    pub fn failover_ms(&self) -> f64 {
        match (
            self.t_of(MemberEventKind::FailoverStart),
            self.t_of(MemberEventKind::FailoverComplete),
        ) {
            (Some(s), Some(c)) => (c.saturating_sub(s)) as f64 / 1e6,
            _ => f64::NAN,
        }
    }

    /// Full recovery window (`Suspect` → `FailoverComplete`), ms.
    pub fn recovery_ms(&self) -> f64 {
        match (
            self.t_of(MemberEventKind::Suspect),
            self.t_of(MemberEventKind::FailoverComplete),
        ) {
            (Some(s), Some(c)) => (c.saturating_sub(s)) as f64 / 1e6,
            _ => f64::NAN,
        }
    }
}

/// What the standby sink reported after the run.
pub struct SinkReport {
    /// Readings its handler processed.
    pub received: u64,
    /// High-band readings among them.
    pub high: u64,
    /// Admission rejections at the exporter (must be 0).
    pub rejected: u64,
    /// Trace-budget overruns on arrival (must be 0: zero high-band
    /// deadline misses through the failover).
    pub deadline_misses: u64,
}

/// Outcome of one full cluster run.
pub struct ClusterReport {
    /// Readings each edge was asked to send.
    pub count: u64,
    /// Seeded kill point (message index the edges paused at).
    pub kill_at: u64,
    /// Per-edge reports, manifest order.
    pub edges: Vec<EdgeReport>,
    /// The promoted standby's counters.
    pub standby: SinkReport,
    /// Whether the primary endpoint name now resolves to the standby's
    /// exporter address (the naming rebind took).
    pub primary_resolves_to_standby: bool,
}

fn parse_kv(s: &str, key: &str) -> u64 {
    s.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in {s:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {s:?}"))
}

fn parse_kv_str(s: &str, key: &str) -> String {
    s.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in {s:?}"))
        .to_string()
}

/// Runs the full seeded cluster: spawn, traffic, kill, failover,
/// collect. Each edge sends `count` readings; the primary is killed at
/// a seed-derived index in `[count/4, count/2)`.
///
/// # Panics
///
/// On any protocol violation or child failure (this is test
/// infrastructure; the caller asserts on the report).
pub fn run_cluster(count: u64, seed: u64) -> ClusterReport {
    let dep = manifest();
    let primary_ep = &dep.node("hub").expect("hub plan").exports[0].endpoint;
    let standby_ep = &dep.node("standby").expect("standby plan").exports[0].endpoint;

    let mut namings: Vec<Proc> = (0..2)
        .map(|i| Proc::spawn(&format!("naming{i}"), "naming", &[]))
        .collect();
    let shards: Vec<(String, SocketAddr)> = namings
        .iter_mut()
        .enumerate()
        .map(|(i, p)| {
            (
                format!("shard{i}"),
                p.expect("ADDR").parse().expect("naming addr parses"),
            )
        })
        .collect();
    let shards_env = encode_shards(&shards);

    let sink_envs = |node: &str| {
        vec![
            (NODE_ENV, node.to_string()),
            (SHARDS_ENV, shards_env.clone()),
        ]
    };
    let mut hub = Proc::spawn("hub", "sink", &sink_envs("hub"));
    hub.expect("READY");
    let mut standby = Proc::spawn("standby", "sink", &sink_envs("standby"));
    standby.expect("READY");

    let kill_at = count / 4 + SplitMix64::new(seed).next_u64() % (count / 4).max(1);
    let edge_nodes = ["edge0", "edge1"];
    let mut edges: Vec<Proc> = edge_nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            Proc::spawn(
                node,
                "edge",
                &[
                    (NODE_ENV, node.to_string()),
                    (SHARDS_ENV, shards_env.clone()),
                    (COUNT_ENV, count.to_string()),
                    (KILL_AT_ENV, kill_at.to_string()),
                    (SEED_ENV, (seed ^ (i as u64 + 1)).to_string()),
                ],
            )
        })
        .collect();
    for e in &mut edges {
        e.expect("CONNECTED");
    }
    for e in &mut edges {
        e.say("go");
    }
    for e in &mut edges {
        e.expect("PAUSED");
    }
    // Every edge is parked between messages: kill the primary exporter.
    hub.kill_now();
    for e in &mut edges {
        e.say("resume");
    }

    let mut edge_reports = Vec::new();
    for (node, e) in edge_nodes.iter().zip(&mut edges) {
        let stats = e.expect("STATS");
        let mut history = Vec::new();
        loop {
            let mut line = String::new();
            let n = e.out.read_line(&mut line).expect("read edge stdout");
            assert!(n > 0, "[{node}] exited before DONE");
            let line = line.trim_end();
            if line == "DONE" {
                break;
            }
            if let Some(ev) = parse_member_event(line) {
                history.push(ev);
            } else {
                println!("[{node}] {line}");
            }
        }
        edge_reports.push(EdgeReport {
            node: node.to_string(),
            sent: parse_kv(&stats, "sent"),
            high_total: parse_kv(&stats, "high_total"),
            high_after: parse_kv(&stats, "high_after"),
            failovers: parse_kv(&stats, "failovers"),
            active: parse_kv_str(&stats, "active"),
            history,
        });
        e.quit();
    }

    // Poll the standby until everything that must arrive has (the last
    // readings may still be in its dispatch queue when we first ask).
    let min_expected = edge_nodes.len() as u64 * (count - kill_at);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut stats;
    loop {
        standby.say("report");
        stats = standby.expect("STATS");
        if parse_kv(&stats, "received") >= min_expected || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let standby_report = SinkReport {
        received: parse_kv(&stats, "received"),
        high: parse_kv(&stats, "high"),
        rejected: parse_kv(&stats, "rejected"),
        deadline_misses: parse_kv(&stats, "deadline_misses"),
    };
    standby.quit();

    // The rebind must be visible to any fresh client of the naming
    // service: the primary name now answers with the standby's address.
    let naming = ShardedNaming::new(shards);
    let primary_resolves_to_standby = match (
        EndpointResolver::resolve(&naming, primary_ep),
        EndpointResolver::resolve(&naming, standby_ep),
    ) {
        (Ok(p), Ok(s)) => p == s,
        _ => false,
    };
    for n in &mut namings {
        n.quit();
    }

    ClusterReport {
        count,
        kill_at,
        edges: edge_reports,
        standby: standby_report,
        primary_resolves_to_standby,
    }
}
