//! Linearizability of the lock-free runtime structures, with negative
//! controls: the checker must accept histories recorded from the real
//! ring/buffer/queue/pool and must reject histories from deliberately
//! broken variants (LIFO order, duplicate delivery, double lease).

use std::sync::Mutex;

use rtcheck::history::{Clock, ThreadLog};
use rtcheck::lin::check;
use rtcheck::record;
use rtcheck::spec::{
    BoundedFifoSpec, PoolOp, PoolRet, PoolSpec, PriorityFifoSpec, QueueOp, QueueRet,
};

fn rounds() -> u64 {
    std::env::var("RTCHECK_LIN_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

#[test]
fn mpmc_ring_histories_are_linearizable() {
    for seed in 0..rounds() {
        let h = record::ring_history(seed, 3, 6, 4);
        assert!(
            check(&BoundedFifoSpec { capacity: 4 }, &h),
            "seed {seed}: {h:#?}"
        );
    }
}

#[test]
fn bounded_buffer_histories_are_linearizable() {
    for seed in 0..rounds() {
        let h = record::buffer_history(seed, 3, 6, 3);
        assert!(
            check(&BoundedFifoSpec { capacity: 3 }, &h),
            "seed {seed}: {h:#?}"
        );
    }
}

#[test]
fn priority_fifo_histories_are_linearizable() {
    for seed in 0..rounds() {
        let h = record::fifo_history(seed, 3, 6);
        assert!(check(&PriorityFifoSpec, &h), "seed {seed}: {h:#?}");
    }
}

#[test]
fn scope_pool_histories_are_linearizable() {
    for seed in 0..rounds() {
        let (spec, h) = record::pool_history(seed, 3, 8, 3);
        assert!(check(&spec, &h), "seed {seed}: {h:#?}");
    }
}

/// Deliberately broken "queue": pops from the back (LIFO). Any
/// sequential run with two buffered elements betrays it.
struct LifoQueue(Mutex<Vec<u64>>);

impl LifoQueue {
    fn push(&self, v: u64) -> bool {
        self.0.lock().unwrap().push(v);
        true
    }
    fn pop(&self) -> Option<u64> {
        self.0.lock().unwrap().pop()
    }
}

#[test]
fn negative_control_lifo_queue_is_flagged() {
    let q = LifoQueue(Mutex::new(Vec::new()));
    let clock = Clock::new();
    let mut log = ThreadLog::new(&clock);
    log.record(QueueOp::Push(0, 1), || QueueRet::Pushed(q.push(1)));
    log.record(QueueOp::Push(0, 2), || QueueRet::Pushed(q.push(2)));
    log.record(QueueOp::Pop, || QueueRet::Popped(q.pop().map(|v| (0, v))));
    log.record(QueueOp::Pop, || QueueRet::Popped(q.pop().map(|v| (0, v))));
    let h = log.into_ops();
    assert!(
        !check(&BoundedFifoSpec { capacity: 16 }, &h),
        "LIFO order must not pass a FIFO spec: {h:#?}"
    );
}

/// Deliberately broken pop that delivers the front twice (a stutter —
/// the classic symptom of a racy head CAS).
#[test]
fn negative_control_duplicate_delivery_is_flagged() {
    use rtcheck::history::CompleteOp;
    let op = |op, ret, invoked, returned| CompleteOp {
        op,
        ret,
        invoked,
        returned,
    };
    let h = vec![
        op(QueueOp::Push(0, 7), QueueRet::Pushed(true), 0, 1),
        op(QueueOp::Pop, QueueRet::Popped(Some((0, 7))), 2, 3),
        op(QueueOp::Pop, QueueRet::Popped(Some((0, 7))), 4, 5),
    ];
    assert!(!check(&BoundedFifoSpec { capacity: 16 }, &h));
}

/// A lost element: pushed, then an empty pop after the push returned.
#[test]
fn negative_control_lost_element_is_flagged() {
    use rtcheck::history::CompleteOp;
    let h = vec![
        CompleteOp {
            op: QueueOp::Push(0, 7),
            ret: QueueRet::Pushed(true),
            invoked: 0,
            returned: 1,
        },
        CompleteOp {
            op: QueueOp::Pop,
            ret: QueueRet::Popped(None),
            invoked: 2,
            returned: 3,
        },
    ];
    assert!(!check(&BoundedFifoSpec { capacity: 16 }, &h));
}

/// Double lease: the pool hands the same slot to two holders.
#[test]
fn negative_control_double_lease_is_flagged() {
    use rtcheck::history::CompleteOp;
    let spec = PoolSpec {
        slots: (0..2).collect(),
    };
    let h = vec![
        CompleteOp {
            op: PoolOp::Acquire,
            ret: PoolRet::Acquired(Some(0)),
            invoked: 0,
            returned: 1,
        },
        CompleteOp {
            op: PoolOp::Acquire,
            ret: PoolRet::Acquired(Some(0)),
            invoked: 2,
            returned: 3,
        },
    ];
    assert!(!check(&spec, &h));
}

/// Priority inversion: a lower band pops while a higher one is
/// non-empty (with no overlap to excuse it).
#[test]
fn negative_control_priority_inversion_is_flagged() {
    use rtcheck::history::CompleteOp;
    let op = |op, ret, invoked, returned| CompleteOp {
        op,
        ret,
        invoked,
        returned,
    };
    let h = vec![
        op(QueueOp::Push(9, 1), QueueRet::Pushed(true), 0, 1),
        op(QueueOp::Push(1, 2), QueueRet::Pushed(true), 2, 3),
        op(QueueOp::Pop, QueueRet::Popped(Some((1, 2))), 4, 5),
    ];
    assert!(!check(&PriorityFifoSpec, &h));
}

/// Overlapping operations legitimately reorder: the checker must not
/// over-flag. Two pushes overlap, so either pop order is fine.
#[test]
fn overlapping_pushes_allow_either_pop_order() {
    use rtcheck::history::CompleteOp;
    let op = |op, ret, invoked, returned| CompleteOp {
        op,
        ret,
        invoked,
        returned,
    };
    let h = vec![
        op(QueueOp::Push(0, 1), QueueRet::Pushed(true), 0, 10),
        op(QueueOp::Push(0, 2), QueueRet::Pushed(true), 1, 9),
        op(QueueOp::Pop, QueueRet::Popped(Some((0, 2))), 11, 12),
        op(QueueOp::Pop, QueueRet::Popped(Some((0, 1))), 13, 14),
    ];
    assert!(check(&BoundedFifoSpec { capacity: 4 }, &h));
}
