//! Model-based checking of the `rtobs` journal ring — the flight
//! recorder every span event lands in. The journal's contract (see
//! `rtobs::journal`) is seqlock-published slots over `fetch_add`
//! sequence claims, which must yield, under arbitrary concurrency:
//!
//! 1. **No duplicated sequence numbers** in any snapshot (two writers
//!    can never publish the same claim);
//! 2. **No torn events**: every snapshotted event is exactly one
//!    writer's record, never a blend of two;
//! 3. **Per-writer program order**: one thread's events appear in the
//!    sequence order it recorded them;
//! 4. **Conservation**: every `record` call is either recorded or
//!    counted in `dropped` — claims are never silently lost.
//!
//! These are the properties the trace reconstructor (`SpanForest`)
//! leans on when it stitches journals into causal trees: a duplicated
//! or reordered seq would fabricate hops that never happened.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtobs::{EventKind, Journal};
use rtplatform::rng::SplitMix64;

fn rounds() -> u64 {
    std::env::var("RTCHECK_LIN_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Payloads carry `(writer << 32) | op_index` and the timestamp word
/// carries a keyed mix of the payload, so a torn read (words from two
/// different records) is detectable from the event alone.
fn stamp(payload: u64) -> u64 {
    payload.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03
}

/// Checks one snapshot against the model. `writers` is the thread
/// count; returns the set of invariant violations found.
fn audit(events: &[rtobs::Event], writers: usize) -> Vec<String> {
    let mut bad = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut last_op = vec![None::<u64>; writers];
    for e in events {
        // (1) snapshot order is strictly increasing seqs: a duplicate
        // or regression means two slots published the same claim.
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                bad.push(format!("seq {} follows {} (dup/reorder)", e.seq, prev));
            }
        }
        last_seq = Some(e.seq);
        // (2) torn-event check: all words must belong to one record.
        let w = (e.payload >> 32) as usize;
        if e.t_ns != stamp(e.payload) || e.subject as u64 != e.payload >> 32 || w >= writers {
            bad.push(format!("torn event at seq {}: {e:?}", e.seq));
            continue;
        }
        // (3) a writer's op indices appear in the order it ran them.
        let op = e.payload & 0xFFFF_FFFF;
        if let Some(prev) = last_op[w] {
            if op <= prev {
                bad.push(format!("writer {w} op {op} after {prev} (reordered)"));
            }
        }
        last_op[w] = Some(op);
    }
    bad
}

/// Sequential conformance: below capacity the journal *is* the model —
/// every record is snapshotted, in order, with nothing dropped.
#[test]
fn sequential_journal_matches_the_model_exactly() {
    let j = Journal::with_capacity(64);
    for i in 0..40u64 {
        j.record(EventKind::PortEnqueue, (i >> 32) as u32, i, stamp(i));
    }
    let events = j.snapshot();
    assert_eq!(events.len(), 40);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
        assert_eq!(e.payload, i as u64);
        assert_eq!(e.t_ns, stamp(i as u64));
    }
    assert_eq!(j.recorded(), 40);
    assert_eq!(j.dropped(), 0);
}

/// Concurrent writers race on a deliberately small ring while a
/// checker thread snapshots mid-flight: every snapshot must satisfy
/// the no-dup / no-tear / program-order invariants, and the final
/// accounting must conserve every claim.
#[test]
fn concurrent_writers_never_duplicate_or_reorder_seqs() {
    const WRITERS: usize = 4;
    const OPS: u64 = 400;
    for seed in 0..rounds() {
        // Small capacity forces many laps; drops under contention are
        // legal, lost or duplicated claims are not.
        let j = Arc::new(Journal::with_capacity(32));
        let done = Arc::new(AtomicBool::new(false));

        let auditor = {
            let j = Arc::clone(&j);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut audits = 0u64;
                while !done.load(Ordering::Acquire) {
                    let bad = audit(&j.snapshot(), WRITERS);
                    assert!(bad.is_empty(), "seed {seed}: {bad:?}");
                    audits += 1;
                }
                audits
            })
        };

        let workers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    let mut rng = SplitMix64::new(seed ^ (w as u64) << 17);
                    for i in 0..OPS {
                        let payload = (w as u64) << 32 | i;
                        j.record(EventKind::SpanEnqueue, w as u32, payload, stamp(payload));
                        if rng.chance(0.05) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for t in workers {
            t.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let audits = auditor.join().unwrap();
        assert!(audits > 0, "the auditor never got a snapshot in");

        // (4) conservation: recorded + dropped accounts for every call.
        assert_eq!(
            j.recorded() + j.dropped(),
            WRITERS as u64 * OPS,
            "seed {seed}: claims leaked"
        );
        let bad = audit(&j.snapshot(), WRITERS);
        assert!(bad.is_empty(), "seed {seed} (final): {bad:?}");
        // A quiescent snapshot of a full ring holds exactly the newest
        // published events — one per live slot, minus dropped laps.
        let events = j.snapshot();
        assert!(!events.is_empty());
        assert!(events.len() <= j.capacity());
    }
}
