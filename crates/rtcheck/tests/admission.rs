//! Banded-admission conformance: histories recorded from the real
//! `PriorityFifo::push_bounded` must satisfy [`BandedAdmissionSpec`],
//! and the spec must reject histories from queues that get admission
//! wrong — most importantly the starved band: a zero-permille band has
//! a watermark of zero, so *any* admitted push in it is a violation,
//! even into an empty queue.

use rtcheck::history::{Clock, ThreadLog};
use rtcheck::lin::check;
use rtcheck::spec::{BandedAdmissionSpec, QueueOp, QueueRet};
use rtplatform::fault::AdmissionPolicy;
use rtsched::{Priority, PriorityFifo};

const CAPACITY: usize = 8;

fn banded() -> AdmissionPolicy {
    // Watermarks on CAPACITY=8: low 4, mid 6, high 8.
    AdmissionPolicy::banded(10, 40)
}

fn starved_low() -> AdmissionPolicy {
    AdmissionPolicy {
        high_floor: 40,
        mid_floor: 10,
        mid_permille: 750,
        low_permille: 0,
    }
}

/// Drives the real queue through a mixed-priority overload (bottom-up
/// fill past every watermark, then a full drain) and checks the
/// recorded history against the sequential model.
#[test]
fn real_queue_banded_history_conforms() {
    let admission = banded();
    let q: PriorityFifo<u64> = PriorityFifo::new();
    let clock = Clock::new();
    let mut log = ThreadLog::new(&clock);

    // Fill bottom-up: 4 lows admitted + 2 shed, 2 mids + 1 shed,
    // 2 highs + 1 hard-full. Every verdict goes into the history.
    let plan: &[(u8, u64)] = &[
        (1, 1),
        (1, 2),
        (1, 3),
        (1, 4),
        (1, 90),
        (9, 91),
        (25, 5),
        (10, 6),
        (39, 92),
        (45, 7),
        (40, 8),
        (50, 93),
    ];
    for &(prio, val) in plan {
        log.record(QueueOp::Push(prio, val), || {
            QueueRet::Pushed(
                q.push_bounded(Priority::new(prio), val, CAPACITY, &admission)
                    .is_ok(),
            )
        });
    }
    // Drain everything, plus one pop of the empty queue.
    for _ in 0..9 {
        log.record(QueueOp::Pop, || {
            QueueRet::Popped(q.try_pop().map(|(p, v)| (p.value(), v)))
        });
    }

    let h = log.into_ops();
    let spec = BandedAdmissionSpec {
        capacity: CAPACITY,
        admission,
    };
    assert!(
        check(&spec, &h),
        "real push_bounded history rejected: {h:#?}"
    );
}

/// The real queue under a zero-permille (starved) low band: every
/// low push is refused even while the queue is empty, the other bands
/// flow, and the recorded history conforms to the model.
#[test]
fn real_queue_starved_band_history_conforms() {
    let admission = starved_low();
    let q: PriorityFifo<u64> = PriorityFifo::new();
    let clock = Clock::new();
    let mut log = ThreadLog::new(&clock);

    for val in 0..3 {
        log.record(QueueOp::Push(1, val), || {
            let refused = q
                .push_bounded(Priority::new(1), val, CAPACITY, &admission)
                .is_err();
            assert!(refused, "starved band admitted a push");
            QueueRet::Pushed(false)
        });
    }
    log.record(QueueOp::Push(40, 100), || {
        QueueRet::Pushed(
            q.push_bounded(Priority::new(40), 100, CAPACITY, &admission)
                .is_ok(),
        )
    });
    log.record(QueueOp::Pop, || {
        QueueRet::Popped(q.try_pop().map(|(p, v)| (p.value(), v)))
    });

    let h = log.into_ops();
    let spec = BandedAdmissionSpec {
        capacity: CAPACITY,
        admission,
    };
    assert!(check(&spec, &h), "starved-band history rejected: {h:#?}");
}

/// Negative control: a queue that admits into a starved band. One
/// sequential push is enough — Pushed(true) at priority 0 under a
/// zero-permille policy has no legal linearization.
#[test]
fn negative_control_starved_band_admission_is_flagged() {
    use rtcheck::history::CompleteOp;
    let h = vec![CompleteOp {
        op: QueueOp::Push(0, 7),
        ret: QueueRet::Pushed(true),
        invoked: 0,
        returned: 1,
    }];
    let spec = BandedAdmissionSpec {
        capacity: CAPACITY,
        admission: starved_low(),
    };
    assert!(
        !check(&spec, &h),
        "an admitted push into a starved band must be flagged"
    );
}

/// Negative control: a queue that lets the low band run past its
/// watermark (5 admitted lows with watermark 4 — the pre-admission
/// FIFO behaviour) must not pass the banded spec.
#[test]
fn negative_control_watermark_overshoot_is_flagged() {
    use rtcheck::history::CompleteOp;
    let h: Vec<_> = (0..5)
        .map(|i| CompleteOp {
            op: QueueOp::Push(0, i),
            ret: QueueRet::Pushed(true),
            invoked: 2 * i,
            returned: 2 * i + 1,
        })
        .collect();
    let spec = BandedAdmissionSpec {
        capacity: CAPACITY,
        admission: banded(),
    };
    assert!(
        !check(&spec, &h),
        "a low band overshooting its watermark must be flagged"
    );
}

/// Negative control in the other direction: a phantom shed — the high
/// band refused with the queue completely empty — is just as illegal
/// as an overshoot. Admission must be exact, not merely conservative.
#[test]
fn negative_control_phantom_shed_is_flagged() {
    use rtcheck::history::CompleteOp;
    let h = vec![CompleteOp {
        op: QueueOp::Push(50, 7),
        ret: QueueRet::Pushed(false),
        invoked: 0,
        returned: 1,
    }];
    let spec = BandedAdmissionSpec {
        capacity: CAPACITY,
        admission: banded(),
    };
    assert!(
        !check(&spec, &h),
        "a refused high-band push on an empty queue must be flagged"
    );
}
