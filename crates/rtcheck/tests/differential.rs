//! Tier-1 differential conformance: a fixed seed range of generated
//! assemblies must produce zero validator/oracle disagreements.
//! `RTCHECK_CASES` scales the sweep (CI's randomized tier-2 sweep uses
//! the `rtcheck` binary instead, so it can print reproducing seeds).

use rtcheck::diff;

fn cases() -> u64 {
    std::env::var("RTCHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

#[test]
fn fixed_seed_range_has_zero_disagreements() {
    let mut accepted = 0u64;
    let n = cases();
    for seed in 0..n {
        match diff::run_seed(seed) {
            Ok(true) => accepted += 1,
            Ok(false) => {}
            Err(counterexample) => panic!("{counterexample}"),
        }
    }
    // The generator must keep exercising both verdicts.
    assert!(accepted > n / 20, "only {accepted}/{n} accepted");
    assert!(accepted < n * 19 / 20, "{accepted}/{n} accepted");
}

#[test]
fn second_fixed_window_has_zero_disagreements() {
    // A disjoint window, so tier 1 isn't pinned to one seed prefix.
    for seed in 1_000_000..1_000_000 + cases() / 2 {
        if let Err(counterexample) = diff::run_seed(seed) {
            panic!("{counterexample}");
        }
    }
}

#[test]
fn shrinker_minimizes_under_predicate() {
    // Find a seed whose assembly has several instances and at least
    // one link, then shrink under "still has a link": the minimum is
    // one link and only the instances that link needs.
    let (cdl, ccl) = (0..500)
        .map(rtcheck::gen::assembly)
        .find(|(_, ccl)| {
            ccl.instances().len() >= 4 && ccl.instances().iter().any(|i| !i.links.is_empty())
        })
        .expect("generator produces linked assemblies");
    let before = ccl.instances().len();
    let has_link = |_: &compadres_core::Cdl, c: &compadres_core::Ccl| {
        c.instances().iter().any(|i| !i.links.is_empty())
    };
    let (cdl2, ccl2) = diff::shrink_with(cdl, ccl, has_link);
    let links: usize = ccl2.instances().iter().map(|i| i.links.len()).sum();
    assert_eq!(links, 1, "shrunk to a single link");
    assert!(
        ccl2.instances().len() < before,
        "instances shrank from {before} to {}",
        ccl2.instances().len()
    );
    assert!(!cdl2.components.is_empty());
}

#[test]
fn counterexample_report_carries_seed_and_repro() {
    // Force a failure through the reporting path by breaking the
    // write/parse leg artificially: an assembly the validator accepts
    // but whose serialized form we corrupt is hard to fabricate from
    // outside, so instead check the Display contract on a synthetic
    // counterexample.
    let ce = diff::Counterexample {
        seed: 1234,
        failure: diff::Failure {
            leg: "verdict",
            detail: "validator accepts, oracle rejects: demo".into(),
        },
        cdl_xml: "<Components/>".into(),
        ccl_xml: "<Application/>".into(),
    };
    let text = ce.to_string();
    assert!(text.contains("seed 1234"));
    assert!(text.contains("leg `verdict`"));
    assert!(text.contains("--seed 1234 --cases 1"), "repro line: {text}");
}
