//! Deterministic interleaving exploration of the parking `Gate`
//! handshake and the Treiber free list behind `ScopePool`, via the
//! yield points instrumented under rtplatform's `rtcheck-hooks`
//! feature. Each scenario runs under every bounded-preemption
//! schedule; a lost wakeup or a double lease fails the assertion for
//! the schedule that exposed it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtcheck::sched::{explore, run_under, spawn_participant, with_hook};
use rtmem::{MemoryModel, ScopePool};
use rtplatform::park::{Gate, WaitOutcome};

/// The instrumentation must actually be compiled in — otherwise every
/// exploration below silently degenerates to plain stress.
#[test]
fn yield_points_are_live() {
    let hits = Arc::new(AtomicUsize::new(0));
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    let (h2, s2) = (Arc::clone(&hits), Arc::clone(&seen));
    with_hook(
        Arc::new(move |site| {
            h2.fetch_add(1, Ordering::SeqCst);
            s2.lock().unwrap().push(site);
        }),
        || {
            rtplatform::chk::participate(true);
            let gate = Gate::new();
            let deadline = Instant::now();
            gate.wait(Some(deadline), || true);
            gate.notify_one();
            let model = MemoryModel::new();
            let pool = ScopePool::new(&model, 1, 1024, 1).unwrap();
            let lease = pool.acquire().unwrap();
            drop(lease);
            rtplatform::chk::participate(false);
        },
    );
    let sites = seen.lock().unwrap();
    assert!(
        sites.contains(&"gate.wait.registered"),
        "gate wait instrumented: {sites:?}"
    );
    assert!(
        sites.contains(&"gate.notify.fenced"),
        "gate notify instrumented: {sites:?}"
    );
    assert!(
        sites.contains(&"freestack.pop.loaded"),
        "free-list pop instrumented: {sites:?}"
    );
    assert!(
        sites.contains(&"freestack.push.staged"),
        "free-list push instrumented: {sites:?}"
    );
}

/// Gate handshake: under every schedule stalling the waiter inside
/// its registration window and/or the notifier between its fence and
/// waiter-count load, the waiter must still wake (never time out —
/// a timeout here is a lost wakeup).
#[test]
fn gate_handshake_has_no_lost_wakeup_under_any_schedule() {
    let schedules = explore(4, 2, |schedule| {
        let outcome = run_under(schedule, || {
            let gate = Arc::new(Gate::new());
            let flag = Arc::new(AtomicBool::new(false));
            let (g, f) = (Arc::clone(&gate), Arc::clone(&flag));
            let waiter = spawn_participant(move || {
                let deadline = Instant::now() + Duration::from_secs(5);
                g.wait(Some(deadline), || f.load(Ordering::SeqCst))
            });
            let (g, f) = (gate, flag);
            let notifier = spawn_participant(move || {
                f.store(true, Ordering::SeqCst);
                g.notify_one();
            });
            notifier.join().unwrap();
            waiter.join().unwrap()
        });
        assert_eq!(
            outcome,
            WaitOutcome::Ready,
            "lost wakeup under schedule {schedule:?}"
        );
    });
    assert!(schedules > 1, "exploration must enumerate schedules");
}

/// Treiber free list: two threads acquiring/releasing through every
/// CAS-window schedule must never double-lease a slot, and the pool
/// must end full.
#[test]
fn scope_pool_never_double_leases_under_any_schedule() {
    let model = MemoryModel::new();
    explore(6, 2, |schedule| {
        run_under(schedule, || {
            let pool = ScopePool::new(&model, 1, 1024, 2).unwrap();
            let capacity = pool.capacity();
            // Name every slot by region id via a full drain.
            let in_use: Arc<HashMap<_, AtomicBool>> = {
                let mut leases = Vec::new();
                let mut map = HashMap::new();
                while let Ok(l) = pool.acquire() {
                    map.insert(l.region(), AtomicBool::new(false));
                    leases.push(l);
                }
                Arc::new(map)
            };
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let pool = pool.clone();
                    let in_use = Arc::clone(&in_use);
                    spawn_participant(move || {
                        for _ in 0..4 {
                            if let Ok(lease) = pool.acquire() {
                                let slot = &in_use[&lease.region()];
                                assert!(!slot.swap(true, Ordering::SeqCst), "slot double-leased");
                                std::thread::yield_now();
                                slot.store(false, Ordering::SeqCst);
                                drop(lease);
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(
                pool.available(),
                capacity,
                "every slot returned under schedule {schedule:?}"
            );
        });
    });
}
