//! # rtcheck — model-based conformance & linearizability harness
//!
//! In-tree correctness tooling for the Compadres reproduction, three
//! instruments in one crate (all offline, seeded, and dependency-free):
//!
//! 1. **Differential conformance** ([`gen`], [`oracle`], [`diff`]):
//!    a property-based generator of random CDL/CCL assemblies and an
//!    independent reference oracle for the paper's static rules (the
//!    Table 1 scope-access matrix, single-parent nesting, exact
//!    message-type matching, loop freedom). Every generated assembly
//!    is judged by both the production `core::validate`/compiler path
//!    and the oracle; any disagreement is shrunk to a minimal
//!    counterexample and printed with its reproducing seed.
//! 2. **Linearizability checking** ([`history`], [`lin`], [`spec`]):
//!    a Wing–Gong-style checker over concurrent histories recorded
//!    from `rtplatform::ring`, `rtsched::{PriorityFifo, BoundedBuffer}`
//!    and `rtmem::ScopePool`, against small sequential specs.
//! 3. **Deterministic interleaving** ([`sched`]): bounded-preemption
//!    schedule enumeration over the yield points instrumented behind
//!    `rtplatform`'s `rtcheck-hooks` feature (the parking `Gate`
//!    handshake and the Treiber free-list CAS windows).
//! 4. **Distribution specs** ([`membership`], [`shardmap`]): a
//!    model-based history checker for the membership/failover protocol
//!    (no failover without suspicion, no split-brain, rebind exactly
//!    once) with mutation-based negative controls, and property checks
//!    for the rendezvous shard map behind sharded naming (consistent
//!    routing, minimal movement under membership churn).
//!
//! The fixed-seed subset runs in tier 1 (`scripts/check.sh`); CI adds a
//! time-boxed randomized sweep. See DESIGN.md §5f and §5k.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod gen;
pub mod history;
pub mod lin;
pub mod membership;
pub mod oracle;
pub mod record;
pub mod sched;
pub mod shardmap;
pub mod spec;
