//! Property checks for the sharded-naming routing map.
//!
//! The [`ShardMap`] makes three promises its
//! clients (every node of a deployment, with no coordination) rely on:
//!
//! 1. **Consistent routing** — the same name always routes to the same
//!    shard, on every client, regardless of the order shard labels were
//!    listed in;
//! 2. **Minimal movement** — removing a shard only moves the names that
//!    lived on it; adding a shard only pulls names onto the new shard.
//!    Everything else keeps its route, so cached resolutions survive
//!    membership churn;
//! 3. **Coverage** — every shard owns a share of the namespace (no
//!    dead resolver).
//!
//! [`check_seed`] exercises all three on seeded random shard sets and
//! name populations; it runs in the fixed-seed tier-1 sweep
//! (`rtcheck shard`) and the randomized tier-2 sweep.

use rtcorba::shard::ShardMap;
use rtplatform::rng::SplitMix64;

/// One property round over a seeded shard set and name population.
///
/// # Errors
///
/// A description of the violated property, with the seed baked in.
pub fn check_seed(seed: u64) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed);
    let n_shards = rng.range_usize(1, 7);
    let labels: Vec<String> = (0..n_shards)
        .map(|i| format!("resolver-{i}-{}", rng.below(1000)))
        .collect();
    let names: Vec<String> = (0..labels.len() * 64)
        .map(|i| format!("App/n{}/C{}.In", rng.below(16), i))
        .collect();

    let map = ShardMap::new(labels.clone());

    // Totality + determinism (a rebuilt map is a different client).
    let rebuilt = ShardMap::new(labels.clone());
    for name in &names {
        let idx = map.index_for(name);
        if idx >= map.len() {
            return Err(format!("seed {seed}: {name:?} routed out of range"));
        }
        if rebuilt.index_for(name) != idx {
            return Err(format!(
                "seed {seed}: {name:?} routes differently on a rebuilt map"
            ));
        }
    }

    // Label-order independence: clients may list resolvers in any order.
    if labels.len() > 1 {
        let mut shuffled = labels.clone();
        let rot = rng.range_usize(1, shuffled.len());
        shuffled.rotate_left(rot);
        let reordered = ShardMap::new(shuffled);
        for name in &names {
            if reordered.shard_for(name) != map.shard_for(name) {
                return Err(format!(
                    "seed {seed}: {name:?} routed to {:?} under one label order, {:?} under another",
                    map.shard_for(name),
                    reordered.shard_for(name)
                ));
            }
        }
    }

    // Coverage: with 64 names per shard, an unhit shard means the hash
    // is broken, not unlucky.
    if labels.len() > 1 {
        let mut hits = vec![0u32; labels.len()];
        for name in &names {
            hits[map.index_for(name)] += 1;
        }
        if let Some(dead) = hits.iter().position(|&h| h == 0) {
            return Err(format!(
                "seed {seed}: shard {:?} owns no names out of {} ({hits:?})",
                labels[dead],
                names.len()
            ));
        }
    }

    // Minimal movement on removal: only the removed shard's names move.
    if labels.len() > 1 {
        let victim = rng.below(labels.len());
        let survivors: Vec<String> = labels
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, l)| l.clone())
            .collect();
        let shrunk = ShardMap::new(survivors);
        for name in &names {
            if map.shard_for(name) != labels[victim]
                && shrunk.shard_for(name) != map.shard_for(name)
            {
                return Err(format!(
                    "seed {seed}: {name:?} moved from {:?} to {:?} when unrelated shard {:?} left",
                    map.shard_for(name),
                    shrunk.shard_for(name),
                    labels[victim]
                ));
            }
        }
    }

    // Minimal movement on addition: names either stay or move to the
    // new shard, never between old shards.
    {
        let mut grown = labels.clone();
        grown.push(format!("resolver-new-{}", rng.below(1000)));
        let grown_map = ShardMap::new(grown.clone());
        for name in &names {
            let before = map.shard_for(name);
            let after = grown_map.shard_for(name);
            if after != before && after != grown.last().unwrap().as_str() {
                return Err(format!(
                    "seed {seed}: {name:?} moved between old shards ({before:?} -> {after:?}) when {:?} joined",
                    grown.last().unwrap()
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_sweep_holds() {
        for seed in 0..300 {
            if let Err(e) = check_seed(seed) {
                panic!("{e}");
            }
        }
    }
}
