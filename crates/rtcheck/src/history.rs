//! Concurrent-history recording for linearizability checking.
//!
//! Threads time-stamp each operation's invocation and return against a
//! single shared logical clock (an `AtomicU64` bumped with SeqCst RMWs,
//! so stamps are totally ordered and consistent with real time across
//! threads), log operations locally without synchronization, and the
//! merged log forms the history handed to [`crate::lin::check`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One completed operation: what was called, what it returned, and the
/// logical times the call began and ended.
#[derive(Debug, Clone)]
pub struct CompleteOp<O, R> {
    /// The operation invoked.
    pub op: O,
    /// Its observed return value.
    pub ret: R,
    /// Logical time the call was issued.
    pub invoked: u64,
    /// Logical time the call returned.
    pub returned: u64,
}

/// Shared logical clock cloned into every recording thread.
#[derive(Debug, Clone, Default)]
pub struct Clock(Arc<AtomicU64>);

impl Clock {
    /// Fresh clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// Per-thread operation log; merge with [`merge`] after joining.
#[derive(Debug)]
pub struct ThreadLog<O, R> {
    clock: Clock,
    ops: Vec<CompleteOp<O, R>>,
}

impl<O, R> ThreadLog<O, R> {
    /// A log stamping against `clock`.
    pub fn new(clock: &Clock) -> ThreadLog<O, R> {
        ThreadLog {
            clock: clock.clone(),
            ops: Vec::new(),
        }
    }

    /// Runs `call` and records it as `op` with the returned value.
    pub fn record(&mut self, op: O, call: impl FnOnce() -> R) -> &R {
        let invoked = self.clock.tick();
        let ret = call();
        let returned = self.clock.tick();
        self.ops.push(CompleteOp {
            op,
            ret,
            invoked,
            returned,
        });
        &self.ops.last().unwrap().ret
    }

    /// Consumes the log, yielding its operations.
    pub fn into_ops(self) -> Vec<CompleteOp<O, R>> {
        self.ops
    }
}

/// Merges per-thread logs into one history (order is irrelevant to the
/// checker; timestamps carry the real-time partial order).
pub fn merge<O, R>(logs: Vec<Vec<CompleteOp<O, R>>>) -> Vec<CompleteOp<O, R>> {
    logs.into_iter().flatten().collect()
}
