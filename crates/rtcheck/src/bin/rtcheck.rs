//! rtcheck CLI: differential conformance sweeps and linearizability
//! sweeps, either over a deterministic seed range (tier 1) or
//! time-boxed over random seeds (tier 2). Every failure prints the
//! reproducing seed.
//!
//! ```text
//! rtcheck diff   --seed 1000 --cases 10000    # seeds 1000..11000
//! rtcheck diff   --seed 42 --sweep-secs 60    # randomized, 60 s box
//! rtcheck lin    --seed 7 --rounds 100        # ring/buffer/fifo/pool/segpool
//! rtcheck lin    --seed 7 --sweep-secs 60
//! rtcheck member --seed 0 --cases 500         # membership/failover spec
//! rtcheck shard  --seed 0 --cases 500         # shard-map properties
//! ```

use std::time::{Duration, Instant};

use rtcheck::lin;
use rtcheck::record;
use rtcheck::spec::{BoundedFifoSpec, PriorityFifoSpec};
use rtplatform::rng::SplitMix64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut seed: u64 = 0xC0FFEE;
    let mut cases: u64 = 2_000;
    let mut rounds: u64 = 50;
    let mut sweep_secs: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "diff" | "lin" | "member" | "shard" => cmd = Some(a.clone()),
            "--seed" => seed = parse(it.next(), "--seed"),
            "--cases" => cases = parse(it.next(), "--cases"),
            "--rounds" => rounds = parse(it.next(), "--rounds"),
            "--sweep-secs" => sweep_secs = Some(parse(it.next(), "--sweep-secs")),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    match cmd.as_deref() {
        Some("diff") => diff(seed, cases, sweep_secs),
        Some("lin") => lin_sweep(seed, rounds, sweep_secs),
        Some("member") => seeded_sweep(
            "member",
            "membership histories checked (simulated legal + mutated illegal)",
            rtcheck::membership::check_seed,
            seed,
            cases,
            sweep_secs,
        ),
        Some("shard") => seeded_sweep(
            "shard",
            "shard-map rounds checked (routing, coverage, minimal movement)",
            rtcheck::shardmap::check_seed,
            seed,
            cases,
            sweep_secs,
        ),
        _ => usage("expected a command: diff | lin | member | shard"),
    }
}

fn parse(v: Option<&String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!("rtcheck: {msg}");
    eprintln!("usage: rtcheck diff   [--seed S] [--cases N | --sweep-secs T]");
    eprintln!("       rtcheck lin    [--seed S] [--rounds N | --sweep-secs T]");
    eprintln!("       rtcheck member [--seed S] [--cases N | --sweep-secs T]");
    eprintln!("       rtcheck shard  [--seed S] [--cases N | --sweep-secs T]");
    std::process::exit(2);
}

/// Differential conformance: generated assemblies through validator,
/// oracle, compiler renders and the write/parse round trip.
fn diff(seed: u64, cases: u64, sweep_secs: Option<u64>) {
    let started = Instant::now();
    let mut checked: u64 = 0;
    let mut accepted: u64 = 0;
    let mut derive = SplitMix64::new(seed);
    loop {
        let case_seed = match sweep_secs {
            None if checked == cases => break,
            None => seed + checked,
            Some(secs) if started.elapsed() >= Duration::from_secs(secs) => break,
            Some(_) => derive.next_u64(),
        };
        match rtcheck::diff::run_seed(case_seed) {
            Ok(true) => accepted += 1,
            Ok(false) => {}
            Err(counterexample) => {
                eprintln!("{counterexample}");
                std::process::exit(1);
            }
        }
        checked += 1;
    }
    println!(
        "rtcheck diff: {checked} assemblies checked ({accepted} accepted, {} rejected) in {:?}, 0 disagreements",
        checked - accepted,
        started.elapsed()
    );
}

/// Linearizability: record short concurrent workloads on the real
/// structures, check each against its sequential spec.
fn lin_sweep(seed: u64, rounds: u64, sweep_secs: Option<u64>) {
    let started = Instant::now();
    let mut checked: u64 = 0;
    let mut derive = SplitMix64::new(seed);
    loop {
        let round_seed = match sweep_secs {
            None if checked == rounds => break,
            None => seed + checked,
            Some(secs) if started.elapsed() >= Duration::from_secs(secs) => break,
            Some(_) => derive.next_u64(),
        };
        lin_round(round_seed);
        checked += 1;
    }
    println!(
        "rtcheck lin: {checked} rounds (ring, buffer, fifo, pool, segpool) in {:?}, all linearizable",
        started.elapsed()
    );
}

/// Generic seeded sweep over a `check_seed` property: deterministic
/// seed range or time-boxed random seeds, failure prints the
/// reproducing seed and exits non-zero.
fn seeded_sweep(
    name: &str,
    what: &str,
    check: fn(u64) -> Result<(), String>,
    seed: u64,
    cases: u64,
    sweep_secs: Option<u64>,
) {
    let started = Instant::now();
    let mut checked: u64 = 0;
    let mut derive = SplitMix64::new(seed);
    loop {
        let case_seed = match sweep_secs {
            None if checked == cases => break,
            None => seed + checked,
            Some(secs) if started.elapsed() >= Duration::from_secs(secs) => break,
            Some(_) => derive.next_u64(),
        };
        if let Err(msg) = check(case_seed) {
            eprintln!("rtcheck {name}: {msg}");
            eprintln!(
                "reproduce: cargo run --release -p rtcheck -- {name} --seed {case_seed} --cases 1"
            );
            std::process::exit(1);
        }
        checked += 1;
    }
    println!(
        "rtcheck {name}: {checked} {what} in {:?}, 0 violations",
        started.elapsed()
    );
}

fn lin_round(seed: u64) {
    let ring = record::ring_history(seed, 3, 6, 4);
    verify(seed, "MpmcRing", &BoundedFifoSpec { capacity: 4 }, &ring);
    let buffer = record::buffer_history(seed, 3, 6, 3);
    verify(
        seed,
        "BoundedBuffer",
        &BoundedFifoSpec { capacity: 3 },
        &buffer,
    );
    let fifo = record::fifo_history(seed, 3, 6);
    verify(seed, "PriorityFifo", &PriorityFifoSpec, &fifo);
    let (pool_spec, pool) = record::pool_history(seed, 3, 8, 3);
    verify(seed, "ScopePool", &pool_spec, &pool);
    let (seg_spec, segpool) = record::segpool_history(seed, 3, 8, 3);
    verify(seed, "SegPool", &seg_spec, &segpool);
}

fn verify<S: lin::Spec>(
    seed: u64,
    name: &str,
    spec: &S,
    history: &[rtcheck::history::CompleteOp<S::Op, S::Ret>],
) where
    S::Op: std::fmt::Debug,
    S::Ret: std::fmt::Debug,
{
    if !lin::check(spec, history) {
        eprintln!("rtcheck: {name} history is NOT linearizable (seed {seed})");
        let mut sorted: Vec<_> = history.iter().collect();
        sorted.sort_by_key(|e| e.invoked);
        for e in sorted {
            eprintln!(
                "  [{:>3},{:>3}] {:?} -> {:?}",
                e.invoked, e.returned, e.op, e.ret
            );
        }
        eprintln!("reproduce: cargo run --release -p rtcheck -- lin --seed {seed} --rounds 1");
        std::process::exit(1);
    }
}
