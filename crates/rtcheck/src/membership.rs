//! Model-based checking of membership/failover histories.
//!
//! The core membership layer journals every transition into a
//! [`MembershipLog`](compadres_core::membership::MembershipLog). This
//! module holds the *specification* those histories must satisfy:
//!
//! * **State-machine legality** — per node, `Alive → Suspect → Down →
//!   Alive`: a node is never declared down without first being
//!   suspected (a single lost probe must not kill a member), and
//!   `Alive`/`Suspect` events only fire on real transitions.
//! * **No failover without suspicion** — a `FailoverStart` for a
//!   primary endpoint requires its node to be suspected or down at
//!   that point in the history. A failover against a healthy node is a
//!   phantom failover.
//! * **Rebind exactly once, no split-brain** — within one failover
//!   episode exactly one `Rebind` of the primary name happens, and
//!   episodes for the same primary never overlap; two rebinds (or two
//!   concurrent episodes) would leave different senders pointed at
//!   different replicas.
//!
//! [`check`] validates a history; [`simulate`] generates seeded
//! histories from a faithful model (always accepted), and
//! [`check_seed`] runs the full differential round: the simulated
//! history must pass, and a seeded mutation of it — phantom failover,
//! stuck suspect, double rebind, spurious alive — must be rejected.
//! Any other outcome is a bug in the spec or the model.

use compadres_core::membership::{MemberEvent, MemberEventKind};
use rtplatform::rng::SplitMix64;

/// A spec violation: which event broke which rule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the offending event in the history.
    pub index: usize,
    /// Short rule name (stable, used by tests).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: [{}] {}", self.index, self.rule, self.detail)
    }
}

/// The node a subject belongs to: the second segment of a compiler
/// endpoint name (`"App/node/Inst.Port"`), or the subject itself when
/// it is already a bare node name.
pub fn node_of(subject: &str) -> &str {
    let mut parts = subject.split('/');
    match (parts.next(), parts.next()) {
        (Some(_), Some(node)) => node,
        _ => subject,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Alive,
    Suspect,
    Down,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpisodeState {
    Steady,
    InFlight { rebound: bool },
}

/// Checks a membership/failover history against the specification.
///
/// # Errors
///
/// The first [`Violation`] found, with the offending event index.
pub fn check(events: &[MemberEvent]) -> Result<(), Violation> {
    use std::collections::HashMap;
    let mut nodes: HashMap<&str, NodeState> = HashMap::new();
    let mut episodes: HashMap<&str, EpisodeState> = HashMap::new();
    let mut last_t = 0u64;

    for (index, e) in events.iter().enumerate() {
        if e.t_ns < last_t {
            return Err(Violation {
                index,
                rule: "monotone-time",
                detail: format!("t_ns {} before previous {}", e.t_ns, last_t),
            });
        }
        last_t = e.t_ns;
        let node = node_of(&e.subject);
        let node_state = *nodes.get(node).unwrap_or(&NodeState::Alive);
        match e.kind {
            MemberEventKind::Suspect => {
                if node_state != NodeState::Alive {
                    return Err(Violation {
                        index,
                        rule: "suspect-from-alive",
                        detail: format!("{node} suspected while already {node_state:?}"),
                    });
                }
                nodes.insert(node, NodeState::Suspect);
            }
            MemberEventKind::Down => {
                if node_state != NodeState::Suspect {
                    return Err(Violation {
                        index,
                        rule: "down-needs-suspicion",
                        detail: format!("{node} declared down from {node_state:?}"),
                    });
                }
                nodes.insert(node, NodeState::Down);
            }
            MemberEventKind::Alive => {
                if node_state == NodeState::Alive {
                    return Err(Violation {
                        index,
                        rule: "spurious-alive",
                        detail: format!("{node} reported alive while alive"),
                    });
                }
                nodes.insert(node, NodeState::Alive);
            }
            MemberEventKind::FailoverStart => {
                if node_state == NodeState::Alive {
                    return Err(Violation {
                        index,
                        rule: "no-failover-without-suspicion",
                        detail: format!("failover from {:?} while node {node} is alive", e.subject),
                    });
                }
                let ep = *episodes
                    .get(e.subject.as_str())
                    .unwrap_or(&EpisodeState::Steady);
                if ep != EpisodeState::Steady {
                    return Err(Violation {
                        index,
                        rule: "no-overlapping-episodes",
                        detail: format!(
                            "second failover of {:?} while one is in flight",
                            e.subject
                        ),
                    });
                }
                episodes.insert(&e.subject, EpisodeState::InFlight { rebound: false });
            }
            MemberEventKind::Rebind => {
                match *episodes
                    .get(e.subject.as_str())
                    .unwrap_or(&EpisodeState::Steady)
                {
                    EpisodeState::InFlight { rebound: false } => {
                        episodes.insert(&e.subject, EpisodeState::InFlight { rebound: true });
                    }
                    EpisodeState::InFlight { rebound: true } => {
                        return Err(Violation {
                            index,
                            rule: "rebind-exactly-once",
                            detail: format!("{:?} rebound twice in one episode", e.subject),
                        });
                    }
                    EpisodeState::Steady => {
                        return Err(Violation {
                            index,
                            rule: "rebind-inside-episode",
                            detail: format!("{:?} rebound outside any failover", e.subject),
                        });
                    }
                }
            }
            MemberEventKind::FailoverComplete => {
                match *episodes
                    .get(e.subject.as_str())
                    .unwrap_or(&EpisodeState::Steady)
                {
                    EpisodeState::InFlight { rebound: true } => {
                        episodes.insert(&e.subject, EpisodeState::Steady);
                    }
                    other => {
                        return Err(Violation {
                            index,
                            rule: "complete-after-rebind",
                            detail: format!(
                                "{:?} completed failover from state {other:?}",
                                e.subject
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Simulates a legal cluster history: nodes miss probes, get suspected,
/// go down, fail over (exactly one rebind each) and recover. The output
/// always satisfies [`check`] — by construction it follows the model.
pub fn simulate(seed: u64) -> Vec<MemberEvent> {
    let mut rng = SplitMix64::new(seed);
    let n_nodes = rng.range_usize(2, 5);
    let nodes: Vec<String> = (0..n_nodes).map(|i| format!("n{i}")).collect();
    let endpoint = |i: usize| format!("App/n{i}/C.In");
    let mut state: Vec<NodeState> = vec![NodeState::Alive; n_nodes];
    // Whether node i's primary endpoint currently has an episode state.
    let mut episode: Vec<EpisodeState> = vec![EpisodeState::Steady; n_nodes];
    let mut events = Vec::new();
    let mut t = 0u64;
    let rounds = rng.range_usize(5, 40);
    for _ in 0..rounds {
        let i = rng.below(n_nodes);
        t += rng.range_usize(1, 1_000_000) as u64;
        let mut push = |subject: &str, kind, t: u64| {
            events.push(MemberEvent {
                t_ns: t,
                subject: subject.to_string(),
                kind,
            });
        };
        match state[i] {
            NodeState::Alive => {
                if rng.chance(0.5) {
                    push(&nodes[i], MemberEventKind::Suspect, t);
                    state[i] = NodeState::Suspect;
                }
            }
            NodeState::Suspect => {
                if rng.chance(0.5) {
                    push(&nodes[i], MemberEventKind::Down, t);
                    state[i] = NodeState::Down;
                } else {
                    push(&nodes[i], MemberEventKind::Alive, t);
                    state[i] = NodeState::Alive;
                }
            }
            NodeState::Down => {
                if episode[i] == EpisodeState::Steady && rng.chance(0.6) {
                    // One full failover episode against this node's
                    // primary endpoint: start, rebind once, complete.
                    let ep = endpoint(i);
                    push(&ep, MemberEventKind::FailoverStart, t);
                    t += rng.range_usize(1, 100_000) as u64;
                    push(&ep, MemberEventKind::Rebind, t);
                    t += rng.range_usize(1, 100_000) as u64;
                    push(&ep, MemberEventKind::FailoverComplete, t);
                    episode[i] = EpisodeState::Steady; // completed
                } else if rng.chance(0.3) {
                    push(&nodes[i], MemberEventKind::Alive, t);
                    state[i] = NodeState::Alive;
                }
            }
        }
    }
    events
}

/// The seeded negative controls: one legality-breaking mutation of a
/// valid history. Returns the mutated history and the rule it must
/// trip (used to label failures).
fn mutate(events: &[MemberEvent], rng: &mut SplitMix64) -> (Vec<MemberEvent>, &'static str) {
    let t0 = events.first().map(|e| e.t_ns).unwrap_or(0);
    for _ in 0..4 {
        match rng.below(4) {
            // Phantom failover: an episode against a node the history
            // has never suspected.
            0 => {
                let mut out = events.to_vec();
                out.insert(
                    0,
                    MemberEvent {
                        t_ns: t0,
                        subject: "App/healthy/C.In".to_string(),
                        kind: MemberEventKind::FailoverStart,
                    },
                );
                return (out, "phantom-failover");
            }
            // Stuck suspect: erase a Suspect so the Down (or failover)
            // that follows arrives without suspicion.
            1 => {
                if let Some(pos) = events
                    .iter()
                    .position(|e| e.kind == MemberEventKind::Suspect)
                {
                    let followed = events[pos..].iter().any(|e| {
                        e.kind == MemberEventKind::Down && e.subject == events[pos].subject
                    });
                    if followed {
                        let mut out = events.to_vec();
                        out.remove(pos);
                        return (out, "stuck-suspect");
                    }
                }
            }
            // Double rebind: split-brain — the same episode rebinds the
            // primary name twice.
            2 => {
                if let Some(pos) = events
                    .iter()
                    .position(|e| e.kind == MemberEventKind::Rebind)
                {
                    let mut out = events.to_vec();
                    out.insert(pos + 1, events[pos].clone());
                    return (out, "double-rebind");
                }
            }
            // Spurious alive: an alive report for a node that never left
            // the alive state.
            _ => {
                let mut out = events.to_vec();
                out.insert(
                    0,
                    MemberEvent {
                        t_ns: t0,
                        subject: "nq".to_string(),
                        kind: MemberEventKind::Alive,
                    },
                );
                return (out, "spurious-alive");
            }
        }
    }
    // Fallback — always applicable.
    let mut out = events.to_vec();
    out.insert(
        0,
        MemberEvent {
            t_ns: t0,
            subject: "App/healthy/C.In".to_string(),
            kind: MemberEventKind::FailoverStart,
        },
    );
    (out, "phantom-failover")
}

/// One differential round: the simulated history must satisfy the spec
/// and its mutation must violate it.
///
/// # Errors
///
/// A description of the disagreement, with the seed baked in.
pub fn check_seed(seed: u64) -> Result<(), String> {
    let history = simulate(seed);
    if let Err(v) = check(&history) {
        return Err(format!(
            "seed {seed}: model-generated history rejected: {v}\nhistory: {history:?}"
        ));
    }
    let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
    let (mutated, control) = mutate(&history, &mut rng);
    if check(&mutated).is_ok() {
        return Err(format!(
            "seed {seed}: {control} control accepted by the spec\nhistory: {mutated:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, subject: &str, kind: MemberEventKind) -> MemberEvent {
        MemberEvent {
            t_ns,
            subject: subject.to_string(),
            kind,
        }
    }

    #[test]
    fn full_failover_episode_is_legal() {
        let h = vec![
            ev(1, "hub", MemberEventKind::Suspect),
            ev(2, "hub", MemberEventKind::Down),
            ev(3, "App/hub/H.In", MemberEventKind::FailoverStart),
            ev(4, "App/hub/H.In", MemberEventKind::Rebind),
            ev(5, "App/hub/H.In", MemberEventKind::FailoverComplete),
            ev(6, "hub", MemberEventKind::Alive),
        ];
        check(&h).unwrap();
    }

    #[test]
    fn phantom_failover_rejected() {
        let h = vec![ev(1, "App/hub/H.In", MemberEventKind::FailoverStart)];
        let v = check(&h).unwrap_err();
        assert_eq!(v.rule, "no-failover-without-suspicion");
    }

    #[test]
    fn down_without_suspicion_rejected() {
        let h = vec![ev(1, "hub", MemberEventKind::Down)];
        assert_eq!(check(&h).unwrap_err().rule, "down-needs-suspicion");
    }

    #[test]
    fn double_rebind_rejected_as_split_brain() {
        let h = vec![
            ev(1, "hub", MemberEventKind::Suspect),
            ev(2, "hub", MemberEventKind::Down),
            ev(3, "App/hub/H.In", MemberEventKind::FailoverStart),
            ev(4, "App/hub/H.In", MemberEventKind::Rebind),
            ev(5, "App/hub/H.In", MemberEventKind::Rebind),
        ];
        assert_eq!(check(&h).unwrap_err().rule, "rebind-exactly-once");
    }

    #[test]
    fn overlapping_episodes_rejected() {
        let h = vec![
            ev(1, "hub", MemberEventKind::Suspect),
            ev(2, "hub", MemberEventKind::Down),
            ev(3, "App/hub/H.In", MemberEventKind::FailoverStart),
            ev(4, "App/hub/H.In", MemberEventKind::FailoverStart),
        ];
        assert_eq!(check(&h).unwrap_err().rule, "no-overlapping-episodes");
    }

    #[test]
    fn fixed_seed_sweep_agrees() {
        for seed in 0..500 {
            if let Err(e) = check_seed(seed) {
                panic!("{e}");
            }
        }
    }
}
