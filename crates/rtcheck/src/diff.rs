//! Differential driver: generated assembly → production validator vs
//! reference oracle, plus compiler-render and write/parse round-trip
//! legs, with greedy shrinking of failures to a minimal counterexample.

use compadres_compiler::{
    partition, render_deployment, render_dot_validated, render_plan, render_validated, DEFAULT_NODE,
};
use compadres_core::{
    parse_ccl, parse_cdl, validate, write_ccl, write_cdl, Ccl, Cdl, ValidatedApp,
};

use crate::gen;
use crate::oracle::{self, Verdict};

/// A reproducible disagreement between implementations.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which leg disagreed.
    pub leg: &'static str,
    /// Human-readable explanation of the two sides.
    pub detail: String,
}

/// Checks one assembly through every leg. `Ok(accepted)` reports
/// whether both sides accepted it (for sweep statistics).
pub fn check_case(cdl: &Cdl, ccl: &Ccl) -> Result<bool, Failure> {
    let production = validate(cdl, ccl);
    let reference = oracle::check(cdl, ccl);

    // Leg 1: accept/reject agreement.
    let app: ValidatedApp = match (production, &reference) {
        (Ok(app), Verdict::Accept(_)) => app,
        (Err(e), Verdict::Reject(_)) => {
            // Both reject; the compiler entry points must also reject.
            if render_plan(cdl, ccl).is_ok() {
                return Err(Failure {
                    leg: "compiler",
                    detail: format!("validate rejects ({e}) but render_plan accepts"),
                });
            }
            return Ok(false);
        }
        (Ok(_), Verdict::Reject(why)) => {
            return Err(Failure {
                leg: "verdict",
                detail: format!("validator accepts, oracle rejects: {why}"),
            });
        }
        (Err(e), Verdict::Accept(_)) => {
            return Err(Failure {
                leg: "verdict",
                detail: format!("oracle accepts, validator rejects: {e}"),
            });
        }
    };
    let Verdict::Accept(oracle_conns) = reference else {
        unreachable!()
    };

    // Leg 2: the derived connection lists must agree element-wise
    // (both sides iterate instances parent-first in declaration order).
    let got: Vec<String> = app.connections.iter().map(|c| conn_key(&app, c)).collect();
    let want: Vec<String> = oracle_conns
        .iter()
        .map(|c| {
            format!(
                "{}.{} -> {}.{} [{:?}] type {} home {}",
                c.from.0,
                c.from.1,
                c.to.0,
                c.to.1,
                c.kind,
                c.message_type,
                c.home.as_deref().unwrap_or("immortal")
            )
        })
        .collect();
    if got != want {
        return Err(Failure {
            leg: "connections",
            detail: format!(
                "validator derived:\n  {}\noracle derived:\n  {}",
                got.join("\n  "),
                want.join("\n  ")
            ),
        });
    }

    // Leg 3: compiler renders on the accepted app must be well-formed.
    let plan = render_validated(&app);
    let dot = render_dot_validated(&app);
    if !plan.starts_with("Application:")
        || !plan.contains(&format!("Connections ({}):", app.connections.len()))
    {
        return Err(Failure {
            leg: "plan",
            detail: format!("malformed plan:\n{plan}"),
        });
    }
    if !dot.starts_with("digraph") || dot.matches('{').count() != dot.matches('}').count() {
        return Err(Failure {
            leg: "dot",
            detail: format!("unbalanced dot graph:\n{dot}"),
        });
    }

    // Leg 4: write → parse → re-validate is observation-preserving.
    // (The writer regroups links under their ports, so connection order
    // may legally change: compare as sorted multisets.)
    let (cdl_xml, ccl_xml) = (write_cdl(cdl), write_ccl(ccl));
    let reparsed = parse_cdl(&cdl_xml)
        .map_err(|e| e.to_string())
        .and_then(|cdl2| {
            parse_ccl(&ccl_xml)
                .map(|ccl2| (cdl2, ccl2))
                .map_err(|e| e.to_string())
        })
        .and_then(|(cdl2, ccl2)| validate(&cdl2, &ccl2).map_err(|e| e.to_string()));
    match reparsed {
        Err(e) => {
            return Err(Failure {
                leg: "roundtrip",
                detail: format!("accepted assembly fails after write+parse: {e}"),
            });
        }
        Ok(app2) => {
            let mut a: Vec<String> = got;
            let mut b: Vec<String> = app2
                .connections
                .iter()
                .map(|c| conn_key(&app2, c))
                .collect();
            a.sort();
            b.sort();
            let inst = |app: &ValidatedApp| -> Vec<String> {
                app.instances
                    .iter()
                    .map(|i| {
                        format!(
                            "{} : {} {:?} node={:?} replicas={:?}",
                            i.name, i.class, i.kind, i.node, i.replicas
                        )
                    })
                    .collect()
            };
            if a != b || inst(&app) != inst(&app2) {
                return Err(Failure {
                    leg: "roundtrip",
                    detail: "write+parse+validate derived a different app".to_string(),
                });
            }
        }
    }

    // Leg 5: partitioning an accepted assembly must succeed, place every
    // instance on its effective node, and lower exactly the cross-node
    // connections into matching exporter/remote pairs.
    let deployment = partition(cdl, ccl).map_err(|e| Failure {
        leg: "partition",
        detail: format!("accepted assembly fails to partition: {e}"),
    })?;
    let eff_node = |i: &compadres_core::ValidatedInstance| -> String {
        i.node.clone().unwrap_or_else(|| DEFAULT_NODE.to_string())
    };
    for i in &app.instances {
        let node = eff_node(i);
        let on_plan = deployment
            .node(&node)
            .is_some_and(|p| p.ccl.instance(&i.name).is_some());
        if !on_plan {
            return Err(Failure {
                leg: "partition",
                detail: format!("instance {} missing from its node plan {node}", i.name),
            });
        }
    }
    let crossing = app
        .connections
        .iter()
        .filter(|c| eff_node(&app.instances[c.from.0 .0]) != eff_node(&app.instances[c.to.0 .0]))
        .count();
    if deployment.cross_links.len() != crossing {
        return Err(Failure {
            leg: "partition",
            detail: format!(
                "{} connections cross nodes but {} links were lowered",
                crossing,
                deployment.cross_links.len()
            ),
        });
    }
    for link in &deployment.cross_links {
        let exported = deployment.node(&link.to_node).is_some_and(|p| {
            p.exports
                .iter()
                .any(|e| e.endpoint == link.endpoint && e.message_type == link.message_type)
        });
        let referenced = deployment.node(&link.from_node).is_some_and(|p| {
            p.remotes
                .iter()
                .any(|r| r.endpoint == link.endpoint && r.message_type == link.message_type)
        });
        if !exported || !referenced {
            return Err(Failure {
                leg: "partition",
                detail: format!(
                    "cross-node link via {} lacks its {} half",
                    link.endpoint,
                    if exported { "remote" } else { "export" }
                ),
            });
        }
    }
    let manifest = render_deployment(&deployment);
    if !manifest.starts_with(&format!("Deployment: {}", deployment.app))
        || deployment
            .nodes
            .iter()
            .any(|n| !manifest.contains(&format!("Node {}:", n.node)))
    {
        return Err(Failure {
            leg: "partition",
            detail: format!("malformed deployment manifest:\n{manifest}"),
        });
    }
    Ok(true)
}

fn conn_key(app: &ValidatedApp, c: &compadres_core::Connection) -> String {
    format!(
        "{}.{} -> {}.{} [{:?}] type {} home {}",
        app.instances[c.from.0 .0].name,
        c.from.1,
        app.instances[c.to.0 .0].name,
        c.to.1,
        c.kind,
        c.message_type,
        c.home
            .map(|h| app.instances[h.0].name.clone())
            .unwrap_or_else(|| "immortal".to_string())
    )
}

/// Outcome of [`run_seed`]: a counterexample shrunk to minimal size.
#[derive(Debug)]
pub struct Counterexample {
    /// The seed that produced the failing assembly.
    pub seed: u64,
    /// The failing leg and explanation (re-derived on the shrunk form).
    pub failure: Failure,
    /// Minimal CDL, serialized.
    pub cdl_xml: String,
    /// Minimal CCL, serialized.
    pub ccl_xml: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rtcheck: disagreement on leg `{}` (seed {})",
            self.failure.leg, self.seed
        )?;
        writeln!(f, "{}", self.failure.detail)?;
        writeln!(f, "minimized assembly:\n--- CDL ---\n{}", self.cdl_xml)?;
        writeln!(f, "--- CCL ---\n{}", self.ccl_xml)?;
        write!(
            f,
            "reproduce: cargo run --release -p rtcheck -- diff --seed {} --cases 1",
            self.seed
        )
    }
}

/// Generates and checks the assembly for `seed`; on failure, shrinks it
/// and returns the minimal counterexample.
pub fn run_seed(seed: u64) -> Result<bool, Box<Counterexample>> {
    let (cdl, ccl) = gen::assembly(seed);
    match check_case(&cdl, &ccl) {
        Ok(accepted) => Ok(accepted),
        Err(_) => {
            let (cdl, ccl) = shrink(cdl, ccl);
            let failure = check_case(&cdl, &ccl).expect_err("shrink preserves failure");
            Err(Box::new(Counterexample {
                seed,
                failure,
                cdl_xml: write_cdl(&cdl),
                ccl_xml: write_ccl(&ccl),
            }))
        }
    }
}

/// Greedy shrink to a local minimum: repeatedly applies the first
/// single-step reduction that still fails [`check_case`], until none
/// does.
pub fn shrink(cdl: Cdl, ccl: Ccl) -> (Cdl, Ccl) {
    shrink_with(cdl, ccl, |c, l| check_case(c, l).is_err())
}

/// Greedy shrink preserving an arbitrary predicate (exposed for tests
/// and for minimizing under a specific failing leg).
pub fn shrink_with(
    mut cdl: Cdl,
    mut ccl: Ccl,
    still_failing: impl Fn(&Cdl, &Ccl) -> bool,
) -> (Cdl, Ccl) {
    loop {
        let mut reduced = false;
        for (c2, l2) in reductions(&cdl, &ccl) {
            if still_failing(&c2, &l2) {
                cdl = c2;
                ccl = l2;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (cdl, ccl);
        }
    }
}

/// All single-step reductions of the assembly, smallest-impact last so
/// big cuts (whole subtrees) are tried first.
fn reductions(cdl: &Cdl, ccl: &Ccl) -> Vec<(Cdl, Ccl)> {
    let mut out = Vec::new();

    // Drop an instance subtree (roots first, then nested, by position).
    let n_inst = ccl.instances().len();
    for i in 0..n_inst {
        let mut c = ccl.clone();
        let mut k = 0usize;
        remove_nth(&mut c.roots, i, &mut k);
        if !c.roots.is_empty() {
            out.push((cdl.clone(), c));
        }
    }
    // Drop one link.
    for i in 0..n_inst {
        let n_links = ccl.instances()[i].links.len();
        for j in 0..n_links {
            let mut c = ccl.clone();
            let mut k = 0usize;
            edit_nth(&mut c.roots, i, &mut k, &mut |d| {
                d.links.remove(j);
            });
            out.push((cdl.clone(), c));
        }
    }
    // Drop one instance's port attributes, or its declared link kinds.
    for i in 0..n_inst {
        if !ccl.instances()[i].port_attrs.is_empty() {
            let mut c = ccl.clone();
            let mut k = 0usize;
            edit_nth(&mut c.roots, i, &mut k, &mut |d| d.port_attrs.clear());
            out.push((cdl.clone(), c));
        }
        if ccl.instances()[i].links.iter().any(|l| l.kind.is_some()) {
            let mut c = ccl.clone();
            let mut k = 0usize;
            edit_nth(&mut c.roots, i, &mut k, &mut |d| {
                for l in &mut d.links {
                    l.kind = None;
                }
            });
            out.push((cdl.clone(), c));
        }
    }
    // Drop one instance's placement (node + replicas).
    for i in 0..n_inst {
        let inst = ccl.instances()[i];
        if inst.node.is_some() || !inst.replicas.is_empty() {
            let mut c = ccl.clone();
            let mut k = 0usize;
            edit_nth(&mut c.roots, i, &mut k, &mut |d| {
                d.node = None;
                d.replicas.clear();
            });
            out.push((cdl.clone(), c));
        }
    }
    // Drop a scope pool.
    for i in 0..ccl.rtsj.scoped_pools.len() {
        let mut c = ccl.clone();
        c.rtsj.scoped_pools.remove(i);
        out.push((cdl.clone(), c));
    }
    // Drop a whole class, or one port of a class.
    for i in 0..cdl.components.len() {
        if cdl.components.len() > 1 {
            let mut d = cdl.clone();
            d.components.remove(i);
            out.push((d, ccl.clone()));
        }
        for p in 0..cdl.components[i].ports.len() {
            let mut d = cdl.clone();
            d.components[i].ports.remove(p);
            out.push((d, ccl.clone()));
        }
    }
    out
}

/// Removes the `n`th instance (pre-order) from the tree.
fn remove_nth(decls: &mut Vec<compadres_core::InstanceDecl>, n: usize, k: &mut usize) -> bool {
    let mut i = 0;
    while i < decls.len() {
        if *k == n {
            decls.remove(i);
            return true;
        }
        *k += 1;
        if remove_nth(&mut decls[i].children, n, k) {
            return true;
        }
        i += 1;
    }
    false
}

/// Applies `f` to the `n`th instance (pre-order).
fn edit_nth(
    decls: &mut [compadres_core::InstanceDecl],
    n: usize,
    k: &mut usize,
    f: &mut dyn FnMut(&mut compadres_core::InstanceDecl),
) -> bool {
    for d in decls.iter_mut() {
        if *k == n {
            f(d);
            return true;
        }
        *k += 1;
        if edit_nth(&mut d.children, n, k, f) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use compadres_core::*;
    use std::collections::BTreeMap;

    fn tiny() -> (Cdl, Ccl) {
        let cdl = Cdl {
            components: vec![ComponentDef {
                name: "C".into(),
                ports: vec![
                    PortDef {
                        name: "o".into(),
                        direction: PortDirection::Out,
                        message_type: "T".into(),
                    },
                    PortDef {
                        name: "i".into(),
                        direction: PortDirection::In,
                        message_type: "T".into(),
                    },
                ],
            }],
        };
        let child = |name: &str, links: Vec<LinkDecl>| InstanceDecl {
            instance_name: name.into(),
            class_name: "C".into(),
            kind: ComponentKind::Scoped { level: 1 },
            node: None,
            replicas: vec![],
            port_attrs: BTreeMap::new(),
            links,
            children: vec![],
        };
        let ccl = Ccl {
            application_name: "App".into(),
            roots: vec![InstanceDecl {
                instance_name: "root".into(),
                class_name: "C".into(),
                kind: ComponentKind::Immortal,
                node: None,
                replicas: vec![],
                port_attrs: BTreeMap::new(),
                links: vec![],
                children: vec![
                    child(
                        "a",
                        vec![LinkDecl {
                            from_port: "o".into(),
                            kind: None,
                            to_component: "b".into(),
                            to_port: "i".into(),
                        }],
                    ),
                    child("b", vec![]),
                ],
            }],
            rtsj: RtsjAttributes::default(),
        };
        (cdl, ccl)
    }

    #[test]
    fn legal_assembly_agrees_everywhere() {
        let (cdl, ccl) = tiny();
        assert!(check_case(&cdl, &ccl).unwrap());
    }

    #[test]
    fn illegal_assembly_agrees_on_reject() {
        let (cdl, mut ccl) = tiny();
        // Self loop.
        ccl.roots[0].children[0].links[0].to_component = "a".into();
        assert!(!check_case(&cdl, &ccl).unwrap());
    }

    #[test]
    fn shrink_preserves_failure_and_reduces() {
        // Manufacture a disagreement by handing the shrinker a predicate
        // failure: a broken oracle is simulated by checking against a
        // case the legs genuinely disagree on is hard to fabricate, so
        // instead verify the shrinker machinery on `remove_nth`.
        let (_, ccl) = tiny();
        let mut roots = ccl.roots.clone();
        let mut k = 0;
        assert!(remove_nth(&mut roots, 1, &mut k)); // removes "a"
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].instance_name, "b");
    }

    #[test]
    fn fixed_seed_sample_has_no_disagreements() {
        for seed in 0..200 {
            if let Err(ce) = run_seed(seed) {
                panic!("{ce}");
            }
        }
    }
}
