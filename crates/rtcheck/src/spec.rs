//! Sequential specifications for the lock-free runtime structures:
//! bounded FIFO (ring / rejecting buffer), priority-banded FIFO
//! (`PriorityFifo`) and free-slot pool (`ScopePool`). Each is a small
//! state machine over plain values; [`crate::lin::check`] decides
//! whether a recorded concurrent history has a legal sequential order.

use std::collections::BTreeSet;

use rtplatform::fault::AdmissionPolicy;

use crate::lin::Spec;

/// Operations on any of the queue-shaped structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp {
    /// Enqueue a value (with a priority where the structure has one).
    Push(u8, u64),
    /// Dequeue.
    Pop,
}

/// Observed queue results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueRet {
    /// Whether the push was admitted.
    Pushed(bool),
    /// The popped (priority, value), or `None` on empty.
    Popped(Option<(u8, u64)>),
}

/// Bounded single-band FIFO that rejects pushes when full — the model
/// of [`rtplatform::ring::MpmcRing`] and of a
/// `BoundedBuffer` with [`rtsched::OverflowPolicy::Reject`].
/// Priorities are carried but ignored (use one constant band).
#[derive(Debug)]
pub struct BoundedFifoSpec {
    /// Logical capacity: a push into a full queue must report `false`.
    pub capacity: usize,
}

impl Spec for BoundedFifoSpec {
    type Op = QueueOp;
    type Ret = QueueRet;
    type State = Vec<(u8, u64)>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, s: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State> {
        match (op, ret) {
            (QueueOp::Push(p, v), QueueRet::Pushed(true)) if s.len() < self.capacity => {
                let mut n = s.clone();
                n.push((*p, *v));
                Some(n)
            }
            (QueueOp::Push(..), QueueRet::Pushed(false)) if s.len() == self.capacity => {
                Some(s.clone())
            }
            (QueueOp::Pop, QueueRet::Popped(Some(pv))) if s.first() == Some(pv) => {
                Some(s[1..].to_vec())
            }
            (QueueOp::Pop, QueueRet::Popped(None)) if s.is_empty() => Some(s.clone()),
            _ => None,
        }
    }
}

/// Unbounded priority-banded FIFO: pop returns the front of the
/// highest non-empty band — the model of `rtsched::PriorityFifo`
/// (whose per-band rings spill to an unbounded overflow list, so a
/// push never reports full while the queue is open).
#[derive(Debug)]
pub struct PriorityFifoSpec;

impl Spec for PriorityFifoSpec {
    type Op = QueueOp;
    type Ret = QueueRet;
    /// Bands sorted by descending priority, empty bands absent.
    type State = Vec<(u8, Vec<u64>)>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, s: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State> {
        match (op, ret) {
            (QueueOp::Push(p, v), QueueRet::Pushed(true)) => {
                let mut n = s.clone();
                match n.iter_mut().find(|(bp, _)| bp == p) {
                    Some((_, band)) => band.push(*v),
                    None => {
                        n.push((*p, vec![*v]));
                        n.sort_by_key(|band| std::cmp::Reverse(band.0));
                    }
                }
                Some(n)
            }
            (QueueOp::Pop, QueueRet::Popped(Some((p, v)))) => {
                let (top, band) = s.first()?;
                (top == p && band.first() == Some(v)).then(|| {
                    let mut n = s.clone();
                    n[0].1.remove(0);
                    if n[0].1.is_empty() {
                        n.remove(0);
                    }
                    n
                })
            }
            (QueueOp::Pop, QueueRet::Popped(None)) if s.is_empty() => Some(s.clone()),
            _ => None,
        }
    }
}

/// Bounded priority-banded FIFO narrowed per band by an
/// [`AdmissionPolicy`] — the model of `PriorityFifo::push_bounded`,
/// which backs per-port admission control in the core runtime
/// (DESIGN.md §5j). A push must report admitted exactly when total
/// occupancy is under the band's watermark (so a zero-permille band is
/// starved outright: every push in it must be refused, even on an
/// empty queue); pops follow the plain priority-FIFO discipline.
#[derive(Debug)]
pub struct BandedAdmissionSpec {
    /// Hard queue capacity — the high band's watermark.
    pub capacity: usize,
    /// The per-band admission policy under test.
    pub admission: AdmissionPolicy,
}

impl Spec for BandedAdmissionSpec {
    type Op = QueueOp;
    type Ret = QueueRet;
    /// Bands sorted by descending priority, as in [`PriorityFifoSpec`].
    type State = Vec<(u8, Vec<u64>)>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, s: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State> {
        match (op, ret) {
            (QueueOp::Push(p, _), QueueRet::Pushed(admitted)) => {
                let occupied: usize = s.iter().map(|(_, band)| band.len()).sum();
                let legal = self.admission.admits(*p, occupied, self.capacity);
                if legal != *admitted {
                    return None;
                }
                if !admitted {
                    return Some(s.clone());
                }
                PriorityFifoSpec.apply(s, op, ret)
            }
            (QueueOp::Pop, _) => PriorityFifoSpec.apply(s, op, ret),
            _ => None,
        }
    }
}

/// Operations on a slot pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolOp {
    /// Take any free slot.
    Acquire,
    /// Return a previously acquired slot.
    Release(u64),
}

/// Observed pool results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolRet {
    /// The slot obtained, or `None` when the pool was exhausted.
    Acquired(Option<u64>),
    /// Release has no result.
    Released,
}

/// Free-set pool: acquire may return *any* free slot (which slot is an
/// implementation detail — `ScopePool` happens to reuse LIFO), never a
/// leased one, and only reports exhaustion when nothing is free.
#[derive(Debug)]
pub struct PoolSpec {
    /// The full slot universe.
    pub slots: BTreeSet<u64>,
}

impl Spec for PoolSpec {
    type Op = PoolOp;
    type Ret = PoolRet;
    /// The set of currently free slots.
    type State = BTreeSet<u64>;

    fn initial(&self) -> Self::State {
        self.slots.clone()
    }

    fn apply(&self, free: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State> {
        match (op, ret) {
            (PoolOp::Acquire, PoolRet::Acquired(Some(s))) if free.contains(s) => {
                let mut n = free.clone();
                n.remove(s);
                Some(n)
            }
            (PoolOp::Acquire, PoolRet::Acquired(None)) if free.is_empty() => Some(free.clone()),
            (PoolOp::Release(s), PoolRet::Released)
                if self.slots.contains(s) && !free.contains(s) =>
            {
                let mut n = free.clone();
                n.insert(*s);
                Some(n)
            }
            _ => None,
        }
    }
}
