//! Wing–Gong linearizability checker.
//!
//! Searches for a linearization: a total order of the history's
//! operations that (a) respects real time — an operation that returned
//! before another was invoked comes first — and (b) is legal under the
//! sequential specification. The search is the classic Wing & Gong
//! recursion with the Lowe memoization: depth-first over the "minimal"
//! (currently linearizable-next) operations, caching visited
//! (taken-set, spec-state) pairs so equivalent prefixes are explored
//! once.

use std::collections::HashSet;
use std::hash::Hash;

use crate::history::CompleteOp;

/// A sequential specification: a deterministic-state model that says
/// which (operation, observed return) steps are legal in each state.
pub trait Spec {
    /// Operation descriptor.
    type Op: Clone;
    /// Observed return value.
    type Ret: Clone;
    /// Abstract state; `Eq + Hash` powers the memo table.
    type State: Clone + Eq + Hash;

    /// State before any operation.
    fn initial(&self) -> Self::State;

    /// If `op` returning `ret` is legal in `state`, the successor
    /// state; `None` if the step is illegal.
    fn apply(&self, state: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State>;
}

/// Maximum history length the bitmask-based search supports.
pub const MAX_OPS: usize = 64;

/// Checks whether `history` is linearizable under `spec`.
///
/// # Panics
///
/// If the history holds more than [`MAX_OPS`] operations — keep
/// recorded runs short; the search is exponential in the worst case
/// anyway.
pub fn check<S: Spec>(spec: &S, history: &[CompleteOp<S::Op, S::Ret>]) -> bool {
    assert!(
        history.len() <= MAX_OPS,
        "history of {} ops exceeds the {MAX_OPS}-op checker limit",
        history.len()
    );
    let all: u64 = if history.len() == 64 {
        u64::MAX
    } else {
        (1u64 << history.len()) - 1
    };
    let mut memo: HashSet<(u64, S::State)> = HashSet::new();
    dfs(spec, history, 0, spec.initial(), all, &mut memo)
}

fn dfs<S: Spec>(
    spec: &S,
    history: &[CompleteOp<S::Op, S::Ret>],
    taken: u64,
    state: S::State,
    all: u64,
    memo: &mut HashSet<(u64, S::State)>,
) -> bool {
    if taken == all {
        return true;
    }
    if !memo.insert((taken, state.clone())) {
        return false; // already proven a dead end
    }
    // An operation may linearize next only if no *other* remaining
    // operation returned before it was invoked.
    let min_return = history
        .iter()
        .enumerate()
        .filter(|(i, _)| taken & (1 << i) == 0)
        .map(|(_, e)| e.returned)
        .min()
        .unwrap();
    for (i, e) in history.iter().enumerate() {
        if taken & (1 << i) != 0 || e.invoked > min_return {
            continue;
        }
        if let Some(next) = spec.apply(&state, &e.op, &e.ret) {
            if dfs(spec, history, taken | (1 << i), next, all, memo) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A register holding one u64, write/read spec.
    struct Register;
    #[derive(Clone)]
    enum RegOp {
        Write(u64),
        Read,
    }

    impl Spec for Register {
        type Op = RegOp;
        type Ret = Option<u64>;
        type State = Option<u64>;
        fn initial(&self) -> Self::State {
            None
        }
        fn apply(&self, s: &Self::State, op: &Self::Op, ret: &Self::Ret) -> Option<Self::State> {
            match op {
                RegOp::Write(v) => ret.is_none().then_some(Some(*v)),
                RegOp::Read => (ret == s).then_some(*s),
            }
        }
    }

    fn op(
        op: RegOp,
        ret: Option<u64>,
        invoked: u64,
        returned: u64,
    ) -> CompleteOp<RegOp, Option<u64>> {
        CompleteOp {
            op,
            ret,
            invoked,
            returned,
        }
    }

    #[test]
    fn sequential_register_history_linearizable() {
        let h = vec![
            op(RegOp::Write(1), None, 0, 1),
            op(RegOp::Read, Some(1), 2, 3),
        ];
        assert!(check(&Register, &h));
    }

    #[test]
    fn overlapping_reads_may_reorder() {
        // Write(1) overlaps both reads: one read sees None, one sees 1.
        let h = vec![
            op(RegOp::Write(1), None, 0, 5),
            op(RegOp::Read, None, 1, 2),
            op(RegOp::Read, Some(1), 3, 4),
        ];
        assert!(check(&Register, &h));
    }

    #[test]
    fn stale_read_after_write_returned_is_flagged() {
        // The write returned at 1; a read invoked at 2 must see it.
        let h = vec![op(RegOp::Write(1), None, 0, 1), op(RegOp::Read, None, 2, 3)];
        assert!(!check(&Register, &h));
    }

    #[test]
    fn value_from_nowhere_is_flagged() {
        let h = vec![op(RegOp::Read, Some(9), 0, 1)];
        assert!(!check(&Register, &h));
    }
}
