//! Recorded concurrent scenarios for the real runtime structures.
//!
//! Each function runs a seeded multi-threaded workload against the
//! actual implementation — `MpmcRing`, `BoundedBuffer` (reject
//! policy), `PriorityFifo`, `ScopePool`, `SegPool` — and returns the merged
//! timestamped history for [`crate::lin::check`]. Workloads are kept
//! short (the checker is exponential in overlap) and every thread
//! releases what it holds *within* its recorded sequence, so the
//! history is complete and self-contained.

use std::collections::BTreeSet;
use std::sync::Arc;

use rtmem::{MemoryModel, ScopePool};
use rtplatform::bufchain::SegPool;
use rtplatform::ring::MpmcRing;
use rtplatform::rng::SplitMix64;
use rtsched::{BoundedBuffer, OverflowPolicy, Priority, PriorityFifo};

use crate::history::{merge, Clock, CompleteOp, ThreadLog};
use crate::spec::{PoolOp, PoolRet, PoolSpec, QueueOp, QueueRet};

/// A queue-shaped history.
pub type QueueHistory = Vec<CompleteOp<QueueOp, QueueRet>>;

/// Runs `threads` workers, each performing `ops` seeded push/pop calls
/// against a [`MpmcRing`] of `capacity`, and returns the history.
pub fn ring_history(seed: u64, threads: usize, ops: usize, capacity: usize) -> QueueHistory {
    let ring = Arc::new(MpmcRing::<u64>::new(capacity));
    queue_scenario(
        seed,
        threads,
        ops,
        &[0],
        move |push: Option<(u8, u64)>| match push {
            Some((_, v)) => QueueRet::Pushed(ring.push(v).is_ok()),
            None => QueueRet::Popped(ring.pop().map(|v| (0, v))),
        },
    )
}

/// Like [`ring_history`] for a [`BoundedBuffer`] with the reject
/// policy (the only policy with pure bounded-FIFO sequential
/// semantics).
pub fn buffer_history(seed: u64, threads: usize, ops: usize, capacity: usize) -> QueueHistory {
    let buf = Arc::new(BoundedBuffer::<u64>::new(capacity, OverflowPolicy::Reject));
    queue_scenario(seed, threads, ops, &[0], move |push| match push {
        Some((_, v)) => QueueRet::Pushed(matches!(buf.push(v), rtsched::PushOutcome::Enqueued)),
        None => QueueRet::Popped(buf.try_pop().map(|v| (0, v))),
    })
}

/// Like [`ring_history`] for a [`PriorityFifo`], with random
/// priorities across three bands.
pub fn fifo_history(seed: u64, threads: usize, ops: usize) -> QueueHistory {
    let q = Arc::new(PriorityFifo::<u64>::new());
    queue_scenario(seed, threads, ops, &[1, 5, 9], move |push| match push {
        Some((p, v)) => QueueRet::Pushed(q.push(Priority::new(p), v)),
        None => QueueRet::Popped(q.try_pop().map(|(p, v)| (p.value(), v))),
    })
}

/// Shared queue workload: `op(Some((prio, value)))` pushes,
/// `op(None)` pops. `bands` is the priority vocabulary — structures
/// without priorities use a single band matching their pop mapping.
fn queue_scenario(
    seed: u64,
    threads: usize,
    ops: usize,
    bands: &'static [u8],
    op: impl Fn(Option<(u8, u64)>) -> QueueRet + Send + Sync + 'static,
) -> QueueHistory {
    let clock = Clock::new();
    let op = Arc::new(op);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mut log = ThreadLog::new(&clock);
            let op = Arc::clone(&op);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37));
                for i in 0..ops {
                    if rng.chance(0.55) {
                        let prio = bands[rng.below(bands.len())];
                        let value = (t * 1_000 + i) as u64;
                        log.record(QueueOp::Push(prio, value), || op(Some((prio, value))));
                    } else {
                        log.record(QueueOp::Pop, || op(None));
                    }
                }
                log.into_ops()
            })
        })
        .collect();
    merge(handles.into_iter().map(|h| h.join().unwrap()).collect())
}

/// Runs a seeded acquire/release workload against a real
/// [`ScopePool`] and returns the matching spec (slot universe) plus
/// the history. Slots are named by their region's position in an
/// initial full drain of the pool.
pub fn pool_history(
    seed: u64,
    threads: usize,
    ops: usize,
    pool_size: usize,
) -> (PoolSpec, Vec<CompleteOp<PoolOp, PoolRet>>) {
    let model = MemoryModel::new();
    let pool = ScopePool::new(&model, 1, 4096, pool_size).expect("pool");

    // Learn the slot universe: drain the pool once, single-threaded.
    let mut region_ids = std::collections::HashMap::new();
    {
        let mut leases = Vec::new();
        while let Ok(lease) = pool.acquire() {
            region_ids.insert(lease.region(), region_ids.len() as u64);
            leases.push(lease);
        }
    }
    assert_eq!(region_ids.len(), pool_size, "drain saw every slot");
    let region_ids = Arc::new(region_ids);

    let clock = Clock::new();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let pool = pool.clone();
            let region_ids = Arc::clone(&region_ids);
            let mut log = ThreadLog::new(&clock);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0xA5A5));
                let mut held = Vec::new();
                for _ in 0..ops {
                    if held.is_empty() || rng.chance(0.6) {
                        let got = log.record(PoolOp::Acquire, || {
                            PoolRet::Acquired(pool.acquire().ok().map(|l| {
                                let id = region_ids[&l.region()];
                                held.push((id, l));
                                id
                            }))
                        });
                        let _ = got;
                    } else {
                        let (id, lease) = held.swap_remove(rng.below(held.len()));
                        log.record(PoolOp::Release(id), || {
                            drop(lease);
                            PoolRet::Released
                        });
                    }
                }
                // Release everything inside the recorded sequence so
                // no unrecorded release races another thread's ops.
                for (id, lease) in held {
                    log.record(PoolOp::Release(id), || {
                        drop(lease);
                        PoolRet::Released
                    });
                }
                log.into_ops()
            })
        })
        .collect();
    let history = merge(handles.into_iter().map(|h| h.join().unwrap()).collect());
    let spec = PoolSpec {
        slots: (0..pool_size as u64).collect::<BTreeSet<u64>>(),
    };
    (spec, history)
}

/// Like [`pool_history`] for the zero-copy path's
/// [`SegPool`]: seeded `try_lease`/drop(release) traffic against the
/// real segment ring, slots named by each segment's stable buffer
/// address learned from an initial full drain. Only `try_lease` is
/// exercised — the heap fallback of `lease` is deliberately outside
/// the bounded-resource spec.
pub fn segpool_history(
    seed: u64,
    threads: usize,
    ops: usize,
    pool_size: usize,
) -> (PoolSpec, Vec<CompleteOp<PoolOp, PoolRet>>) {
    let pool = SegPool::new(pool_size, 64);

    // Learn the slot universe: drain the pool once, single-threaded.
    let mut slot_ids = std::collections::HashMap::new();
    {
        let mut leases = Vec::new();
        while let Some(seg) = pool.try_lease() {
            slot_ids.insert(seg.id(), slot_ids.len() as u64);
            leases.push(seg);
        }
    }
    assert_eq!(slot_ids.len(), pool_size, "drain saw every segment");
    let slot_ids = Arc::new(slot_ids);

    let clock = Clock::new();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let pool = pool.clone();
            let slot_ids = Arc::clone(&slot_ids);
            let mut log = ThreadLog::new(&clock);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x5E61));
                let mut held = Vec::new();
                for _ in 0..ops {
                    if held.is_empty() || rng.chance(0.6) {
                        log.record(PoolOp::Acquire, || {
                            PoolRet::Acquired(pool.try_lease().map(|seg| {
                                let id = slot_ids[&seg.id()];
                                held.push((id, seg));
                                id
                            }))
                        });
                    } else {
                        let (id, seg) = held.swap_remove(rng.below(held.len()));
                        log.record(PoolOp::Release(id), || {
                            drop(seg);
                            PoolRet::Released
                        });
                    }
                }
                // Release everything inside the recorded sequence so
                // no unrecorded release races another thread's ops.
                for (id, seg) in held {
                    log.record(PoolOp::Release(id), || {
                        drop(seg);
                        PoolRet::Released
                    });
                }
                log.into_ops()
            })
        })
        .collect();
    let history = merge(handles.into_iter().map(|h| h.join().unwrap()).collect());
    let spec = PoolSpec {
        slots: (0..pool_size as u64).collect::<BTreeSet<u64>>(),
    };
    (spec, history)
}
