//! Seeded random generator of CDL/CCL assemblies.
//!
//! Produces mostly-plausible compositions — nested instance trees with
//! scope levels, port attributes, pools, and links biased toward legal
//! shapes — then injects targeted faults (wrong scope levels, type
//! mismatches, self-loops, cousin links, dangling names, duplicate
//! instance names, wrong declared link kinds) so that roughly half of
//! the generated assemblies should be rejected. The differential driver
//! compares *who* rejects them: the production validator or the
//! independent oracle.
//!
//! The generator stays inside the subset the CCL writer/parser can
//! round-trip (non-empty alphanumeric names, unique port names per
//! class, unique pool levels, `buffer_size >= 1`, `min <= max`), so an
//! accepted assembly can also be pushed through write → parse →
//! re-validate as a third leg.

use std::collections::BTreeMap;

use compadres_core::{
    Ccl, Cdl, ComponentDef, ComponentKind, InstanceDecl, LinkDecl, LinkKind, PortAttrs, PortDef,
    PortDirection, RtsjAttributes, ScopedPoolCfg, ThreadpoolStrategy,
};
use rtplatform::rng::SplitMix64;

/// Message-type vocabulary; a small set keeps accidental matches common.
const TYPES: [&str; 3] = ["T", "U", "V"];

/// Generates one random assembly from `seed`.
pub fn assembly(seed: u64) -> (Cdl, Ccl) {
    let mut rng = SplitMix64::new(seed);
    let cdl = gen_cdl(&mut rng);
    let ccl = gen_ccl(&mut rng, &cdl);
    (cdl, ccl)
}

fn gen_cdl(rng: &mut SplitMix64) -> Cdl {
    let n_classes = rng.range_usize(1, 5);
    let components = (0..n_classes)
        .map(|c| {
            let n_ports = rng.range_usize(0, 5);
            let ports = (0..n_ports)
                .map(|p| PortDef {
                    name: format!("p{p}"),
                    direction: if rng.chance(0.5) {
                        PortDirection::In
                    } else {
                        PortDirection::Out
                    },
                    // Heavy bias toward one type so links usually match.
                    message_type: if rng.chance(0.7) {
                        TYPES[0].to_string()
                    } else {
                        TYPES[rng.below(TYPES.len())].to_string()
                    },
                })
                .collect();
            ComponentDef {
                name: format!("C{c}"),
                ports,
            }
        })
        .collect();
    Cdl { components }
}

/// Flat view of the generated tree used when wiring links: the path of
/// instance names from the root down to (and including) each instance.
struct Flat {
    name: String,
    class: usize,
    path: Vec<String>,
}

fn gen_ccl(rng: &mut SplitMix64, cdl: &Cdl) -> Ccl {
    let mut flats: Vec<Flat> = Vec::new();
    let mut counter = 0usize;
    let n_roots = rng.range_usize(1, 4);
    let mut roots: Vec<InstanceDecl> = (0..n_roots)
        .map(|_| gen_instance(rng, cdl, 0, false, 0, &mut counter, &mut flats, &[]))
        .collect();

    // Fault: duplicate instance name somewhere in the tree.
    if flats.len() >= 2 && rng.chance(0.06) {
        let from = flats[rng.below(flats.len())].name.clone();
        let to = flats[rng.below(flats.len())].name.clone();
        rename_instance(&mut roots, &to, &from);
    }

    let links = gen_links(rng, cdl, &flats);
    for (owner, link) in links {
        attach_link(&mut roots, &owner, link);
    }

    let mut scoped_pools = Vec::new();
    for level in 1..=3u32 {
        if rng.chance(0.5) {
            scoped_pools.push(ScopedPoolCfg {
                level,
                scope_size: 1 << rng.range_usize(10, 16),
                pool_size: rng.range_usize(1, 5),
            });
        }
    }

    // Placement post-pass, last so every draw above stays identical to
    // the pre-placement generator under a fixed seed.
    assign_nodes(rng, &mut roots);

    Ccl {
        application_name: "Gen".to_string(),
        roots,
        rtsj: RtsjAttributes {
            immortal_size: 1 << rng.range_usize(16, 22),
            scoped_pools,
        },
    }
}

/// Sprinkles `node`/`replicas` placement over the tree: mostly-legal
/// shapes (placed roots, immortal children moving nodes, replica lists
/// on placed instances) plus the targeted placement faults — a scoped
/// instance placed away from its parent, replicas without a node, and
/// an instance's own node listed as its replica.
fn assign_nodes(rng: &mut SplitMix64, roots: &mut [InstanceDecl]) {
    if !rng.chance(0.5) {
        return;
    }
    const NODES: [&str; 3] = ["n0", "n1", "n2"];
    fn walk(rng: &mut SplitMix64, decl: &mut InstanceDecl, parent_node: Option<String>) {
        let scoped = decl.kind.is_scoped();
        // Immortal instances move freely; placing a scoped one is the
        // injected fault unless it restates the parent's node.
        let place = rng.chance(if scoped { 0.06 } else { 0.6 });
        if place {
            let node = match &parent_node {
                Some(p) if scoped && rng.chance(0.5) => p.clone(),
                _ => NODES[rng.below(NODES.len())].to_string(),
            };
            decl.node = Some(node.clone());
            if rng.chance(0.25) {
                let mut reps: Vec<String> = NODES
                    .iter()
                    .filter(|n| **n != node)
                    .map(|s| s.to_string())
                    .collect();
                if rng.chance(0.1) {
                    reps.insert(0, node.clone()); // fault: own node
                }
                let keep = rng.range_usize(1, reps.len() + 1);
                reps.truncate(keep);
                decl.replicas = reps;
            }
        } else if rng.chance(0.02) {
            // Fault: replicas with no explicit node.
            decl.replicas = vec![NODES[rng.below(NODES.len())].to_string()];
        }
        let eff = decl.node.clone().or(parent_node);
        for c in &mut decl.children {
            walk(rng, c, eff.clone());
        }
    }
    for r in roots.iter_mut() {
        walk(rng, r, None);
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_instance(
    rng: &mut SplitMix64,
    cdl: &Cdl,
    depth: usize,
    parent_scoped: bool,
    scoped_depth: u32,
    counter: &mut usize,
    flats: &mut Vec<Flat>,
    parent_path: &[String],
) -> InstanceDecl {
    let name = format!("i{}", *counter);
    *counter += 1;
    let class = rng.below(cdl.components.len());

    // Scope level: usually the one nesting implies, sometimes off by a
    // bit (fault), sometimes Immortal — which is itself a fault under a
    // scoped parent.
    let implied = scoped_depth + 1;
    // Same draw order as two arms would use: the 0.08 draw happens only
    // when the first condition failed (an Immortal under a scoped parent
    // is the injected fault).
    let legal_immortal = rng.chance(0.35) && !parent_scoped;
    let kind = if legal_immortal || rng.chance(0.08) {
        ComponentKind::Immortal
    } else if rng.chance(0.1) {
        ComponentKind::Scoped {
            level: rng.range_usize(1, 5) as u32, // often wrong
        }
    } else {
        ComponentKind::Scoped { level: implied }
    };

    let mut path = parent_path.to_vec();
    path.push(name.clone());
    flats.push(Flat {
        name: name.clone(),
        class,
        path: path.clone(),
    });

    // Port attributes for a random subset of the class's in-ports —
    // and occasionally (fault) for an out-port or unknown port.
    let mut port_attrs = BTreeMap::new();
    for port in &cdl.components[class].ports {
        if port.direction == PortDirection::In && rng.chance(0.4) {
            port_attrs.insert(port.name.clone(), gen_attrs(rng));
        }
    }
    if rng.chance(0.04) {
        let victim = if rng.chance(0.5) {
            "nosuchport".to_string()
        } else {
            format!("p{}", rng.below(5))
        };
        port_attrs.insert(victim, gen_attrs(rng));
    }

    let n_children = if depth >= 3 || *counter > 9 {
        0
    } else {
        rng.range_usize(0, 4 - depth)
    };
    // A child's scoped depth follows the validator's rule: one more
    // scoped ancestor if this instance is scoped, else reset to zero.
    let now_scoped = kind.is_scoped();
    let child_depth = if now_scoped { scoped_depth + 1 } else { 0 };
    let children = (0..n_children)
        .map(|_| {
            gen_instance(
                rng,
                cdl,
                depth + 1,
                now_scoped,
                child_depth,
                counter,
                flats,
                &path,
            )
        })
        .collect();

    InstanceDecl {
        instance_name: name,
        class_name: if rng.chance(0.02) {
            "NoSuchClass".to_string()
        } else {
            cdl.components[class].name.clone()
        },
        kind,
        node: None,
        replicas: Vec::new(),
        port_attrs,
        links: Vec::new(),
        children,
    }
}

fn gen_attrs(rng: &mut SplitMix64) -> PortAttrs {
    let min = rng.range_usize(0, 4);
    PortAttrs {
        buffer_size: rng.range_usize(1, 64),
        strategy: match rng.below(3) {
            0 => ThreadpoolStrategy::Shared,
            1 => ThreadpoolStrategy::Dedicated,
            _ => ThreadpoolStrategy::Synchronous,
        },
        min_threads: min,
        max_threads: rng.range_usize(min.max(1), 8),
    }
}

/// Generates link declarations as `(owning instance name, link)` pairs.
fn gen_links(rng: &mut SplitMix64, cdl: &Cdl, flats: &[Flat]) -> Vec<(String, LinkDecl)> {
    let mut out = Vec::new();
    if flats.is_empty() {
        return out;
    }
    let n_links = rng.range_usize(0, 2 * flats.len().min(4) + 1);
    for _ in 0..n_links {
        let a = &flats[rng.below(flats.len())];
        // Bias the peer toward relatives (parent, child, sibling) so
        // legal topologies are common; sometimes any instance at all.
        let b = if rng.chance(0.75) {
            pick_relative(rng, flats, a).unwrap_or(&flats[rng.below(flats.len())])
        } else {
            &flats[rng.below(flats.len())]
        };

        let a_ports = &cdl.components[a.class].ports;
        let b_ports = &cdl.components[b.class].ports;
        // Prefer a proper Out→In pair with matching types; fall back to
        // arbitrary ports (organic faults: direction or type mismatch).
        let pair = matching_pair(rng, a_ports, b_ports);
        let (from_port, to_port) = match pair {
            Some(p) if rng.chance(0.85) => p,
            _ => {
                if a_ports.is_empty() || b_ports.is_empty() {
                    continue;
                }
                (
                    a_ports[rng.below(a_ports.len())].name.clone(),
                    b_ports[rng.below(b_ports.len())].name.clone(),
                )
            }
        };

        let to_component = if rng.chance(0.03) {
            "ghost".to_string()
        } else {
            b.name.clone()
        };
        let kind = if rng.chance(0.8) {
            None
        } else {
            Some(match rng.below(3) {
                0 => LinkKind::Internal,
                1 => LinkKind::External,
                _ => LinkKind::Shadow,
            })
        };
        out.push((
            a.name.clone(),
            LinkDecl {
                from_port: if rng.chance(0.02) {
                    "nosuchport".to_string()
                } else {
                    from_port
                },
                kind,
                to_component,
                to_port,
            },
        ));
    }
    out
}

/// Picks an instance related to `a` (ancestor, descendant or sibling).
fn pick_relative<'a>(rng: &mut SplitMix64, flats: &'a [Flat], a: &Flat) -> Option<&'a Flat> {
    let related: Vec<&Flat> = flats
        .iter()
        .filter(|b| {
            if b.name == a.name {
                return false;
            }
            let prefix = a
                .path
                .iter()
                .zip(b.path.iter())
                .take_while(|(x, y)| x == y)
                .count();
            // ancestor/descendant, or siblings (paths differ in last hop)
            prefix == a.path.len().min(b.path.len())
                || (a.path.len() == b.path.len() && prefix + 1 == a.path.len())
        })
        .collect();
    if related.is_empty() {
        None
    } else {
        Some(related[rng.below(related.len())])
    }
}

/// An (out-port of `a`, in-port of `b`) pair with equal message types,
/// oriented either way.
fn matching_pair(
    rng: &mut SplitMix64,
    a_ports: &[PortDef],
    b_ports: &[PortDef],
) -> Option<(String, String)> {
    let mut pairs = Vec::new();
    for pa in a_ports {
        for pb in b_ports {
            if pa.message_type == pb.message_type && pa.direction != pb.direction {
                pairs.push((pa.name.clone(), pb.name.clone()));
            }
        }
    }
    if pairs.is_empty() {
        None
    } else {
        Some(pairs.swap_remove(rng.below(pairs.len())))
    }
}

fn rename_instance(roots: &mut [InstanceDecl], target: &str, new_name: &str) {
    for r in roots.iter_mut() {
        if r.instance_name == target {
            r.instance_name = new_name.to_string();
            return;
        }
        rename_instance(&mut r.children, target, new_name);
    }
}

fn attach_link(roots: &mut [InstanceDecl], owner: &str, link: LinkDecl) {
    for r in roots.iter_mut() {
        if r.instance_name == owner {
            r.links.push(link);
            return;
        }
        attach_link(&mut r.children, owner, link.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(assembly(7), assembly(7));
        assert_ne!(assembly(7), assembly(8));
    }

    #[test]
    fn accept_rate_is_mixed() {
        let mut accepted = 0;
        let total = 500;
        for seed in 0..total {
            let (cdl, ccl) = assembly(seed);
            if compadres_core::validate(&cdl, &ccl).is_ok() {
                accepted += 1;
            }
        }
        // The generator must exercise both verdicts heavily; exact rate
        // is tuning, but neither side may starve.
        assert!(accepted > total / 10, "accepted only {accepted}/{total}");
        assert!(
            accepted < total * 9 / 10,
            "accepted {accepted}/{total}: faults not firing"
        );
    }
}
