//! Deterministic interleaving driver over the instrumented yield
//! points (`rtplatform::chk`).
//!
//! A *schedule* names which yield-point occurrences (counted globally
//! across participant threads) must stall, forcing the arriving thread
//! to linger inside a race window — between a `Gate` waiter's
//! registration and its re-check, or between a Treiber free-list load
//! and its CAS — while the other thread runs past it. [`explore`]
//! enumerates every schedule with at most `preemptions` stalls among
//! the first `horizon` occurrences (bounded-preemption search, after
//! CHESS), so the scenario's invariants are exercised under each
//! forced interleaving rather than only the ones the OS happens to
//! produce.
//!
//! Explorations are serialized process-wide and only threads that
//! opted in via [`rtplatform::chk::participate`] are stalled, so
//! unrelated concurrent tests in the same binary are unaffected.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How long a stalled thread lingers at a yield point: enough yields
/// for any runnable peer to make it through the protected window.
const STALL_YIELDS: usize = 256;

/// One enumerated schedule: the yield-point occurrence indices forced
/// to stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Global occurrence indices (0-based) that stall.
    pub stalls: Vec<usize>,
}

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Runs `body` with `hook` installed as the global yield-point
/// callback, serialized against every other exploration in the
/// process (the hook slot is global).
pub fn with_hook<T>(hook: Arc<dyn Fn(&'static str) + Send + Sync>, body: impl FnOnce() -> T) -> T {
    let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    rtplatform::chk::install(hook);
    let out = body();
    rtplatform::chk::uninstall();
    out
}

/// Runs `body` with the yield-point hook driving `schedule`.
pub fn run_under<T>(schedule: &Schedule, body: impl FnOnce() -> T) -> T {
    let counter = Arc::new(AtomicUsize::new(0));
    let stalls: HashSet<usize> = schedule.stalls.iter().copied().collect();
    with_hook(
        Arc::new(move |_site| {
            let n = counter.fetch_add(1, Ordering::SeqCst);
            if stalls.contains(&n) {
                for _ in 0..STALL_YIELDS {
                    std::thread::yield_now();
                }
            }
        }),
        body,
    )
}

/// Spawns a thread that participates in yield-point stalling.
pub fn spawn_participant<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<T> {
    std::thread::spawn(move || {
        rtplatform::chk::participate(true);
        f()
    })
}

/// Enumerates all stall subsets of size ≤ `preemptions` over the first
/// `horizon` yield-point occurrences, running `scenario` under each.
/// Returns the number of schedules executed.
pub fn explore(horizon: usize, preemptions: usize, mut scenario: impl FnMut(&Schedule)) -> usize {
    assert!(horizon <= 16, "horizon {horizon} too large to enumerate");
    let mut ran = 0;
    for mask in 0u32..(1 << horizon) {
        if (mask.count_ones() as usize) > preemptions {
            continue;
        }
        let schedule = Schedule {
            stalls: (0..horizon).filter(|i| mask & (1 << i) != 0).collect(),
        };
        scenario(&schedule);
        ran += 1;
    }
    ran
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_bounded_subsets() {
        let mut seen = Vec::new();
        let n = explore(4, 2, |s| seen.push(s.clone()));
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6
        assert_eq!(n, 11);
        assert_eq!(seen.len(), 11);
        assert!(seen.iter().all(|s| s.stalls.len() <= 2));
    }

    #[test]
    fn hook_stalls_only_participants() {
        let schedule = Schedule { stalls: vec![0] };
        run_under(&schedule, || {
            // This thread never opted in: yield points are free.
            rtplatform::chk::yield_point("test.site");
        });
    }
}
