//! Independent reference oracle for composition legality.
//!
//! A deliberately small, name-based reimplementation of the paper's
//! static rules — the Table 1 scope-access matrix, the single-parent
//! rule (an instance tree plus scope level = nesting depth), exact
//! message-type matching, and loop freedom — written against
//! `Vec<String>` ancestry paths instead of the production validator's
//! flattened id arrays. It shares no code with `core::validate`; any
//! accept/reject or connection-list disagreement between the two is a
//! bug in one of them.

use std::collections::{HashMap, HashSet};

use compadres_core::{Ccl, Cdl, ComponentKind, InstanceDecl, LinkKind, PortDirection};

/// A connection as the oracle derives it, endpoint names only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleConn {
    /// Sending endpoint: (instance name, out-port name).
    pub from: (String, String),
    /// Receiving endpoint: (instance name, in-port name).
    pub to: (String, String),
    /// Relationship implied by the hierarchy.
    pub kind: LinkKind,
    /// The matched message type.
    pub message_type: String,
    /// Deepest common ancestor instance name (`None` = immortal).
    pub home: Option<String>,
}

/// The oracle's judgment of an assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Legal; carries the normalized connections in declaration order.
    Accept(Vec<OracleConn>),
    /// Illegal, with the rule that failed.
    Reject(String),
}

/// Judges `ccl` against `cdl` using only the paper's rules.
pub fn check(cdl: &Cdl, ccl: &Ccl) -> Verdict {
    // Pass 1: the instance tree. Collect each instance's ancestry path
    // (root..=self) while checking class references, name uniqueness,
    // memory nesting and scope levels.
    let mut paths: HashMap<String, Vec<String>> = HashMap::new();
    let mut order: Vec<&InstanceDecl> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn walk<'a>(
        decl: &'a InstanceDecl,
        prefix: &[String],
        parent: Option<&InstanceDecl>,
        scoped_ancestors: u32,
        parent_node: Option<&str>,
        cdl: &Cdl,
        paths: &mut HashMap<String, Vec<String>>,
        order: &mut Vec<&'a InstanceDecl>,
    ) -> Result<(), String> {
        let name = &decl.instance_name;
        let class = cdl
            .component(&decl.class_name)
            .ok_or_else(|| format!("{name}: unknown class {}", decl.class_name))?;
        let mut path = prefix.to_vec();
        path.push(name.clone());
        if paths.insert(name.clone(), path.clone()).is_some() {
            return Err(format!("duplicate name {name}"));
        }
        let parent_scoped = parent.is_some_and(|p| p.kind.is_scoped());
        match decl.kind {
            ComponentKind::Immortal if parent_scoped => {
                return Err(format!("{name}: immortal under scoped parent"));
            }
            ComponentKind::Scoped { level } if level != scoped_ancestors + 1 => {
                return Err(format!(
                    "{name}: level {level}, nesting implies {}",
                    scoped_ancestors + 1
                ));
            }
            _ => {}
        }
        for port in decl.port_attrs.keys() {
            match class.port(port) {
                Some(p) if p.direction == PortDirection::In => {}
                _ => return Err(format!("{name}: attrs on bad port {port}")),
            }
        }
        // Placement: names must be well-formed; a scoped instance may
        // only restate its parent's node; replicas need an explicit
        // node, no duplicates, and never the instance's own node.
        let malformed = |n: &str| {
            n.is_empty() || n.contains(|c: char| c.is_whitespace() || ",\"<>&/".contains(c))
        };
        if decl
            .node
            .iter()
            .chain(decl.replicas.iter())
            .any(|n| malformed(n))
        {
            return Err(format!("{name}: malformed node name"));
        }
        if let Some(node) = &decl.node {
            if decl.kind.is_scoped() && parent_node != Some(node.as_str()) {
                return Err(format!("{name}: scoped instance moved to node {node}"));
            }
        }
        if !decl.replicas.is_empty() {
            if decl.node.is_none() {
                return Err(format!("{name}: replicas without a node"));
            }
            let mut seen_rep = HashSet::new();
            for r in &decl.replicas {
                if decl.node.as_deref() == Some(r.as_str()) {
                    return Err(format!("{name}: replica on own node {r}"));
                }
                if !seen_rep.insert(r.as_str()) {
                    return Err(format!("{name}: duplicate replica {r}"));
                }
            }
        }
        let node = decl.node.as_deref().or(parent_node);
        order.push(decl);
        let down = if decl.kind.is_scoped() {
            scoped_ancestors + 1
        } else {
            0
        };
        for child in &decl.children {
            walk(child, &path, Some(decl), down, node, cdl, paths, order)?;
        }
        Ok(())
    }
    for root in &ccl.roots {
        if let Err(e) = walk(root, &[], None, 0, None, cdl, &mut paths, &mut order) {
            return Verdict::Reject(e);
        }
    }

    // Pass 2: links, visited parents-before-children in declaration
    // order, each normalized to out→in and judged by Table 1.
    let class_of: HashMap<&str, &str> = order
        .iter()
        .map(|d| (d.instance_name.as_str(), d.class_name.as_str()))
        .collect();
    let mut seen: HashSet<(String, String, String, String)> = HashSet::new();
    let mut conns = Vec::new();
    for decl in &order {
        for link in &decl.links {
            let me = &decl.instance_name;
            if !paths.contains_key(&link.to_component) {
                return Verdict::Reject(format!("{me}: link to unknown {}", link.to_component));
            }
            let my_class = cdl.component(class_of[me.as_str()]).unwrap();
            let peer_class = cdl.component(class_of[link.to_component.as_str()]).unwrap();
            let (Some(my_port), Some(peer_port)) = (
                my_class.port(&link.from_port),
                peer_class.port(&link.to_port),
            ) else {
                return Verdict::Reject(format!("{me}: link names unknown port"));
            };
            let (from, to, msg) = match (my_port.direction, peer_port.direction) {
                (PortDirection::Out, PortDirection::In) => (
                    (me.clone(), link.from_port.clone()),
                    (link.to_component.clone(), link.to_port.clone()),
                    &my_port.message_type,
                ),
                (PortDirection::In, PortDirection::Out) => (
                    (link.to_component.clone(), link.to_port.clone()),
                    (me.clone(), link.from_port.clone()),
                    &peer_port.message_type,
                ),
                _ => return Verdict::Reject(format!("{me}: link joins same directions")),
            };
            if my_port.message_type != peer_port.message_type {
                return Verdict::Reject(format!("{me}: message types differ"));
            }
            if from.0 == to.0 {
                return Verdict::Reject(format!("{me}: self loop"));
            }
            if !seen.insert((from.0.clone(), from.1.clone(), to.0.clone(), to.1.clone())) {
                continue; // same link declared from both ends
            }
            let (a, b) = (&paths[&from.0], &paths[&to.0]);
            let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
            let kind = if common == a.len().min(b.len()) {
                // Table 1, ancestor column: direct parent/child may talk
                // (Internal); deeper ancestors need a shadow port.
                if a.len().abs_diff(b.len()) == 1 {
                    LinkKind::Internal
                } else {
                    LinkKind::Shadow
                }
            } else if a.len() == b.len() && common + 1 == a.len() {
                // Table 1, sibling column: external link via the parent.
                LinkKind::External
            } else {
                return Verdict::Reject(format!("{me}: cousins cannot be linked"));
            };
            match link.kind {
                Some(d) if d != kind && !(d == LinkKind::External && kind == LinkKind::Shadow) => {
                    return Verdict::Reject(format!("{me}: declared {d:?}, implied {kind:?}"));
                }
                _ => {}
            }
            conns.push(OracleConn {
                home: (common > 0).then(|| a[common - 1].clone()),
                from,
                to,
                kind,
                message_type: msg.clone(),
            });
        }
    }
    Verdict::Accept(conns)
}
