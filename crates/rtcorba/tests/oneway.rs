//! Oneway (no-reply) invocations through both ORBs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtcorba::corb::CompadresClient;
use rtcorba::service::{CountingServant, ObjectRegistry};
use rtcorba::zen::ZenClient;

fn registry_with_counter() -> (Arc<ObjectRegistry>, Arc<CountingServant>) {
    let counter = Arc::new(CountingServant::default());
    let reg = ObjectRegistry::with_echo();
    reg.register(
        b"count".to_vec(),
        Arc::clone(&counter) as Arc<dyn rtcorba::service::Servant>,
    );
    (reg, counter)
}

fn wait_for(counter: &CountingServant, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter.count() < n {
        assert!(
            Instant::now() < deadline,
            "servant saw {} of {n}",
            counter.count()
        );
        std::thread::yield_now();
    }
}

#[test]
fn zen_oneway_reaches_servant_without_reply() {
    let (reg, counter) = registry_with_counter();
    let server = rtcorba::ServerBuilder::new(reg)
        .threaded()
        .serve_zen()
        .unwrap();
    let client = rtcorba::ClientBuilder::new()
        .connect_zen(server.addr().unwrap())
        .unwrap();
    for _ in 0..10 {
        client.invoke_oneway(b"count", "bump", &[1, 2]).unwrap();
    }
    wait_for(&counter, 10);
    // The connection still works for twoway afterwards (no stray replies
    // were queued for the oneways).
    let reply = client.invoke(b"count", "bump", &[]).unwrap();
    assert_eq!(u64::from_be_bytes(reply.try_into().unwrap()), 11);
    server.shutdown();
}

#[test]
fn compadres_oneway_reaches_servant_without_reply() {
    let (reg, counter) = registry_with_counter();
    let server = rtcorba::ServerBuilder::new(reg).serve().unwrap();
    let client = rtcorba::ClientBuilder::new()
        .connect(server.addr().unwrap())
        .unwrap();
    for _ in 0..10 {
        client.invoke_oneway(b"count", "bump", &[]).unwrap();
    }
    wait_for(&counter, 10);
    let reply = client.invoke(b"count", "bump", &[]).unwrap();
    assert_eq!(u64::from_be_bytes(reply.try_into().unwrap()), 11);
    server.shutdown();
}

/// A servant whose every invocation takes a tangible amount of time.
struct SlowServant(Duration);

impl rtcorba::service::Servant for SlowServant {
    fn invoke(&self, _operation: &str, _args: &[u8]) -> Result<Vec<u8>, String> {
        std::thread::sleep(self.0);
        Ok(Vec::new())
    }
}

#[test]
fn oneway_does_not_wait_for_the_servant() {
    // Not a benchmark: racing 50 oneways against 50 twoways is pure
    // noise on a loaded test host. Instead make each invocation cost an
    // unmistakable 100 ms at the servant — a oneway that secretly waited
    // for its reply would pay it, a real oneway returns immediately.
    let step = Duration::from_millis(100);
    let reg = ObjectRegistry::with_echo();
    reg.register(b"slow".to_vec(), Arc::new(SlowServant(step)));
    let server = rtcorba::ServerBuilder::new(reg).serve().unwrap();
    let client = rtcorba::ClientBuilder::new()
        .connect(server.addr().unwrap())
        .unwrap();

    let t = Instant::now();
    for _ in 0..5 {
        client.invoke_oneway(b"slow", "nap", &[]).unwrap();
    }
    let oneway_elapsed = t.elapsed();
    assert!(
        oneway_elapsed < step * 5,
        "5 oneways took {oneway_elapsed:?}: the client is waiting on the servant"
    );

    // Sanity: a twoway on the same servant really does pay the nap.
    let t = Instant::now();
    client.invoke(b"slow", "nap", &[]).unwrap();
    assert!(t.elapsed() >= step, "twoway must wait for the servant");
    server.shutdown();
}

#[test]
fn corbaloc_reference_end_to_end() {
    // The server publishes a stringified reference; the client resolves
    // and invokes through it.
    let server = rtcorba::ServerBuilder::new(ObjectRegistry::with_echo())
        .serve()
        .unwrap();
    let reference = server.object_ref(b"echo").unwrap();
    assert!(reference.starts_with("corbaloc::"));
    let (client, key) = CompadresClient::connect_ref(&reference).unwrap();
    assert_eq!(
        client.invoke(&key, "echo", &[4, 5, 6]).unwrap(),
        vec![4, 5, 6]
    );
    // The Zen client resolves the very same reference (wire compat).
    let (zen, key) = ZenClient::connect_ref(&reference).unwrap();
    assert_eq!(
        zen.invoke(&key, "reverse", &[1, 2, 3]).unwrap(),
        vec![3, 2, 1]
    );
    server.shutdown();
}

#[test]
fn framing_survives_byte_by_byte_writes() {
    // A pathological client that trickles a GIOP request one byte at a
    // time; the server's framed reader must reassemble it correctly.
    use rtcorba::cdr::Endian;
    use rtcorba::giop::{decode, Message, RequestMessage};
    use std::io::{Read, Write};

    let server = rtcorba::ServerBuilder::new(ObjectRegistry::with_echo())
        .serve()
        .unwrap();
    let mut raw = std::net::TcpStream::connect(server.addr().unwrap()).unwrap();
    raw.set_nodelay(true).unwrap();
    let frame = RequestMessage {
        request_id: 77,
        response_expected: true,
        object_key: b"echo".to_vec(),
        operation: "echo".to_string(),
        body: vec![0xAB; 33],
        service_context: Vec::new(),
    }
    .encode(Endian::Big);
    for b in &frame {
        raw.write_all(&[*b]).unwrap();
        raw.flush().unwrap();
    }
    // Read the reply (header, then declared body).
    let mut header = [0u8; 12];
    raw.read_exact(&mut header).unwrap();
    let body_len = rtcorba::giop::body_size(&header).unwrap();
    let mut reply = vec![0u8; 12 + body_len];
    reply[..12].copy_from_slice(&header);
    raw.read_exact(&mut reply[12..]).unwrap();
    match decode(&reply).unwrap() {
        Message::Reply(r) => {
            assert_eq!(r.request_id, 77);
            assert_eq!(r.body, vec![0xAB; 33]);
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}
