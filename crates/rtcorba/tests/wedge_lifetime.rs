//! Regression: the Compadres ORB's per-request scope churn must record
//! in `rtmem_wedge_lifetime_ns` — one wedge release per invocation on
//! the server's request-processing scope (companion to the core-level
//! test in `compadres-core/tests/wedge_lifetime.rs`).

use rtcorba::corb;

#[test]
fn orb_invocations_record_wedge_lifetimes() {
    let (_server, client) = corb::loopback_echo_pair().unwrap();
    for i in 0..10u8 {
        client.invoke(b"echo", "echo", &[i]).unwrap();
    }
    let obs = client.app().observer();
    let hist = obs.histogram("rtmem_wedge_lifetime_ns");
    let snap = obs.hist_snapshot(hist);
    assert!(
        snap.count >= 10,
        "10 invocations must record >= 10 wedge lifetimes, count = {}",
        snap.count
    );
    assert!(snap.max > 0, "recorded lifetimes must be non-zero");
}
