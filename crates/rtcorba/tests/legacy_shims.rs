//! Coverage for the deprecated pre-builder ORB entry points. Each shim
//! must keep compiling and delegating to the same internals the
//! builders use — external callers migrate on their own schedule, so a
//! silent behaviour change here is an API break. This file is the one
//! place in the workspace allowed to call them (the
//! deprecated-constructor gate in `scripts/check.sh` excludes it by
//! name).
#![allow(deprecated)]

use rtcorba::corb::{CompadresClient, CompadresServer};
use rtcorba::reactor::ReactorConfig;
use rtcorba::service::ObjectRegistry;
use rtcorba::zen::{ZenClient, ZenServer};
use rtplatform::fault::FaultPolicy;

fn policy() -> FaultPolicy {
    FaultPolicy::tight()
}

#[test]
fn compadres_spawn_tcp_and_connect_tcp() {
    let server = CompadresServer::spawn_tcp(ObjectRegistry::with_echo()).unwrap();
    let client = CompadresClient::connect_tcp(server.addr().unwrap()).unwrap();
    assert_eq!(
        client.invoke(b"echo", "echo", &[1, 2, 3]).unwrap(),
        [1, 2, 3]
    );
    server.shutdown();
}

#[test]
fn compadres_spawn_tcp_reactor_and_connect_tcp_with() {
    let server =
        CompadresServer::spawn_tcp_reactor(ObjectRegistry::with_echo(), ReactorConfig::default())
            .unwrap();
    let client = CompadresClient::connect_tcp_with(server.addr().unwrap(), &policy()).unwrap();
    assert_eq!(client.invoke(b"echo", "echo", &[4, 5]).unwrap(), [4, 5]);
    server.shutdown();
}

#[test]
fn compadres_spawn_tcp_threaded() {
    let server = CompadresServer::spawn_tcp_threaded(ObjectRegistry::with_echo()).unwrap();
    let client = CompadresClient::connect_tcp(server.addr().unwrap()).unwrap();
    assert_eq!(client.invoke(b"echo", "echo", &[6]).unwrap(), [6]);
    server.shutdown();
}

#[test]
fn zen_spawn_tcp_and_connect_tcp() {
    let server = ZenServer::spawn_tcp(ObjectRegistry::with_echo()).unwrap();
    let client = ZenClient::connect_tcp(server.addr().unwrap()).unwrap();
    assert_eq!(client.invoke(b"echo", "echo", &[7, 8]).unwrap(), [7, 8]);
    server.shutdown();
}

#[test]
fn zen_spawn_tcp_reactor_and_connect_tcp_with() {
    let server =
        ZenServer::spawn_tcp_reactor(ObjectRegistry::with_echo(), rtobs::Observer::new()).unwrap();
    let client = ZenClient::connect_tcp_with(server.addr().unwrap(), &policy()).unwrap();
    assert_eq!(client.invoke(b"echo", "echo", &[9]).unwrap(), [9]);
    server.shutdown();
}
