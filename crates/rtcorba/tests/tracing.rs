//! Cross-ORB causal tracing: an `invoke_with_budget` call roots a trace
//! whose context rides the GIOP `TRACE_CONTEXT_SLOT` to the server, so
//! stitching the two journals yields one span tree that crosses the ORB
//! boundary — the client's wire span is the parent of the server-side
//! POA/handler spans — with the deadline budget counting down on both
//! clocks and overruns attributed to the hop that spent the budget.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtcorba::corb::{loopback_echo_pair, CompadresClient, CompadresServer};
use rtcorba::service::{ObjectRegistry, Servant};
use rtobs::{EventKind, Observer, SpanForest};

/// Polls until the server journal holds `n` SpanEnd events (the reply
/// reaches the client slightly before the server finishes journalling).
fn await_span_ends(obs: &Observer, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd)
        .count()
        < n
    {
        assert!(Instant::now() < deadline, "server SpanEnd never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Asserts the stitched forest has a client-rooted trace whose subtree
/// reaches server-side hops, and returns that trace id.
fn assert_cross_orb_tree(client: &CompadresClient, server_obs: &Observer) -> u32 {
    let forest =
        SpanForest::from_journals(&[("client", client.app().observer()), ("server", server_obs)]);
    let client_src = 0;
    let server_src = 1;
    // Find a server-side hop whose tree root lives in the client
    // journal: the ORB boundary crossed inside one tree.
    let nodes = forest.nodes();
    let mut found = None;
    for (idx, n) in nodes.iter().enumerate() {
        if n.source != server_src {
            continue;
        }
        let mut cur = idx;
        let mut hops = 0;
        while let Some(p) = nodes.iter().position(|c| c.children.contains(&cur)) {
            cur = p;
            hops += 1;
            assert!(hops < 64, "cycle while walking to root");
        }
        if nodes[cur].source == client_src {
            found = Some(nodes[cur].trace_id);
            break;
        }
    }
    let trace_id = found.expect("a server-side hop must hang off a client-rooted trace");
    let path = forest.critical_path(trace_id);
    let crossed: Vec<usize> = path.iter().map(|&i| forest.nodes()[i].source).collect();
    assert!(
        crossed.contains(&client_src) && crossed.contains(&server_src),
        "critical path must cross the ORB boundary, sources: {crossed:?}"
    );
    let rendered = forest.render();
    assert!(
        rendered.contains("[client]") && rendered.contains("[server]"),
        "render labels both sources:\n{rendered}"
    );
    trace_id
}

#[test]
fn loopback_invocation_stitches_into_one_tree() {
    let (server, client) = loopback_echo_pair().unwrap();
    let out = client
        .invoke_with_budget(b"echo", "echo", &[1, 2, 3], Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(out, vec![1, 2, 3]);
    // Server pipeline: Poa → STransport → RequestProcessing = 3 hops.
    await_span_ends(server.app().observer(), 3);

    let sobs = server.app().observer();
    assert!(
        sobs.events()
            .iter()
            .any(|e| e.kind == EventKind::SpanRemoteRecv),
        "server adopted the wire context"
    );
    let cobs = client.app().observer();
    assert!(
        cobs.events()
            .iter()
            .any(|e| e.kind == EventKind::SpanRemoteSend),
        "client recorded the wire handoff"
    );
    assert_cross_orb_tree(&client, sobs);
}

#[test]
fn tcp_invocation_stitches_into_one_tree() {
    let server = rtcorba::ServerBuilder::new(ObjectRegistry::with_echo())
        .serve()
        .unwrap();
    let client = rtcorba::ClientBuilder::new()
        .connect(server.addr().unwrap())
        .unwrap();
    let payload = vec![0x5Au8; 256];
    assert_eq!(
        client
            .invoke_with_budget(b"echo", "echo", &payload, Some(Duration::from_secs(5)))
            .unwrap(),
        payload
    );
    await_span_ends(server.app().observer(), 3);
    assert_cross_orb_tree(&client, server.app().observer());
    server.shutdown();
}

/// A servant that sleeps long enough to blow any small budget.
struct SlowServant(Duration);

impl Servant for SlowServant {
    fn invoke(&self, _operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        std::thread::sleep(self.0);
        Ok(args.to_vec())
    }
}

#[test]
fn blown_budget_is_flagged_on_the_server_hop() {
    let registry = ObjectRegistry::new();
    registry.register(
        b"slow".to_vec(),
        Arc::new(SlowServant(Duration::from_millis(25))),
    );
    let server = CompadresServer::spawn_loopback(Arc::new(registry)).unwrap();
    let conn = server.attach_loopback();
    let client = CompadresClient::from_conn(Arc::new(conn)).unwrap();

    // 2 ms budget against a 25 ms servant: the call still succeeds (the
    // budget is accounting, not policy) but the overrun must be flagged.
    let out = client
        .invoke_with_budget(b"slow", "echo", &[9], Some(Duration::from_millis(2)))
        .unwrap();
    assert_eq!(out, vec![9]);
    await_span_ends(server.app().observer(), 3);

    let trace_id = assert_cross_orb_tree(&client, server.app().observer());
    let forest = SpanForest::from_journals(&[
        ("client", client.app().observer()),
        ("server", server.app().observer()),
    ]);
    assert!(
        forest.overrun_traces().contains(&trace_id),
        "the blown trace is flagged"
    );
    // The dominant hop on the critical path is on the server, where the
    // budget actually went.
    let dominant = forest.dominant_hop(trace_id).expect("dominant hop");
    assert_eq!(
        forest.sources[forest.nodes()[dominant].source],
        "server",
        "overrun attributed to the server-side hop"
    );
    assert!(
        forest.nodes()[dominant].duration_ns().unwrap() >= 20_000_000,
        "dominant hop carries the servant's sleep"
    );
    assert!(forest.render().contains("OVERRUN"));

    // The server's per-hop deadline-miss counters saw it too.
    let metrics = server.app().metrics_text();
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("compadres_deadline_miss_") && !l.ends_with(" 0")),
        "server counted the miss:\n{metrics}"
    );
}

#[test]
fn untraced_invocations_cross_old_style() {
    // With tracing off, no context is attached and the server adopts
    // nothing — the wire format degrades to the legacy frames.
    let (server, client) = loopback_echo_pair().unwrap();
    client.app().observer().set_tracing(false);
    assert_eq!(client.invoke(b"echo", "echo", &[4]).unwrap(), vec![4]);
    client.app().wait_quiescent(Duration::from_secs(2));
    assert!(
        !server
            .app()
            .observer()
            .events()
            .iter()
            .any(|e| e.kind == EventKind::SpanRemoteRecv),
        "no adoption without a trace slot"
    );
}
