//! Integration tests for the event-driven reactor transport (DESIGN.md
//! §5h) against a real TCP socket: partial-frame reassembly across many
//! readiness events, fault injection reused from `chaos`, and the
//! server's health after misbehaving peers disconnect mid-frame.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rtcorba::cdr::Endian;
use rtcorba::chaos::{FaultPlan, FaultyConn};
use rtcorba::giop::{
    self, body_size, encode_trace_slot, GiopError, Message, ReplyStatus, RequestMessage,
    HEADER_LEN, TRACE_CONTEXT_SLOT,
};
use rtcorba::service::ObjectRegistry;
use rtcorba::transport::{Connection, TcpConn};
use rtcorba::zen::ZenServer;

fn reactor_server() -> ZenServer {
    rtcorba::ServerBuilder::new(ObjectRegistry::with_echo())
        .observer(rtobs::Observer::new())
        .serve_zen()
        .expect("spawn reactor server")
}

/// Reads exactly one GIOP frame from a raw stream.
fn read_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("reply header");
    let body = body_size(&header).expect("reply header parses");
    let mut frame = header.to_vec();
    frame.resize(HEADER_LEN + body, 0);
    stream
        .read_exact(&mut frame[HEADER_LEN..])
        .expect("reply body");
    frame
}

/// A request dripped one byte at a time — every byte its own TCP segment
/// and (on the server) its own readiness event — must produce exactly
/// one complete reply with the request's service contexts echoed back.
#[test]
fn dripped_request_yields_single_complete_reply() {
    let server = reactor_server();
    let req = RequestMessage {
        request_id: 77,
        response_expected: true,
        object_key: b"echo".to_vec(),
        operation: "echo".into(),
        body: vec![0xAB; 100],
        service_context: vec![
            (TRACE_CONTEXT_SLOT, encode_trace_slot(0x0DD_BA11, 3, 42)),
            (0xBEEF, vec![1, 2, 3, 4, 5]),
        ],
    };
    let frame = req.encode(Endian::Big);

    let mut stream = TcpStream::connect(server.addr().unwrap()).unwrap();
    stream.set_nodelay(true).unwrap();
    for (i, byte) in frame.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        // Pause long enough for the reactor to observe most bytes as
        // separate partial reads, without making the test crawl.
        if i % 4 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let reply_frame = read_frame(&mut stream);
    match giop::decode(&reply_frame).expect("reply decodes") {
        Message::Reply(reply) => {
            assert_eq!(reply.request_id, 77);
            assert_eq!(reply.status, ReplyStatus::NoException);
            assert_eq!(reply.body, req.body, "echo must return the body");
            assert_eq!(
                reply.service_context, req.service_context,
                "contexts must survive reassembly from single-byte reads"
            );
        }
        other => panic!("expected a reply, got {other:?}"),
    }

    // Exactly one reply: nothing further arrives before a short timeout.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut extra = [0u8; 1];
    match stream.read(&mut extra) {
        Ok(0) => {} // server closed cleanly
        Ok(n) => panic!("unexpected extra {n} byte(s) after the reply"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error: {e}"
        ),
    }
    server.shutdown();
}

/// `chaos::FaultyConn` truncation, pointed at the reactor server: the
/// reply loses half its body in transit and must surface as the
/// documented `ShortBody` decode error — while the server keeps serving
/// untouched connections.
#[test]
fn truncated_reply_from_reactor_maps_to_short_body() {
    let server = reactor_server();
    let addr = server.addr().unwrap();

    let conn = FaultyConn::new(
        Arc::new(TcpConn::connect(addr).unwrap()),
        FaultPlan {
            truncate: 1.0,
            ..FaultPlan::quiet(11)
        },
    );
    let req = RequestMessage {
        request_id: 1,
        response_expected: true,
        object_key: b"echo".to_vec(),
        operation: "echo".into(),
        body: vec![7; 64],
        service_context: Vec::new(),
    };
    conn.send_frame(&req.encode(Endian::Big)).unwrap();
    let frame = conn.recv_frame().unwrap();
    match giop::decode(&frame) {
        Err(GiopError::ShortBody { declared, actual }) => {
            assert!(actual < declared, "truncation must shorten the body");
        }
        other => panic!("expected ShortBody from truncated reply, got {other:?}"),
    }
    assert_eq!(conn.injected().truncated, 1);

    // The fault was client-side: the reactor still answers cleanly.
    let client = rtcorba::ClientBuilder::new().connect_zen(addr).unwrap();
    assert_eq!(client.invoke(b"echo", "echo", &[9, 9]).unwrap(), vec![9, 9]);
    server.shutdown();
}

/// A peer that declares a large body, sends half of it, and hangs up
/// must not wedge the reactor: its connection is reaped and concurrent
/// plus subsequent clients are unaffected.
#[test]
fn midframe_hangup_leaves_reactor_healthy() {
    let server = reactor_server();
    let addr = server.addr().unwrap();

    // A well-behaved client connected before the misbehaving one.
    let bystander = rtcorba::ClientBuilder::new().connect_zen(addr).unwrap();

    let req = RequestMessage {
        request_id: 5,
        response_expected: true,
        object_key: b"echo".to_vec(),
        operation: "echo".into(),
        body: vec![3; 400],
        service_context: Vec::new(),
    };
    let frame = req.encode(Endian::Big);
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        stream.flush().unwrap();
        // Dropped here: RST/FIN mid-frame while the reactor holds the
        // partial bytes in the connection's reassembly buffer.
    }

    // Both the pre-existing and a fresh connection still round-trip.
    assert_eq!(
        bystander.invoke(b"echo", "reverse", &[1, 2, 3]).unwrap(),
        vec![3, 2, 1]
    );
    let fresh = rtcorba::ClientBuilder::new().connect_zen(addr).unwrap();
    assert_eq!(fresh.invoke(b"echo", "echo", &[8]).unwrap(), vec![8]);
    server.shutdown();
}
