//! Property tests for the wire layer: seeded random GIOP messages
//! round-trip encode → decode to identity in both endiannesses, random
//! CDR primitive sequences round-trip, and decoding mutated frames
//! (bit flips, truncations, random garbage) returns an error or a
//! message — it must never panic. This is the input guarantee behind
//! the `MessageError` reply path: a peer can feed us anything.

use rtcorba::cdr::{CdrDecoder, CdrEncoder, Endian};
use rtcorba::giop::{
    decode, decode_view, encode_trace_slot, peek_trace, peek_trace_parts, Message, ReplyMessage,
    ReplyStatus, RequestMessage, TRACE_CONTEXT_SLOT,
};
use rtplatform::bufchain::SegPool;
use rtplatform::rng::SplitMix64;

fn cases() -> u64 {
    std::env::var("RTCHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

fn random_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_string(rng: &mut SplitMix64, max_len: usize) -> String {
    // Mixes ASCII with multi-byte code points to stress CDR's
    // length-prefixed UTF-8 strings.
    let alphabet: Vec<char> = "abcXYZ09_µλ→é老".chars().collect();
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len())])
        .collect()
}

/// Zero to three service contexts: sometimes a well-formed trace slot,
/// sometimes unknown slot ids with arbitrary octets.
fn random_contexts(rng: &mut SplitMix64) -> Vec<(u32, Vec<u8>)> {
    (0..rng.below(4))
        .map(|_| {
            if rng.chance(0.3) {
                (
                    TRACE_CONTEXT_SLOT,
                    encode_trace_slot(
                        rng.next_u64() as u32 | 1,
                        rng.next_u64() as u16,
                        rng.next_u64(),
                    ),
                )
            } else {
                (rng.next_u64() as u32, random_bytes(rng, 32))
            }
        })
        .collect()
}

fn random_request(rng: &mut SplitMix64) -> RequestMessage {
    RequestMessage {
        request_id: rng.next_u64() as u32,
        response_expected: rng.chance(0.5),
        object_key: random_bytes(rng, 24),
        operation: random_string(rng, 16),
        body: random_bytes(rng, 96),
        service_context: random_contexts(rng),
    }
}

fn random_reply(rng: &mut SplitMix64) -> ReplyMessage {
    ReplyMessage {
        request_id: rng.next_u64() as u32,
        status: [
            ReplyStatus::NoException,
            ReplyStatus::SystemException,
            ReplyStatus::ObjectNotExist,
        ][rng.below(3)],
        body: random_bytes(rng, 96),
        service_context: random_contexts(rng),
    }
}

#[test]
fn request_roundtrip_is_identity_both_endians() {
    let mut rng = SplitMix64::new(0x0A11);
    for case in 0..cases() {
        let req = random_request(&mut rng);
        for endian in [Endian::Big, Endian::Little] {
            let frame = req.encode(endian);
            match decode(&frame) {
                Ok(Message::Request(got)) => assert_eq!(got, req, "case {case}"),
                other => panic!("case {case} ({endian:?}): {other:?}"),
            }
        }
    }
}

#[test]
fn reply_roundtrip_is_identity_both_endians() {
    let mut rng = SplitMix64::new(0x0A12);
    for case in 0..cases() {
        let reply = random_reply(&mut rng);
        for endian in [Endian::Big, Endian::Little] {
            let frame = reply.encode(endian);
            match decode(&frame) {
                Ok(Message::Reply(got)) => assert_eq!(got, reply, "case {case}"),
                other => panic!("case {case} ({endian:?}): {other:?}"),
            }
        }
    }
}

#[test]
fn cdr_primitive_sequences_roundtrip() {
    let mut rng = SplitMix64::new(0x0A13);
    for case in 0..cases() {
        let endian = if rng.chance(0.5) {
            Endian::Big
        } else {
            Endian::Little
        };
        // A random schedule of typed writes, replayed as typed reads.
        let schedule: Vec<usize> = (0..rng.below(24)).map(|_| rng.below(9)).collect();
        let mut expect_u: Vec<u64> = Vec::new();
        let mut expect_s: Vec<String> = Vec::new();
        let mut enc = CdrEncoder::new(endian);
        for &kind in &schedule {
            let v = rng.next_u64();
            match kind {
                0 => enc.write_u8(v as u8),
                1 => enc.write_bool(v & 1 == 1),
                2 => enc.write_u16(v as u16),
                3 => enc.write_u32(v as u32),
                4 => enc.write_u64(v),
                5 => enc.write_i32(v as i32),
                6 => enc.write_i64(v as i64),
                7 => {
                    let s = random_string(&mut rng, 12);
                    enc.write_string(&s);
                    expect_s.push(s);
                }
                _ => enc.write_octets(&v.to_le_bytes()),
            }
            if kind != 7 {
                expect_u.push(v);
            }
        }
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, endian);
        let (mut iu, mut is_) = (0, 0);
        for &kind in &schedule {
            match kind {
                0 => assert_eq!(dec.read_u8().unwrap(), expect_u[iu] as u8),
                1 => assert_eq!(dec.read_bool().unwrap(), expect_u[iu] & 1 == 1),
                2 => assert_eq!(dec.read_u16().unwrap(), expect_u[iu] as u16),
                3 => assert_eq!(dec.read_u32().unwrap(), expect_u[iu] as u32),
                4 => assert_eq!(dec.read_u64().unwrap(), expect_u[iu]),
                5 => assert_eq!(dec.read_i32().unwrap(), expect_u[iu] as i32),
                6 => assert_eq!(dec.read_i64().unwrap(), expect_u[iu] as i64),
                7 => {
                    assert_eq!(dec.read_string().unwrap(), expect_s[is_], "case {case}");
                    is_ += 1;
                }
                _ => assert_eq!(dec.read_octets().unwrap(), expect_u[iu].to_le_bytes()),
            }
            if kind != 7 {
                iu += 1;
            }
        }
        assert_eq!(dec.remaining(), 0, "case {case}: trailing bytes");
    }
}

/// An unknown service-context slot must survive a full decode →
/// re-encode → decode cycle byte-for-byte: a new peer relaying or
/// echoing contexts it does not understand must not corrupt them, and
/// an old-format frame (no context tail) must decode to an empty list.
#[test]
fn unknown_service_contexts_roundtrip_unharmed() {
    let mut rng = SplitMix64::new(0x0A16);
    for case in 0..cases() {
        let endian = if rng.chance(0.5) {
            Endian::Big
        } else {
            Endian::Little
        };
        let mut req = random_request(&mut rng);
        req.service_context = vec![(rng.next_u64() as u32, random_bytes(&mut rng, 48))];
        let once = match decode(&req.encode(endian)) {
            Ok(Message::Request(r)) => r,
            other => panic!("case {case}: {other:?}"),
        };
        let twice = match decode(&once.encode(endian)) {
            Ok(Message::Request(r)) => r,
            other => panic!("case {case} re-encode: {other:?}"),
        };
        assert_eq!(twice, req, "case {case}: context mangled in transit");

        // A legacy frame is exactly a context-free encoding.
        let mut legacy = req.clone();
        legacy.service_context.clear();
        match decode(&legacy.encode(endian)) {
            Ok(Message::Request(r)) => assert!(r.service_context.is_empty(), "case {case}"),
            other => panic!("case {case} legacy: {other:?}"),
        }
    }
}

/// `peek_trace` shares decode's guarantee: any bytes in, no panic out —
/// it runs on the server's reader thread against unauthenticated input.
#[test]
fn peek_trace_never_panics_and_agrees_with_decode() {
    let mut rng = SplitMix64::new(0x0A17);
    for case in 0..cases() {
        let endian = if rng.chance(0.5) {
            Endian::Big
        } else {
            Endian::Little
        };
        let req = random_request(&mut rng);
        let mut frame = req.encode(endian);
        // On the pristine frame, peek must agree with the full decode.
        assert_eq!(
            peek_trace(&frame),
            req.trace_context(),
            "case {case}: peek disagrees with decode"
        );
        // Then mutate and require only absence-of-panic.
        for _ in 0..rng.range_usize(1, 8) {
            if frame.is_empty() {
                break;
            }
            let at = rng.below(frame.len());
            frame[at] ^= 1 << rng.below(8);
        }
        if rng.chance(0.3) && !frame.is_empty() {
            frame.truncate(rng.below(frame.len()));
        }
        if std::panic::catch_unwind(|| peek_trace(&frame)).is_err() {
            panic!("case {case}: peek_trace panicked on {frame:02X?}");
        }
    }
}

/// Decode must return, not panic, on arbitrary mutations of valid
/// frames. Each failure would be a reproducible seed.
#[test]
fn decode_of_mutated_frames_never_panics() {
    let mut rng = SplitMix64::new(0x0A14);
    for case in 0..cases() {
        let endian = if rng.chance(0.5) {
            Endian::Big
        } else {
            Endian::Little
        };
        let mut frame = if rng.chance(0.5) {
            random_request(&mut rng).encode(endian)
        } else {
            random_reply(&mut rng).encode(endian)
        };
        // Mutate: flip random bits, or truncate, or both.
        for _ in 0..rng.range_usize(1, 8) {
            if frame.is_empty() {
                break;
            }
            let at = rng.below(frame.len());
            frame[at] ^= 1 << rng.below(8);
        }
        if rng.chance(0.3) && !frame.is_empty() {
            frame.truncate(rng.below(frame.len()));
        }
        let result = std::panic::catch_unwind(|| decode(&frame));
        match result {
            Ok(_ok_or_protocol_error) => {}
            Err(_) => panic!("case {case}: decode panicked on {frame:02X?}"),
        }
    }
}

/// Cuts a frame into random contiguous fragments — the shapes a
/// [`decode_view`] caller sees when a frame straddles pool segments:
/// whole, split at a few random points, or shredded into tiny pieces.
fn fragment(rng: &mut SplitMix64, frame: &[u8]) -> Vec<Vec<u8>> {
    if frame.is_empty() || rng.chance(0.25) {
        return vec![frame.to_vec()];
    }
    let mut cuts: Vec<usize> = if rng.chance(0.2) {
        // Shred: every fragment at most 3 bytes, so every multi-byte
        // primitive read crosses a boundary.
        (1..frame.len()).filter(|_| rng.chance(0.5)).collect()
    } else {
        (0..rng.range_usize(1, 5))
            .map(|_| rng.below(frame.len()))
            .collect()
    };
    cuts.push(0);
    cuts.push(frame.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| frame[w[0]..w[1]].to_vec())
        .collect()
}

/// The in-place decoder must agree with the legacy `Vec` decoder on
/// every well-formed frame, however it is fragmented across segment
/// boundaries — chain-encoded and legacy-encoded alike, both endians.
#[test]
fn decode_view_agrees_with_decode_on_fragmented_frames() {
    let mut rng = SplitMix64::new(0x0A18);
    let pool = SegPool::new(8, 64); // small segments force real chains
    for case in 0..cases() {
        for endian in [Endian::Big, Endian::Little] {
            let frame = if rng.chance(0.5) {
                let req = random_request(&mut rng);
                if rng.chance(0.5) {
                    req.encode(endian)
                } else {
                    req.encode_chain(endian, &pool).to_vec()
                }
            } else {
                let reply = random_reply(&mut rng);
                if rng.chance(0.5) {
                    reply.encode(endian)
                } else {
                    reply.encode_chain(endian, &pool).to_vec()
                }
            };
            let legacy = decode(&frame).unwrap_or_else(|e| panic!("case {case}: {e}"));
            let frags = fragment(&mut rng, &frame);
            let parts: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
            let view = decode_view(&parts).unwrap_or_else(|e| panic!("case {case} view: {e}"));
            assert_eq!(
                view.to_message(),
                legacy,
                "case {case} ({endian:?}, {} fragments)",
                parts.len()
            );
            assert_eq!(
                peek_trace_parts(&parts),
                peek_trace(&frame),
                "case {case}: fragmented peek disagrees"
            );
        }
    }
}

/// Chain encoding must be byte-identical to the legacy `Vec` encoding —
/// the wire format is pinned, only the allocation strategy changed.
#[test]
fn chain_encode_is_byte_identical_to_vec_encode() {
    let mut rng = SplitMix64::new(0x0A19);
    let pool = SegPool::new(8, 48);
    for case in 0..cases() {
        for endian in [Endian::Big, Endian::Little] {
            let req = random_request(&mut rng);
            assert_eq!(
                req.encode_chain(endian, &pool).to_vec(),
                req.encode(endian),
                "case {case} ({endian:?}): request frames differ"
            );
            let reply = random_reply(&mut rng);
            assert_eq!(
                reply.encode_chain(endian, &pool).to_vec(),
                reply.encode(endian),
                "case {case} ({endian:?}): reply frames differ"
            );
        }
    }
}

/// [`decode_view`] shares decode's guarantee on hostile input: mutated
/// or truncated frames, fragmented any which way, never panic — and
/// whenever both decoders accept a frame they must still agree.
#[test]
fn decode_view_of_mutated_fragmented_frames_never_panics() {
    let mut rng = SplitMix64::new(0x0A1A);
    for case in 0..cases() {
        let endian = if rng.chance(0.5) {
            Endian::Big
        } else {
            Endian::Little
        };
        let mut frame = if rng.chance(0.5) {
            random_request(&mut rng).encode(endian)
        } else {
            random_reply(&mut rng).encode(endian)
        };
        for _ in 0..rng.range_usize(1, 8) {
            if frame.is_empty() {
                break;
            }
            let at = rng.below(frame.len());
            frame[at] ^= 1 << rng.below(8);
        }
        if rng.chance(0.3) && !frame.is_empty() {
            frame.truncate(rng.below(frame.len()));
        }
        let frags = fragment(&mut rng, &frame);
        let parts: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
        match std::panic::catch_unwind(|| decode_view(&parts).map(|v| v.to_message())) {
            Ok(view_result) => {
                if let (Ok(v), Ok(m)) = (view_result, decode(&frame)) {
                    assert_eq!(v, m, "case {case}: decoders disagree on mutated frame");
                }
            }
            Err(_) => panic!("case {case}: decode_view panicked on {frame:02X?}"),
        }
    }
}

/// Pure garbage, fragmented, through the in-place decoder: no panic.
#[test]
fn decode_view_of_random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0x0A1B);
    for case in 0..cases() {
        let mut garbage = random_bytes(&mut rng, 64);
        if rng.chance(0.5) && garbage.len() >= 8 {
            garbage[..4].copy_from_slice(b"GIOP");
            garbage[4] = 1;
            garbage[5] = 0;
        }
        let frags = fragment(&mut rng, &garbage);
        let parts: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
        if std::panic::catch_unwind(|| decode_view(&parts).map(|v| v.to_message())).is_err() {
            panic!("case {case}: decode_view panicked on {garbage:02X?}");
        }
    }
}

/// Pure garbage (no valid frame as the starting point) must also
/// decode without panicking.
#[test]
fn decode_of_random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0x0A15);
    for case in 0..cases() {
        let mut garbage = random_bytes(&mut rng, 64);
        // Half the time, make it look superficially like GIOP so the
        // deeper decode paths are reached.
        if rng.chance(0.5) && garbage.len() >= 8 {
            garbage[..4].copy_from_slice(b"GIOP");
            garbage[4] = 1;
            garbage[5] = 0;
        }
        if std::panic::catch_unwind(|| decode(&garbage)).is_err() {
            panic!("case {case}: decode panicked on {garbage:02X?}");
        }
    }
}
