//! One test per injected fault class, pinning the documented mapping to
//! `TransportError` variants (see the table on `TransportError`):
//!
//! | fault                       | expected error                      |
//! |-----------------------------|-------------------------------------|
//! | reply dropped               | `Deadline`                          |
//! | reply stalled (never sent)  | `Deadline`                          |
//! | mid-frame disconnect        | `Closed`                            |
//! | truncated frame             | `Protocol` (`GiopError::ShortBody`) |
//! | garbage header              | `Protocol`                          |
//!
//! Dropped and stalled replies are indistinguishable by construction —
//! in both cases no byte arrives before the deadline — so both map to
//! `Deadline`.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use rtcorba::cdr::Endian;
use rtcorba::chaos::{FaultPlan, FaultyConn};
use rtcorba::giop::{self, GiopError, ReplyMessage, ReplyStatus};
use rtcorba::transport::{loopback_pair, Connection, TcpConn, TransportError};
use rtplatform::fault::FaultPolicy;

fn reply_frame() -> Vec<u8> {
    ReplyMessage {
        request_id: 1,
        status: ReplyStatus::NoException,
        body: vec![1, 2, 3, 4, 5, 6, 7, 8],
        service_context: Vec::new(),
    }
    .encode(Endian::Big)
}

#[test]
fn dropped_reply_maps_to_deadline() {
    let (client, server) = loopback_pair();
    let client = FaultyConn::new(
        Arc::new(client),
        FaultPlan {
            drop: 1.0,
            ..FaultPlan::quiet(7)
        },
    );
    client
        .set_deadline(Some(Duration::from_millis(50)))
        .unwrap();
    server.send_frame(&reply_frame()).unwrap();
    match client.recv_frame() {
        Err(TransportError::Deadline) => {}
        other => panic!("dropped reply must map to Deadline, got {other:?}"),
    }
    assert_eq!(client.injected().dropped, 1);
}

#[test]
fn stalled_reply_maps_to_deadline() {
    // A raw listener that accepts and then never writes a byte.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let guard = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2)); // outlive the client's deadline
        drop(stream);
    });
    let policy = FaultPolicy::tight(); // 100 ms deadlines
    let conn = TcpConn::connect_with(addr, &policy).unwrap();
    conn.send_frame(&reply_frame()).unwrap();
    match conn.recv_frame() {
        Err(TransportError::Deadline) => {}
        other => panic!("stalled reply must map to Deadline, got {other:?}"),
    }
    drop(conn);
    guard.join().unwrap();
}

#[test]
fn midframe_disconnect_maps_to_closed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let guard = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Half a GIOP header, then hang up.
        stream.write_all(b"GIOP\x01\x00").unwrap();
        stream.flush().unwrap();
    });
    let conn = TcpConn::connect(addr).unwrap();
    match conn.recv_frame() {
        Err(TransportError::Closed) => {}
        other => panic!("mid-frame disconnect must map to Closed, got {other:?}"),
    }
    guard.join().unwrap();
}

#[test]
fn injected_disconnect_maps_to_closed() {
    let (client, server) = loopback_pair();
    let client = FaultyConn::new(
        Arc::new(client),
        FaultPlan {
            disconnect: 1.0,
            ..FaultPlan::quiet(7)
        },
    );
    server.send_frame(&reply_frame()).unwrap();
    match client.recv_frame() {
        Err(TransportError::Closed) => {}
        other => panic!("injected disconnect must map to Closed, got {other:?}"),
    }
    assert_eq!(client.injected().disconnected, 1);
}

#[test]
fn truncated_frame_maps_to_short_body() {
    let (client, server) = loopback_pair();
    let client = FaultyConn::new(
        Arc::new(client),
        FaultPlan {
            truncate: 1.0,
            ..FaultPlan::quiet(7)
        },
    );
    server.send_frame(&reply_frame()).unwrap();
    // The truncated frame still arrives (bytes made it), but violates
    // the declared GIOP size — surfacing at decode as ShortBody, which
    // the ORB wraps in `TransportError::Protocol` semantics.
    let frame = client.recv_frame().unwrap();
    match giop::decode(&frame) {
        Err(GiopError::ShortBody { declared, actual }) => {
            assert!(actual < declared, "truncation must shorten the body");
        }
        other => panic!("truncated frame must decode to ShortBody, got {other:?}"),
    }
    assert_eq!(client.injected().truncated, 1);
}

#[test]
fn garbage_header_maps_to_protocol() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let guard = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        stream.write_all(&[0xde; 32]).unwrap(); // 12-byte header's worth of junk and change
        stream.flush().unwrap();
    });
    let conn = TcpConn::connect(addr).unwrap();
    match conn.recv_frame() {
        Err(TransportError::Protocol(_)) => {}
        other => panic!("garbage header must map to Protocol, got {other:?}"),
    }
    guard.join().unwrap();
}
