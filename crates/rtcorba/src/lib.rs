//! # rtcorba — a small RT-CORBA stack for the Compadres evaluation
//!
//! Reproduces the real-world example of the Compadres paper (§3.2–3.3):
//! a simple Real-Time CORBA ORB built twice over the same substrate —
//!
//! * [`zen`] — **ZenOrb**, a hand-coded ORB standing in for RTZen: direct
//!   function calls, manually managed scoped memory;
//! * [`corb`] — the **Compadres ORB**, assembled from Compadres components
//!   with the paper's scope structure (client 3 levels, server 4 levels).
//!
//! Shared substrate: [`cdr`] marshalling (the computationally intensive
//! part the paper highlights), [`giop`] message framing, [`transport`]
//! (in-process loopback and TCP), and [`service`] servant dispatch.
//!
//! ```
//! use rtcorba::corb;
//!
//! let (_server, client) = corb::loopback_echo_pair()?;
//! assert_eq!(client.invoke(b"echo", "echo", &[1, 2, 3])?, vec![1, 2, 3]);
//! # Ok::<(), rtcorba::OrbError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cdr;
pub mod chaos;
pub mod corb;
pub mod giop;
pub mod ior;
pub mod naming;
pub mod reactor;
pub mod service;
pub mod shard;
pub mod transport;
pub mod zen;

pub use builder::{ClientBuilder, ServerBuilder, Transport};

/// How an invocation should be performed, shared by
/// [`corb::CompadresClient::invoke_with`] and
/// [`zen::ZenClient::invoke_with`]. The legacy `invoke` /
/// `invoke_oneway` / `invoke_with_budget` entry points are thin
/// wrappers over presets of this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokeOptions {
    /// Fire-and-forget: the request is marshalled and put on the wire
    /// with GIOP `response_expected = false`; no reply is waited for and
    /// the returned body is empty.
    pub oneway: bool,
    /// Deadline budget for the invocation. On the Compadres ORB the
    /// invocation becomes the root of a trace whose remaining budget
    /// travels with the request (DESIGN.md §5g); a blown budget is
    /// *recorded*, not turned into an error. ZenOrb, the hand-coded
    /// comparator without the tracing subsystem, ignores it.
    pub budget: Option<std::time::Duration>,
}

impl InvokeOptions {
    /// A synchronous two-way invocation (the default).
    pub const fn twoway() -> InvokeOptions {
        InvokeOptions {
            oneway: false,
            budget: None,
        }
    }

    /// A fire-and-forget oneway invocation.
    pub const fn oneway() -> InvokeOptions {
        InvokeOptions {
            oneway: true,
            budget: None,
        }
    }

    /// A two-way invocation under a deadline budget.
    pub const fn with_budget(budget: std::time::Duration) -> InvokeOptions {
        InvokeOptions {
            oneway: false,
            budget: Some(budget),
        }
    }
}

/// Errors surfaced by ORB invocations.
#[derive(Debug)]
pub enum OrbError {
    /// Transport-level failure.
    Transport(transport::TransportError),
    /// GIOP protocol violation.
    Giop(giop::GiopError),
    /// Malformed or unresolvable object reference.
    Ior(ior::IorError),
    /// Memory-model violation.
    Memory(rtmem::RtmemError),
    /// Component-framework failure (Compadres ORB only).
    Framework(compadres_core::CompadresError),
    /// The servant raised an exception.
    Exception(String),
    /// The object key was not registered at the server.
    ObjectNotExist,
    /// A reply arrived for a different request id.
    RequestMismatch {
        /// The id we sent.
        expected: u32,
        /// The id that came back.
        got: u32,
    },
    /// A message of an unexpected kind arrived.
    UnexpectedMessage,
}

impl std::fmt::Display for OrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrbError::Transport(e) => write!(f, "transport: {e}"),
            OrbError::Giop(e) => write!(f, "protocol: {e}"),
            OrbError::Ior(e) => write!(f, "object reference: {e}"),
            OrbError::Memory(e) => write!(f, "memory: {e}"),
            OrbError::Framework(e) => write!(f, "framework: {e}"),
            OrbError::Exception(msg) => write!(f, "servant exception: {msg}"),
            OrbError::ObjectNotExist => write!(f, "object does not exist"),
            OrbError::RequestMismatch { expected, got } => {
                write!(f, "reply for request {got}, expected {expected}")
            }
            OrbError::UnexpectedMessage => write!(f, "unexpected GIOP message"),
        }
    }
}

impl std::error::Error for OrbError {}

impl From<transport::TransportError> for OrbError {
    fn from(e: transport::TransportError) -> Self {
        OrbError::Transport(e)
    }
}

impl From<giop::GiopError> for OrbError {
    fn from(e: giop::GiopError) -> Self {
        OrbError::Giop(e)
    }
}

impl From<ior::IorError> for OrbError {
    fn from(e: ior::IorError) -> Self {
        OrbError::Ior(e)
    }
}

impl From<rtmem::RtmemError> for OrbError {
    fn from(e: rtmem::RtmemError) -> Self {
        OrbError::Memory(e)
    }
}

impl From<compadres_core::CompadresError> for OrbError {
    fn from(e: compadres_core::CompadresError) -> Self {
        OrbError::Framework(e)
    }
}
