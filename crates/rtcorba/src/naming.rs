//! A minimal CORBA-style Naming Service.
//!
//! CORBA deployments resolve human-readable names to object references
//! through the `NameService` initial reference. This module implements a
//! naming *servant* that runs inside either ORB (it is just a
//! [`Servant`]): `bind`, `resolve`, `unbind` and `list` operations with
//! CDR-marshalled parameters, plus a typed client wrapper.

use std::collections::BTreeMap;

use rtplatform::sync::RwLock;

use crate::cdr::{CdrDecoder, CdrEncoder, Endian};
use crate::ior::ObjectRef;
use crate::service::Servant;
use crate::OrbError;

/// The conventional object key the naming servant is registered under.
pub const NAME_SERVICE_KEY: &[u8] = b"NameService";

/// The naming servant: a name → stringified-reference table.
#[derive(Default)]
pub struct NamingServant {
    table: RwLock<BTreeMap<String, String>>,
}

impl std::fmt::Debug for NamingServant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NamingServant({} bindings)", self.table.read().len())
    }
}

impl NamingServant {
    /// Creates an empty naming servant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-binds a name (server-side convenience).
    pub fn bind(&self, name: &str, reference: &ObjectRef) {
        self.table
            .write()
            .insert(name.to_string(), reference.to_string());
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.table.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Servant for NamingServant {
    fn invoke(&self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = CdrDecoder::new(args, Endian::Big);
        let mut enc = CdrEncoder::new(Endian::Big);
        match operation {
            "bind" => {
                let name = dec.read_string().map_err(|e| e.to_string())?;
                let reference = dec.read_string().map_err(|e| e.to_string())?;
                // Validate before accepting.
                ObjectRef::parse(&reference).map_err(|e| e.to_string())?;
                let replaced = self.table.write().insert(name, reference).is_some();
                enc.write_bool(replaced);
                Ok(enc.into_bytes())
            }
            "resolve" => {
                let name = dec.read_string().map_err(|e| e.to_string())?;
                match self.table.read().get(&name) {
                    Some(reference) => {
                        enc.write_string(reference);
                        Ok(enc.into_bytes())
                    }
                    None => Err(format!("NotFound: no binding for {name:?}")),
                }
            }
            "unbind" => {
                let name = dec.read_string().map_err(|e| e.to_string())?;
                let removed = self.table.write().remove(&name).is_some();
                enc.write_bool(removed);
                Ok(enc.into_bytes())
            }
            "list" => {
                let table = self.table.read();
                enc.write_u32(table.len() as u32);
                for name in table.keys() {
                    enc.write_string(name);
                }
                Ok(enc.into_bytes())
            }
            other => Err(format!("NamingServant has no operation {other:?}")),
        }
    }
}

/// How a [`NamingClient`] performs raw invocations (abstracts the ORB).
type InvokeFn<'a> = Box<dyn Fn(&str, &[u8]) -> Result<Vec<u8>, OrbError> + 'a>;

/// Typed client for a remote naming service, generic over how requests are
/// invoked so it works with both ORBs.
pub struct NamingClient<'a> {
    invoke: InvokeFn<'a>,
}

impl std::fmt::Debug for NamingClient<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NamingClient")
    }
}

impl<'a> NamingClient<'a> {
    /// Wraps a ZenOrb client.
    pub fn over_zen(client: &'a crate::zen::ZenClient) -> NamingClient<'a> {
        NamingClient {
            invoke: Box::new(move |op, args| client.invoke(NAME_SERVICE_KEY, op, args)),
        }
    }

    /// Wraps a Compadres ORB client.
    pub fn over_compadres(client: &'a crate::corb::CompadresClient) -> NamingClient<'a> {
        NamingClient {
            invoke: Box::new(move |op, args| client.invoke(NAME_SERVICE_KEY, op, args)),
        }
    }

    /// Binds `name` to `reference`; returns whether an existing binding
    /// was replaced.
    ///
    /// # Errors
    ///
    /// ORB invocation failures or a servant exception.
    pub fn bind(&self, name: &str, reference: &ObjectRef) -> Result<bool, OrbError> {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_string(name);
        enc.write_string(&reference.to_string());
        let reply = (self.invoke)("bind", enc.as_bytes())?;
        Ok(CdrDecoder::new(&reply, Endian::Big).read_bool()?)
    }

    /// Resolves `name` to an object reference.
    ///
    /// # Errors
    ///
    /// [`OrbError::Exception`] with a `NotFound:` message for unknown
    /// names.
    pub fn resolve(&self, name: &str) -> Result<ObjectRef, OrbError> {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_string(name);
        let reply = (self.invoke)("resolve", enc.as_bytes())?;
        let s = CdrDecoder::new(&reply, Endian::Big).read_string()?;
        Ok(ObjectRef::parse(&s)?)
    }

    /// Removes a binding; returns whether it existed.
    ///
    /// # Errors
    ///
    /// ORB invocation failures.
    pub fn unbind(&self, name: &str) -> Result<bool, OrbError> {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_string(name);
        let reply = (self.invoke)("unbind", enc.as_bytes())?;
        Ok(CdrDecoder::new(&reply, Endian::Big).read_bool()?)
    }

    /// Lists all bound names.
    ///
    /// # Errors
    ///
    /// ORB invocation failures.
    pub fn list(&self) -> Result<Vec<String>, OrbError> {
        let reply = (self.invoke)("list", &[])?;
        let mut dec = CdrDecoder::new(&reply, Endian::Big);
        let n = dec.read_u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(dec.read_string()?);
        }
        Ok(out)
    }
}

impl From<crate::cdr::CdrError> for OrbError {
    fn from(e: crate::cdr::CdrError) -> Self {
        OrbError::Giop(crate::giop::GiopError::Cdr(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corb::CompadresServer;
    use crate::service::ObjectRegistry;
    use crate::zen::ZenClient;
    use std::sync::Arc;

    fn naming_server() -> (CompadresServer, Arc<NamingServant>) {
        let naming = Arc::new(NamingServant::new());
        let registry = ObjectRegistry::with_echo();
        registry.register(
            NAME_SERVICE_KEY.to_vec(),
            Arc::clone(&naming) as Arc<dyn Servant>,
        );
        let server = crate::ServerBuilder::new(registry).serve().unwrap();
        (server, naming)
    }

    #[test]
    fn bind_resolve_unbind_list() {
        let (server, _naming) = naming_server();
        let client = crate::ClientBuilder::new()
            .connect(server.addr().unwrap())
            .unwrap();
        let ns = NamingClient::over_compadres(&client);

        let echo_ref = ObjectRef::for_addr(server.addr().unwrap(), b"echo".to_vec());
        assert!(!ns.bind("services/echo", &echo_ref).unwrap());
        assert!(
            ns.bind("services/echo", &echo_ref).unwrap(),
            "rebind reports replacement"
        );
        ns.bind("services/other", &echo_ref).unwrap();

        assert_eq!(ns.resolve("services/echo").unwrap(), echo_ref);
        assert_eq!(ns.list().unwrap(), vec!["services/echo", "services/other"]);

        assert!(ns.unbind("services/other").unwrap());
        assert!(!ns.unbind("services/other").unwrap());
        assert_eq!(ns.list().unwrap(), vec!["services/echo"]);
        server.shutdown();
    }

    #[test]
    fn resolve_unknown_name_is_exception() {
        let (server, _naming) = naming_server();
        let client = crate::ClientBuilder::new()
            .connect(server.addr().unwrap())
            .unwrap();
        let ns = NamingClient::over_compadres(&client);
        match ns.resolve("missing") {
            Err(OrbError::Exception(msg)) => assert!(msg.contains("NotFound")),
            other => panic!("expected NotFound exception, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn resolve_then_invoke_through_resolved_reference() {
        // The full flow: resolve a name, connect to the resolved
        // reference, invoke the object — across both ORBs.
        let (server, naming) = naming_server();
        let echo_ref = ObjectRef::for_addr(server.addr().unwrap(), b"echo".to_vec());
        naming.bind("echo", &echo_ref);

        let boot = crate::ClientBuilder::new()
            .connect_zen(server.addr().unwrap())
            .unwrap();
        let ns = NamingClient::over_zen(&boot);
        let resolved = ns.resolve("echo").unwrap();
        let (client, key) = ZenClient::connect_ref(&resolved.to_string()).unwrap();
        assert_eq!(client.invoke(&key, "echo", &[9, 9]).unwrap(), vec![9, 9]);
        server.shutdown();
    }

    #[test]
    fn malformed_reference_rejected_at_bind() {
        let (server, _naming) = naming_server();
        let client = crate::ClientBuilder::new()
            .connect(server.addr().unwrap())
            .unwrap();
        // Hand-roll a bind with a bogus reference string.
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_string("bad");
        enc.write_string("not-a-corbaloc");
        match client.invoke(NAME_SERVICE_KEY, "bind", enc.as_bytes()) {
            Err(OrbError::Exception(msg)) => assert!(msg.contains("corbaloc")),
            other => panic!("expected exception, got {other:?}"),
        }
        server.shutdown();
    }
}
