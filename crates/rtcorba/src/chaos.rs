//! Deterministic fault injection and self-healing connection wrappers.
//!
//! Two composable [`Connection`] decorators:
//!
//! * [`FaultyConn`] — a fault-injection shim for tests and soaks: wraps
//!   any connection and, driven by a seeded SplitMix64 stream, drops,
//!   delays, truncates or disconnects on the receive path. One random
//!   draw per delivered frame, so a fixed seed over a fixed frame
//!   sequence replays the exact same fault schedule.
//! * [`ReconnectingConn`] — the client-side fault-tolerance layer: lazily
//!   (re)establishes the underlying connection through a factory, retries
//!   sends under a [`FaultPolicy`] with decorrelated-jitter backoff, arms
//!   recv deadlines, and poisons the connection on any recv failure (a
//!   late reply on a kept connection would desynchronise request ids).
//!   Wire an [`Observer`] in to get `remote_retries_total`,
//!   `remote_reconnects_total`, `remote_deadline_misses_total` and the
//!   `remote_retry_backoff_ns` histogram plus flight-recorder events.
//!
//! Stack them factory-side — `ReconnectingConn` over a factory returning
//! `FaultyConn(TcpConn)` — to soak an ORB under seeded chaos
//! (`examples/chaos_echo.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtobs::{CounterId, EventKind, HistId, Observer};
use rtplatform::fault::{Backoff, FaultPolicy};
use rtplatform::rng::SplitMix64;
use rtplatform::sync::Mutex;

use crate::giop::HEADER_LEN;
use crate::transport::{Connection, TransportError};

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Per-frame fault probabilities for a [`FaultyConn`]. Probabilities are
/// evaluated in order — drop, truncate, disconnect, delay — from a single
/// uniform draw per received frame (delay uses a second draw for its
/// duration), so the injected schedule is a pure function of the seed and
/// the frame sequence.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// RNG seed; equal seeds replay equal fault schedules.
    pub seed: u64,
    /// Probability a received frame is silently swallowed.
    pub drop: f64,
    /// Probability a received frame is truncated mid-body (undecodable).
    pub truncate: f64,
    /// Probability the connection is torn down instead of delivering.
    pub disconnect: f64,
    /// Probability a received frame is delivered late.
    pub delay: f64,
    /// Injected delay bounds when `delay` fires.
    pub delay_range: (Duration, Duration),
}

impl FaultPlan {
    /// A plan that never injects anything (baseline runs).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.0,
            truncate: 0.0,
            disconnect: 0.0,
            delay: 0.0,
            delay_range: (Duration::ZERO, Duration::ZERO),
        }
    }

    /// A moderately hostile network: ~9% of frames faulted.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.03,
            truncate: 0.02,
            disconnect: 0.02,
            delay: 0.02,
            delay_range: (Duration::from_millis(1), Duration::from_millis(5)),
        }
    }
}

/// Injected-fault tallies (one per fault class), for deterministic
/// assertions in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Frames swallowed.
    pub dropped: u64,
    /// Frames delivered truncated.
    pub truncated: u64,
    /// Connections torn down.
    pub disconnected: u64,
    /// Frames delivered late.
    pub delayed: u64,
}

/// A fault-injecting [`Connection`] decorator. See [`FaultPlan`].
pub struct FaultyConn {
    inner: Arc<dyn Connection>,
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    dropped: AtomicU64,
    truncated: AtomicU64,
    disconnected: AtomicU64,
    delayed: AtomicU64,
}

impl std::fmt::Debug for FaultyConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultyConn(seed={})", self.plan.seed)
    }
}

impl FaultyConn {
    /// Wraps `inner` with the fault schedule described by `plan`.
    pub fn new(inner: Arc<dyn Connection>, plan: FaultPlan) -> FaultyConn {
        FaultyConn {
            rng: Mutex::new(SplitMix64::new(plan.seed)),
            inner,
            plan,
            dropped: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            disconnected: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Snapshot of injected-fault tallies.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
        }
    }
}

enum FaultRoll {
    Deliver,
    Drop,
    Truncate,
    Disconnect,
    Delay(Duration),
}

impl FaultyConn {
    fn roll(&self) -> FaultRoll {
        let mut rng = self.rng.lock();
        let x = rng.next_f64();
        let p = &self.plan;
        if x < p.drop {
            FaultRoll::Drop
        } else if x < p.drop + p.truncate {
            FaultRoll::Truncate
        } else if x < p.drop + p.truncate + p.disconnect {
            FaultRoll::Disconnect
        } else if x < p.drop + p.truncate + p.disconnect + p.delay {
            let (lo, hi) = p.delay_range;
            let d = if hi > lo {
                Duration::from_nanos(
                    rng.range_f64(lo.as_nanos() as f64, hi.as_nanos() as f64) as u64
                )
            } else {
                lo
            };
            FaultRoll::Delay(d)
        } else {
            FaultRoll::Deliver
        }
    }
}

impl Connection for FaultyConn {
    /// Sends pass through untouched: all faults are injected on the
    /// receive path, which keeps the schedule a function of the frames
    /// actually delivered (a dropped *reply* and a dropped *request* look
    /// identical to the requester anyway — no bytes before the deadline).
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        self.inner.send_frame(frame)
    }

    fn recv_frame(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            let mut frame = self.inner.recv_frame()?;
            match self.roll() {
                FaultRoll::Deliver => return Ok(frame),
                FaultRoll::Drop => {
                    // Swallow and keep receiving: the caller sees silence
                    // until its deadline, exactly like a lossy link.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                FaultRoll::Truncate => {
                    self.truncated.fetch_add(1, Ordering::Relaxed);
                    if frame.len() > HEADER_LEN {
                        // Keep the header (so the declared size survives)
                        // but lose half the body — a classic short read.
                        frame.truncate(HEADER_LEN + (frame.len() - HEADER_LEN) / 2);
                    }
                    return Ok(frame);
                }
                FaultRoll::Disconnect => {
                    self.disconnected.fetch_add(1, Ordering::Relaxed);
                    self.inner.close();
                    return Err(TransportError::Closed);
                }
                FaultRoll::Delay(d) => {
                    self.delayed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(d);
                    return Ok(frame);
                }
            }
        }
    }

    fn set_deadline(&self, recv: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_deadline(recv)
    }

    fn close(&self) {
        self.inner.close();
    }
}

// ---------------------------------------------------------------------
// Reconnection / retry layer
// ---------------------------------------------------------------------

/// Builds (or rebuilds) the underlying connection on demand.
pub type ConnFactory =
    dyn Fn() -> Result<Arc<dyn Connection>, TransportError> + Send + Sync + 'static;

struct LinkObs {
    obs: Arc<Observer>,
    entity: u32,
    retries: CounterId,
    reconnects: CounterId,
    deadline_misses: CounterId,
    backoff_ns: HistId,
}

struct LinkState {
    conn: Option<Arc<dyn Connection>>,
    backoff: Backoff,
    /// Successful factory calls so far; the first is the initial connect,
    /// every later one is a reconnect.
    established: u64,
}

/// A self-healing [`Connection`]: connects lazily through its factory,
/// retries failed sends/connects under the [`FaultPolicy`] (bounded
/// attempts, decorrelated-jitter backoff), and drops the underlying
/// connection on *any* recv failure so stale replies die with it.
///
/// Intended for request/reply use from one thread at a time (the
/// Compadres client pipeline is synchronous); concurrent senders
/// serialise on an internal lock, including backoff sleeps.
pub struct ReconnectingConn {
    factory: Box<ConnFactory>,
    policy: FaultPolicy,
    state: Mutex<LinkState>,
    obs: Mutex<Option<LinkObs>>,
    retries: AtomicU64,
    reconnects: AtomicU64,
    deadline_misses: AtomicU64,
}

impl std::fmt::Debug for ReconnectingConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReconnectingConn")
    }
}

impl ReconnectingConn {
    /// Creates the layer; no connection is attempted until first use.
    /// `seed` drives backoff jitter (determinism under test).
    pub fn new(
        policy: FaultPolicy,
        seed: u64,
        factory: impl Fn() -> Result<Arc<dyn Connection>, TransportError> + Send + Sync + 'static,
    ) -> ReconnectingConn {
        ReconnectingConn {
            state: Mutex::new(LinkState {
                conn: None,
                backoff: Backoff::new(&policy, seed),
                established: 0,
            }),
            factory: Box::new(factory),
            policy,
            obs: Mutex::new(None),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
        }
    }

    /// Wires fault metrics into `obs`: counters `remote_retries_total`,
    /// `remote_reconnects_total`, `remote_deadline_misses_total`, the
    /// `remote_retry_backoff_ns` histogram, and flight-recorder events
    /// under the entity `remote:{name}`.
    pub fn set_observer(&self, obs: &Arc<Observer>, name: &str) {
        *self.obs.lock() = Some(LinkObs {
            obs: Arc::clone(obs),
            entity: obs.register_entity(&format!("remote:{name}")),
            retries: obs.counter("remote_retries_total"),
            reconnects: obs.counter("remote_reconnects_total"),
            deadline_misses: obs.counter("remote_deadline_misses_total"),
            backoff_ns: obs.histogram("remote_retry_backoff_ns"),
        });
    }

    /// Failed attempts that were retried.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Connections re-established after the initial one.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Recv deadlines missed.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    fn note_retry(&self, st: &mut LinkState) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        let delay = st.backoff.next_delay();
        if let Some(o) = &*self.obs.lock() {
            o.obs.inc(o.retries);
            o.obs.observe(o.backoff_ns, delay.as_nanos() as u64);
            o.obs
                .record(EventKind::RemoteRetry, o.entity, delay.as_nanos() as u64);
        }
        std::thread::sleep(delay);
    }

    fn current_or_connect(
        &self,
        st: &mut LinkState,
    ) -> Result<Arc<dyn Connection>, TransportError> {
        if let Some(c) = &st.conn {
            return Ok(Arc::clone(c));
        }
        let conn = (self.factory)()?;
        conn.set_deadline(Some(self.policy.recv_timeout))?;
        st.established += 1;
        if st.established > 1 {
            let n = self.reconnects.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(o) = &*self.obs.lock() {
                o.obs.inc(o.reconnects);
                o.obs.record(EventKind::RemoteReconnect, o.entity, n);
            }
        }
        st.conn = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// Drops the current connection (if it is still `conn`), so the next
    /// operation reconnects.
    fn poison(&self, conn: &Arc<dyn Connection>) {
        let mut st = self.state.lock();
        if let Some(cur) = &st.conn {
            if Arc::ptr_eq(cur, conn) {
                cur.close();
                st.conn = None;
            }
        }
    }
}

impl Connection for ReconnectingConn {
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut st = self.state.lock();
        let mut last = TransportError::Closed;
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.note_retry(&mut st);
            }
            let conn = match self.current_or_connect(&mut st) {
                Ok(c) => c,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            match conn.send_frame(frame) {
                Ok(()) => {
                    st.backoff.reset();
                    return Ok(());
                }
                Err(e) => {
                    // Broken pipe (or send deadline): reconnect-and-retry.
                    conn.close();
                    st.conn = None;
                    last = e;
                }
            }
        }
        Err(last)
    }

    fn recv_frame(&self) -> Result<Vec<u8>, TransportError> {
        // Clone out of the lock so a blocking recv doesn't hold it.
        let conn = self.state.lock().conn.clone();
        let Some(conn) = conn else {
            return Err(TransportError::Closed);
        };
        match conn.recv_frame() {
            Ok(f) => Ok(f),
            Err(e) => {
                if matches!(e, TransportError::Deadline) {
                    self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &*self.obs.lock() {
                        o.obs.inc(o.deadline_misses);
                        o.obs.record(
                            EventKind::RemoteDeadlineMiss,
                            o.entity,
                            self.policy.recv_timeout.as_nanos() as u64,
                        );
                    }
                }
                // Any recv failure poisons the connection: a late reply
                // surfacing on a kept connection would be matched against
                // the wrong request.
                self.poison(&conn);
                Err(e)
            }
        }
    }

    fn set_deadline(&self, recv: Option<Duration>) -> Result<(), TransportError> {
        if let Some(c) = &self.state.lock().conn {
            c.set_deadline(recv)?;
        }
        Ok(())
    }

    fn close(&self) {
        let mut st = self.state.lock();
        if let Some(c) = st.conn.take() {
            c.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    fn frame_of(n: u8) -> Vec<u8> {
        crate::giop::RequestMessage {
            request_id: u32::from(n),
            response_expected: true,
            object_key: b"k".to_vec(),
            operation: "op".to_string(),
            body: vec![n; 64],
            service_context: Vec::new(),
        }
        .encode(crate::cdr::Endian::Big)
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = |seed: u64| {
            let (a, b) = loopback_pair();
            let faulty = FaultyConn::new(Arc::new(b), FaultPlan::hostile(seed));
            faulty
                .set_deadline(Some(Duration::from_millis(10)))
                .unwrap();
            for i in 0..200u8 {
                a.send_frame(&frame_of(i)).unwrap();
            }
            let mut delivered = 0u64;
            while faulty.recv_frame().is_ok() {
                delivered += 1;
            }
            (delivered, faulty.injected())
        };
        let (d1, c1) = run(0xC0FFEE);
        let (d2, c2) = run(0xC0FFEE);
        assert_eq!((d1, c1), (d2, c2), "same seed, same schedule");
        assert!(
            c1.dropped + c1.truncated + c1.disconnected + c1.delayed > 0,
            "hostile plan injected nothing over 200 frames: {c1:?}"
        );
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (a, b) = loopback_pair();
        let faulty = FaultyConn::new(Arc::new(b), FaultPlan::quiet(1));
        for i in 0..50u8 {
            a.send_frame(&frame_of(i)).unwrap();
            assert_eq!(faulty.recv_frame().unwrap(), frame_of(i));
        }
        assert_eq!(faulty.injected(), FaultCounts::default());
    }

    #[test]
    fn reconnecting_conn_survives_peer_disconnects() {
        // Factory hands out fresh loopback pairs; the "server" side echoes
        // one frame then hangs up, so every second send needs a reconnect.
        let policy = FaultPolicy::tight();
        let conn = ReconnectingConn::new(policy, 7, move || {
            let (client, server) = loopback_pair();
            std::thread::spawn(move || {
                if let Ok(f) = server.recv_frame() {
                    let _ = server.send_frame(&f);
                }
                server.close();
            });
            Ok(Arc::new(client) as Arc<dyn Connection>)
        });
        for i in 0..5u8 {
            conn.send_frame(&frame_of(i)).unwrap();
            assert_eq!(conn.recv_frame().unwrap(), frame_of(i));
            // Second recv on the same link hits the hangup and poisons it.
            assert!(conn.recv_frame().is_err());
        }
        assert_eq!(conn.reconnects(), 4, "one reconnect per follow-up send");
    }

    #[test]
    fn send_retries_are_bounded() {
        let policy = FaultPolicy {
            max_retries: 3,
            ..FaultPolicy::tight()
        };
        let attempts = Arc::new(AtomicU64::new(0));
        let attempts2 = Arc::clone(&attempts);
        let conn = ReconnectingConn::new(policy, 9, move || {
            attempts2.fetch_add(1, Ordering::Relaxed);
            Err(TransportError::Closed)
        });
        assert!(conn.send_frame(&frame_of(0)).is_err());
        assert_eq!(attempts.load(Ordering::Relaxed), 4, "1 try + 3 retries");
        assert_eq!(conn.retries(), 3);
    }
}
