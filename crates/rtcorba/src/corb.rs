//! The Compadres ORB — RT-CORBA assembled from Compadres components
//! (paper §3.2, Fig. 10).
//!
//! Client side, three memory levels: an `Orb` component in immortal
//! memory, a `Transport` component in a level-1 scope, and a
//! `MessageProcessing` component in a level-2 scope that marshals the
//! request, performs the wire round trip, demarshals the reply and is
//! destroyed afterwards. Server side, four levels: `Orb` (immortal) →
//! `Poa` (POA/Acceptor, level 1) → `Transport` (level 2) →
//! `RequestProcessing` (level 3, created per request and destroyed after
//! the reply is sent).
//!
//! (The paper counts immortal memory as "level 1"; we count scoped levels
//! from 1 under immortal — the structure is identical.)

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use compadres_core::{App, AppBuilder, ChildHandle, HandlerCtx, Priority};
use rtobs::{span, CounterId, EventKind, HistId, SpanCtx};
use rtplatform::bufchain::{FrameBuf, SegPool, DEFAULT_SEG_SIZE};
use rtplatform::fault::FaultPolicy;
use rtplatform::sync::Mutex;

use crate::cdr::Endian;
use crate::giop::{self, MessageView, ReplyStatus};
use crate::reactor::{FrameFn, ReactorConfig, ReactorServer};
use crate::service::ObjectRegistry;
use crate::transport::{
    loopback_pair, Connection, LoopbackConn, TcpAcceptor, TcpConn, TransportError,
};
use crate::{InvokeOptions, OrbError};

/// Completion slot a client invocation waits on (filled synchronously,
/// since every ORB port is configured `Min = Max = 0`).
type ReplyCell = Mutex<Option<Result<Vec<u8>, OrbError>>>;

/// The message that travels Orb → Transport → MessageProcessing on the
/// client side.
#[derive(Default, Clone)]
struct InvokeMsg {
    request_id: u32,
    object_key: Vec<u8>,
    operation: String,
    payload: Vec<u8>,
    oneway: bool,
    reply_to: Option<Arc<ReplyCell>>,
}

/// The message that travels Poa → Transport → RequestProcessing on the
/// server side. The frame is a segment chain, so the relay hops'
/// `msg.clone()` copies component state but only bumps segment
/// refcounts — the frame bytes are never duplicated down the pipeline.
#[derive(Default, Clone)]
struct WireMsg {
    frame: FrameBuf,
    conn: Option<Arc<dyn Connection>>,
}

/// Segments in each ORB's marshal pool; exhaustion falls back to plain
/// heap segments rather than blocking (see [`rtplatform::bufchain`]).
const POOL_SEGS: usize = 16;

const CLIENT_CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>Orb</ComponentName>
    <Port><PortName>ToTransport</PortName><PortType>Out</PortType><MessageType>InvokeMsg</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Transport</ComponentName>
    <Port><PortName>FromOrb</PortName><PortType>In</PortType><MessageType>InvokeMsg</MessageType></Port>
    <Port><PortName>ToProcessing</PortName><PortType>Out</PortType><MessageType>InvokeMsg</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>MessageProcessing</ComponentName>
    <Port><PortName>FromTransport</PortName><PortType>In</PortType><MessageType>InvokeMsg</MessageType></Port>
  </Component>
</Components>"#;

const CLIENT_CCL: &str = r#"
<Application>
  <ApplicationName>CompadresOrbClient</ApplicationName>
  <Component>
    <InstanceName>TheOrb</InstanceName>
    <ClassName>Orb</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port><PortName>ToTransport</PortName>
        <Link><PortType>Internal</PortType><ToComponent>ClientTransport</ToComponent><ToPort>FromOrb</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>ClientTransport</InstanceName>
      <ClassName>Transport</ClassName>
      <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port><PortName>FromOrb</PortName>
          <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
        </Port>
        <Port><PortName>ToProcessing</PortName>
          <Link><PortType>Internal</PortType><ToComponent>ClientProcessing</ToComponent><ToPort>FromTransport</ToPort></Link>
        </Port>
      </Connection>
      <Component>
        <InstanceName>ClientProcessing</InstanceName>
        <ClassName>MessageProcessing</ClassName>
        <ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>
        <Connection>
          <Port><PortName>FromTransport</PortName>
            <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
          </Port>
        </Connection>
      </Component>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>4000000</ImmortalSize>
    <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>2</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
  </RTSJAttributes>
</Application>"#;

const SERVER_CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>ServerOrb</ComponentName>
    <Port><PortName>ToPoa</PortName><PortType>Out</PortType><MessageType>WireMsg</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Poa</ComponentName>
    <Port><PortName>Incoming</PortName><PortType>In</PortType><MessageType>WireMsg</MessageType></Port>
    <Port><PortName>ToTransport</PortName><PortType>Out</PortType><MessageType>WireMsg</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>STransport</ComponentName>
    <Port><PortName>FromPoa</PortName><PortType>In</PortType><MessageType>WireMsg</MessageType></Port>
    <Port><PortName>ToProcessing</PortName><PortType>Out</PortType><MessageType>WireMsg</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>RequestProcessing</ComponentName>
    <Port><PortName>FromTransport</PortName><PortType>In</PortType><MessageType>WireMsg</MessageType></Port>
  </Component>
</Components>"#;

const SERVER_CCL: &str = r#"
<Application>
  <ApplicationName>CompadresOrbServer</ApplicationName>
  <Component>
    <InstanceName>TheOrb</InstanceName>
    <ClassName>ServerOrb</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port><PortName>ToPoa</PortName>
        <Link><PortType>Internal</PortType><ToComponent>ThePoa</ToComponent><ToPort>Incoming</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>ThePoa</InstanceName>
      <ClassName>Poa</ClassName>
      <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port><PortName>Incoming</PortName>
          <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
        </Port>
        <Port><PortName>ToTransport</PortName>
          <Link><PortType>Internal</PortType><ToComponent>ServerTransport</ToComponent><ToPort>FromPoa</ToPort></Link>
        </Port>
      </Connection>
      <Component>
        <InstanceName>ServerTransport</InstanceName>
        <ClassName>STransport</ClassName>
        <ComponentType>Scoped</ComponentType><ScopeLevel>2</ScopeLevel>
        <Connection>
          <Port><PortName>FromPoa</PortName>
            <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
          </Port>
          <Port><PortName>ToProcessing</PortName>
            <Link><PortType>Internal</PortType><ToComponent>ServerProcessing</ToComponent><ToPort>FromTransport</ToPort></Link>
          </Port>
        </Connection>
        <Component>
          <InstanceName>ServerProcessing</InstanceName>
          <ClassName>RequestProcessing</ClassName>
          <ComponentType>Scoped</ComponentType><ScopeLevel>3</ScopeLevel>
          <Connection>
            <Port><PortName>FromTransport</PortName>
              <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
            </Port>
          </Connection>
        </Component>
      </Component>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>4000000</ImmortalSize>
    <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>2</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>3</ScopeLevel><ScopeSize>131072</ScopeSize><PoolSize>4</PoolSize></ScopedPool>
  </RTSJAttributes>
</Application>"#;

/// The component-assembled client ORB.
pub struct CompadresClient {
    app: App,
    /// Keeps the Transport component alive across requests, as the paper's
    /// client does ("the previously created Transport component").
    _transport_handle: ChildHandle,
    next_id: AtomicU32,
    /// Per-operation observability ids (flight-recorder entity +
    /// round-trip histogram), interned on first use. Cold lock: hit once
    /// per distinct operation name.
    op_ids: Mutex<HashMap<String, (u32, HistId)>>,
    /// Invocations that failed on a missed transport deadline.
    deadline_misses: CounterId,
}

impl std::fmt::Debug for CompadresClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompadresClient")
    }
}

impl CompadresClient {
    /// Builds a client ORB over an established connection.
    ///
    /// # Errors
    ///
    /// Composition or memory-architecture failures.
    pub fn from_conn(conn: Arc<dyn Connection>) -> Result<CompadresClient, OrbError> {
        let endian = Endian::native();
        let pool = SegPool::new(POOL_SEGS, DEFAULT_SEG_SIZE);
        let app = AppBuilder::from_xml(CLIENT_CDL, CLIENT_CCL)?
            .bind_message_type::<InvokeMsg>("InvokeMsg")
            .register_handler("Transport", "FromOrb", || {
                // The transport relays the invocation to the processing
                // component (copying into the next pool, as the shared-
                // object pattern requires).
                |msg: &mut InvokeMsg, ctx: &mut HandlerCtx<'_>| {
                    let mut fwd = ctx.get_message::<InvokeMsg>("ToProcessing")?;
                    *fwd = msg.clone();
                    ctx.send("ToProcessing", fwd, ctx.priority())
                }
            })
            .register_handler("MessageProcessing", "FromTransport", move || {
                let conn = Arc::clone(&conn);
                let pool = pool.clone();
                move |msg: &mut InvokeMsg, ctx: &mut HandlerCtx<'_>| {
                    let result = client_round_trip(&conn, endian, &pool, msg, ctx);
                    if let Some(cell) = msg.reply_to.take() {
                        *cell.lock() = Some(result);
                    }
                    Ok(())
                }
            })
            .build()?;
        app.start()?;
        let transport_handle = app.connect("ClientTransport")?;
        let deadline_misses = app.observer().counter("remote_deadline_misses_total");
        Ok(CompadresClient {
            app,
            _transport_handle: transport_handle,
            next_id: AtomicU32::new(1),
            op_ids: Mutex::new(HashMap::new()),
            deadline_misses,
        })
    }

    /// Builds a client ORB over an established connection, arming the
    /// connection's recv deadline from `policy` so an invocation whose
    /// reply never arrives fails with
    /// [`TransportError::Deadline`] instead of wedging
    /// its real-time thread.
    ///
    /// # Errors
    ///
    /// Socket-option, composition or memory-architecture failures.
    pub fn from_conn_with(
        conn: Arc<dyn Connection>,
        policy: &FaultPolicy,
    ) -> Result<CompadresClient, OrbError> {
        conn.set_deadline(Some(policy.recv_timeout))?;
        CompadresClient::from_conn(conn)
    }

    pub(crate) fn tcp(addr: SocketAddr) -> Result<CompadresClient, OrbError> {
        let conn = TcpConn::connect(addr)?;
        CompadresClient::from_conn(Arc::new(conn))
    }

    pub(crate) fn tcp_with(
        addr: SocketAddr,
        policy: &FaultPolicy,
    ) -> Result<CompadresClient, OrbError> {
        let conn = TcpConn::connect_with(addr, policy)?;
        CompadresClient::from_conn_with(Arc::new(conn), policy)
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Connection, composition or memory failures.
    #[deprecated(note = "use rtcorba::ClientBuilder::new().connect(addr)")]
    pub fn connect_tcp(addr: SocketAddr) -> Result<CompadresClient, OrbError> {
        CompadresClient::tcp(addr)
    }

    /// Connects over TCP under a [`FaultPolicy`]: connect/send/recv
    /// deadlines from the policy bound every later invocation.
    ///
    /// # Errors
    ///
    /// Connection, composition or memory failures.
    #[deprecated(note = "use rtcorba::ClientBuilder::new().fault_policy(policy).connect(addr)")]
    pub fn connect_tcp_with(
        addr: SocketAddr,
        policy: &FaultPolicy,
    ) -> Result<CompadresClient, OrbError> {
        CompadresClient::tcp_with(addr, policy)
    }

    /// Connects to the ORB endpoint named by a stringified `corbaloc`
    /// object reference; returns the client plus the reference's object
    /// key (the CORBA `string_to_object` flow).
    ///
    /// # Errors
    ///
    /// Reference parse/resolution failures, then the same as
    /// [`CompadresClient::connect_tcp`].
    pub fn connect_ref(reference: &str) -> Result<(CompadresClient, Vec<u8>), OrbError> {
        let obj = crate::ior::ObjectRef::parse(reference)?;
        let addr = obj.socket_addr()?;
        Ok((CompadresClient::tcp(addr)?, obj.object_key))
    }

    /// The underlying component application (for instrumentation).
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Performs an invocation through the component pipeline — Orb →
    /// Transport → MessageProcessing → wire — shaped by `opts`: two-way
    /// or oneway, with or without a deadline budget. The unified entry
    /// point behind [`invoke`](CompadresClient::invoke),
    /// [`invoke_oneway`](CompadresClient::invoke_oneway) and
    /// [`invoke_with_budget`](CompadresClient::invoke_with_budget).
    ///
    /// A oneway invocation returns an empty body.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a servant exception.
    pub fn invoke_with(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
        opts: &InvokeOptions,
    ) -> Result<Vec<u8>, OrbError> {
        self.invoke_inner(object_key, operation, args, opts.oneway, opts.budget)
    }

    /// Performs a synchronous two-way invocation through the component
    /// pipeline: Orb → Transport → MessageProcessing → wire → back.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a servant exception.
    pub fn invoke(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, OrbError> {
        self.invoke_with(object_key, operation, args, &InvokeOptions::twoway())
    }

    /// Like [`invoke`](CompadresClient::invoke), but under a deadline
    /// budget: the invocation becomes the root of a trace whose budget
    /// travels with the request — through the client pipeline, across
    /// the wire in the GIOP [`crate::giop::TRACE_CONTEXT_SLOT`], and
    /// through the server pipeline — so every hop journals its remaining
    /// budget and an overrun is attributable to the hop that spent it
    /// (DESIGN.md §5g). `None` traces without a deadline.
    ///
    /// # Errors
    ///
    /// Same as [`invoke`](CompadresClient::invoke); a blown budget is
    /// *recorded*, not turned into an error — deadline policy stays with
    /// the caller.
    pub fn invoke_with_budget(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
        budget: Option<std::time::Duration>,
    ) -> Result<Vec<u8>, OrbError> {
        self.invoke_with(
            object_key,
            operation,
            args,
            &InvokeOptions {
                oneway: false,
                budget,
            },
        )
    }

    /// Sends a **oneway** invocation through the component pipeline: the
    /// request is marshalled and put on the wire, no reply is waited for.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn invoke_oneway(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
    ) -> Result<(), OrbError> {
        self.invoke_with(object_key, operation, args, &InvokeOptions::oneway())
            .map(|_| ())
    }

    /// Interns (once per distinct operation) the flight-recorder entity
    /// and round-trip histogram for `operation`.
    fn op_obs(&self, operation: &str) -> (u32, HistId) {
        let mut map = self.op_ids.lock();
        if let Some(&ids) = map.get(operation) {
            return ids;
        }
        let obs = self.app.observer();
        let safe: String = operation
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let ids = (
            obs.register_entity(&format!("giop:{operation}")),
            obs.histogram(&format!("rtcorba_roundtrip_{safe}_ns")),
        );
        map.insert(operation.to_string(), ids);
        ids
    }

    fn invoke_inner(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
        oneway: bool,
        budget: Option<std::time::Duration>,
    ) -> Result<Vec<u8>, OrbError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (entity, hist) = self.op_obs(operation);
        let obs = Arc::clone(self.app.observer());
        // The invocation is the root of a trace; every pipeline hop below
        // becomes a child span and inherits the deadline budget.
        let root = if obs.tracing() {
            obs.new_trace(budget.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)))
        } else {
            SpanCtx::NONE
        };
        if root.is_active() {
            obs.record_span(EventKind::SpanEnqueue, entity, root.deadline_ns, root);
        }
        let t0 = obs.now_ns();
        obs.record_at(EventKind::GiopRequest, entity, u64::from(request_id), t0);
        let cell: Arc<ReplyCell> = Arc::new(Mutex::new(None));
        let cell2 = Arc::clone(&cell);
        let key = object_key.to_vec();
        let op = operation.to_string();
        let payload = args.to_vec();
        span::with_span(root, || {
            self.app
                .with_component("TheOrb", move |ctx| -> Result<(), OrbError> {
                    let mut msg = ctx.get_message::<InvokeMsg>("ToTransport")?;
                    msg.request_id = request_id;
                    msg.object_key = key;
                    msg.operation = op;
                    msg.payload = payload;
                    msg.oneway = oneway;
                    msg.reply_to = Some(cell2);
                    ctx.send("ToTransport", msg, Priority::new(10))?;
                    Ok(())
                })
        })??;
        // Every port is synchronous, so the cell is filled by now.
        let result = cell.lock().take();
        let rtt = obs.now_ns().saturating_sub(t0);
        obs.record(EventKind::GiopReply, entity, rtt);
        obs.observe(hist, rtt);
        if root.is_active() {
            let left = obs.budget_remaining(root);
            obs.record_span(EventKind::SpanEnd, entity, left as u64, root);
        }
        if let Some(Err(OrbError::Transport(TransportError::Deadline))) = &result {
            obs.inc(self.deadline_misses);
            obs.record(EventKind::RemoteDeadlineMiss, entity, rtt);
        }
        result.unwrap_or(Err(OrbError::UnexpectedMessage))
    }
}

fn client_round_trip(
    conn: &Arc<dyn Connection>,
    endian: Endian,
    pool: &SegPool,
    msg: &InvokeMsg,
    ctx: &mut HandlerCtx<'_>,
) -> Result<Vec<u8>, OrbError> {
    // This handler runs inside the pipeline hop's span: ship it across
    // the wire with whatever budget is left at this point.
    let mut service_context = Vec::new();
    let cur = span::current();
    if cur.is_active() {
        let obs = ctx.observer();
        let budget = match obs.budget_remaining(cur) {
            i64::MIN => 0,
            left if left <= 0 => 1, // overrun: a 1 ns stub keeps the flag
            left => left as u64,
        };
        service_context.push((
            giop::TRACE_CONTEXT_SLOT,
            giop::encode_trace_slot(cur.trace_id, cur.span_id, budget),
        ));
        let entity = obs.register_entity("giop:wire");
        obs.record_span(EventKind::SpanRemoteSend, entity, budget, cur);
    }
    // Marshal from the borrowed invocation fields straight into pool-
    // leased segments and scatter them to the socket with vectored I/O;
    // the segments recycle when the frame drops at the end of the
    // round trip.
    let frame = giop::encode_request_chain(
        msg.request_id,
        !msg.oneway,
        &msg.object_key,
        &msg.operation,
        &msg.payload,
        &service_context,
        endian,
        pool,
    );
    conn.send_chain(&frame)?;
    if msg.oneway {
        return Ok(Vec::new());
    }
    let reply_frame = conn.recv_frame()?;
    // Decode in place over the received buffer; the only copy taken is
    // the reply body handed to the caller.
    let parts = [&reply_frame[..]];
    let reply = giop::decode_view(&parts)?;
    if cur.is_active() {
        if let MessageView::Reply(r) = &reply {
            if let Some((_, _, echoed)) = r.trace_context() {
                let obs = ctx.observer();
                let entity = obs.register_entity("giop:wire");
                obs.record_span(EventKind::SpanRemoteRecv, entity, echoed, cur);
            }
        }
    }
    match reply {
        MessageView::Reply(r) if r.request_id == msg.request_id => match r.status {
            ReplyStatus::NoException => Ok(r.body.into_owned()),
            ReplyStatus::SystemException => Err(OrbError::Exception(
                String::from_utf8_lossy(&r.body).into_owned(),
            )),
            ReplyStatus::ObjectNotExist => Err(OrbError::ObjectNotExist),
        },
        MessageView::Reply(r) => Err(OrbError::RequestMismatch {
            expected: msg.request_id,
            got: r.request_id,
        }),
        _ => Err(OrbError::UnexpectedMessage),
    }
}

/// The component-assembled server ORB.
pub struct CompadresServer {
    app: Arc<App>,
    addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    reactor: Option<ReactorServer>,
    _keepalive: Vec<ChildHandle>,
}

impl std::fmt::Debug for CompadresServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompadresServer({:?})", self.addr)
    }
}

impl CompadresServer {
    fn build_app(registry: Arc<ObjectRegistry>) -> Result<App, OrbError> {
        let endian = Endian::native();
        let pool = SegPool::new(POOL_SEGS, DEFAULT_SEG_SIZE);
        let app = AppBuilder::from_xml(SERVER_CDL, SERVER_CCL)?
            .bind_message_type::<WireMsg>("WireMsg")
            .register_handler("Poa", "Incoming", || {
                |msg: &mut WireMsg, ctx: &mut HandlerCtx<'_>| {
                    let mut fwd = ctx.get_message::<WireMsg>("ToTransport")?;
                    *fwd = msg.clone();
                    ctx.send("ToTransport", fwd, ctx.priority())
                }
            })
            .register_handler("STransport", "FromPoa", || {
                |msg: &mut WireMsg, ctx: &mut HandlerCtx<'_>| {
                    let mut fwd = ctx.get_message::<WireMsg>("ToProcessing")?;
                    *fwd = msg.clone();
                    ctx.send("ToProcessing", fwd, ctx.priority())
                }
            })
            .register_handler("RequestProcessing", "FromTransport", move || {
                let registry = Arc::clone(&registry);
                let pool = pool.clone();
                move |msg: &mut WireMsg, _ctx: &mut HandlerCtx<'_>| {
                    let Some(conn) = msg.conn.take() else {
                        return Ok(());
                    };
                    // Demarshal in place over the frame's segments (the
                    // same bytes the socket read landed in) and marshal
                    // the reply into pool-leased segments — no staging
                    // copy on either side of the dispatch.
                    let parts = msg.frame.slices();
                    match giop::decode_view(&parts) {
                        Ok(MessageView::Request(req)) => {
                            let reply = registry.dispatch_view(&req);
                            if req.response_expected {
                                let _ = conn.send_chain(&reply.encode_chain(endian, &pool));
                            }
                        }
                        Ok(_) => {}
                        Err(_) => {
                            // Undecodable frame: answer MessageError so the
                            // peer fails fast instead of waiting out its
                            // reply deadline.
                            let _ = conn.send_frame(&giop::encode_error(endian));
                        }
                    }
                    Ok(())
                }
            })
            .build()?;
        app.start()?;
        Ok(app)
    }

    /// Spawns a TCP server on the event-driven reactor transport.
    ///
    /// # Errors
    ///
    /// Bind, composition or memory failures.
    #[deprecated(note = "use rtcorba::ServerBuilder::new(registry).serve()")]
    pub fn spawn_tcp(registry: Arc<ObjectRegistry>) -> Result<CompadresServer, OrbError> {
        Self::serve_reactor(registry, ReactorConfig::default())
    }

    /// Spawns a TCP server with explicit reactor sizing.
    ///
    /// # Errors
    ///
    /// Bind, composition or memory failures.
    #[deprecated(note = "use rtcorba::ServerBuilder::new(registry).reactor(cfg).serve()")]
    pub fn spawn_tcp_reactor(
        registry: Arc<ObjectRegistry>,
        cfg: ReactorConfig,
    ) -> Result<CompadresServer, OrbError> {
        Self::serve_reactor(registry, cfg)
    }

    /// The event-driven reactor transport (DESIGN.md §5h): one poll-loop
    /// thread multiplexes every connection and a small worker pool
    /// injects complete frames into the POA component pipeline — the
    /// same pipeline, spans and fault replies as the
    /// thread-per-connection path, minus the thread-per-client wall.
    pub(crate) fn serve_reactor(
        registry: Arc<ObjectRegistry>,
        cfg: ReactorConfig,
    ) -> Result<CompadresServer, OrbError> {
        let app = Arc::new(Self::build_app(registry)?);
        let keepalive = vec![app.connect("ThePoa")?, app.connect("ServerTransport")?];
        let app2 = Arc::clone(&app);
        let handler: FrameFn = Arc::new(move |conn, frame| {
            // An injection failure (app shutting down) ends this request;
            // the reactor keeps the other connections alive.
            let _ = inject_frame(&app2, conn, frame);
        });
        let reactor = ReactorServer::spawn(handler, Arc::clone(app.observer()), cfg)?;
        let addr = reactor.addr();
        Ok(CompadresServer {
            app,
            addr: Some(addr),
            shutdown: Arc::new(AtomicBool::new(false)),
            accept_handle: None,
            reactor: Some(reactor),
            _keepalive: keepalive,
        })
    }

    /// Spawns a TCP server with the paper-faithful acceptor +
    /// per-connection reader threads.
    ///
    /// # Errors
    ///
    /// Bind, composition or memory failures.
    #[deprecated(note = "use rtcorba::ServerBuilder::new(registry).threaded().serve()")]
    pub fn spawn_tcp_threaded(registry: Arc<ObjectRegistry>) -> Result<CompadresServer, OrbError> {
        Self::serve_threaded(registry)
    }

    /// The paper-faithful acceptor + per-connection reader threads (the
    /// pre-reactor I/O model; kept for comparison benchmarks and as the
    /// simplest possible path).
    pub(crate) fn serve_threaded(
        registry: Arc<ObjectRegistry>,
    ) -> Result<CompadresServer, OrbError> {
        let app = Arc::new(Self::build_app(registry)?);
        // Keep the POA/Acceptor and Transport components alive for the
        // server's lifetime, as the paper's server does.
        let keepalive = vec![app.connect("ThePoa")?, app.connect("ServerTransport")?];
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = TcpAcceptor::bind_loopback()?;
        let addr = acceptor.local_addr()?;
        let app2 = Arc::clone(&app);
        let shutdown2 = Arc::clone(&shutdown);
        let accept_handle = std::thread::Builder::new()
            .name("compadres-acceptor".into())
            .spawn(move || {
                while !shutdown2.load(Ordering::SeqCst) {
                    match acceptor.accept() {
                        Ok(conn) => {
                            let app3 = Arc::clone(&app2);
                            let shutdown3 = Arc::clone(&shutdown2);
                            let _ = std::thread::Builder::new()
                                .name("compadres-reader".into())
                                .spawn(move || reader_loop(&app3, Arc::new(conn), &shutdown3));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn acceptor");
        Ok(CompadresServer {
            app,
            addr: Some(addr),
            shutdown,
            accept_handle: Some(accept_handle),
            reactor: None,
            _keepalive: keepalive,
        })
    }

    /// Spawns a server that only serves in-process loopback connections.
    ///
    /// # Errors
    ///
    /// Composition or memory failures.
    pub fn spawn_loopback(registry: Arc<ObjectRegistry>) -> Result<CompadresServer, OrbError> {
        let app = Arc::new(Self::build_app(registry)?);
        let keepalive = vec![app.connect("ThePoa")?, app.connect("ServerTransport")?];
        Ok(CompadresServer {
            app,
            addr: None,
            shutdown: Arc::new(AtomicBool::new(false)),
            accept_handle: None,
            reactor: None,
            _keepalive: keepalive,
        })
    }

    /// The TCP address, when serving TCP.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A stringified `corbaloc` reference for `key` at this server
    /// (the CORBA `object_to_string` flow). `None` when not serving TCP.
    pub fn object_ref(&self, key: &[u8]) -> Option<String> {
        self.addr
            .map(|a| crate::ior::ObjectRef::for_addr(a, key.to_vec()).to_string())
    }

    /// The underlying component application (for instrumentation).
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Creates an in-process connection served by a dedicated reader
    /// thread feeding the POA component.
    pub fn attach_loopback(&self) -> LoopbackConn {
        let (client_end, server_end) = loopback_pair();
        let app = Arc::clone(&self.app);
        let shutdown = Arc::clone(&self.shutdown);
        let _ = std::thread::Builder::new()
            .name("compadres-loopback-reader".into())
            .spawn(move || reader_loop(&app, Arc::new(server_end), &shutdown));
        client_end
    }

    /// Stops accepting and serving.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(reactor) = &self.reactor {
            reactor.shutdown();
        }
        if self.accept_handle.is_some() {
            if let Some(addr) = self.addr {
                // Unblock the threaded acceptor's blocking accept().
                let _ = std::net::TcpStream::connect(addr);
            }
        }
    }
}

impl Drop for CompadresServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

/// Reads frames off a connection and injects them into the POA in-port —
/// the role the acceptor's listening thread plays in the paper's server.
///
/// A request carrying a [`crate::giop::TRACE_CONTEXT_SLOT`] is adopted
/// into the server's journal before injection, so the POA pipeline's
/// spans become children of the client's wire span and the remaining
/// budget keeps counting down on the server's clock.
fn reader_loop(app: &App, conn: Arc<dyn Connection>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        let frame = match conn.recv_frame() {
            Ok(f) => f,
            Err(_) => break,
        };
        if inject_frame(app, &conn, FrameBuf::from_vec(frame)).is_err() {
            break;
        }
    }
}

/// Injects one already-framed GIOP message into the POA in-port. Both
/// server I/O models funnel through here: the per-connection reader
/// threads and the reactor's worker pool.
///
/// A request carrying a [`crate::giop::TRACE_CONTEXT_SLOT`] is adopted
/// into the server's journal before injection, so the POA pipeline's
/// spans become children of the client's wire span and the remaining
/// budget keeps counting down on the server's clock.
fn inject_frame(
    app: &App,
    conn: &Arc<dyn Connection>,
    frame: FrameBuf,
) -> Result<(), compadres_core::CompadresError> {
    let obs = app.observer();
    let span = match giop::peek_trace_parts(&frame.slices()) {
        Some((trace_id, parent, budget)) if obs.tracing() => {
            let entity = obs.register_entity("giop:wire");
            let s = obs.adopt_remote(trace_id, parent, budget);
            obs.record_span(EventKind::SpanRemoteRecv, entity, budget, s);
            s
        }
        _ => SpanCtx::NONE,
    };
    let msg = WireMsg {
        frame,
        conn: Some(Arc::clone(conn)),
    };
    let injected = span::with_span(span, || {
        app.send_to("ThePoa", "Incoming", msg, Priority::new(10))
    });
    if span.is_active() {
        // Close the adopted span once injection (and, on the all-
        // synchronous POA pipeline, processing) completed: its
        // duration brackets the server-side work, so a stitched
        // critical path attributes self-time correctly.
        let entity = obs.register_entity("giop:wire");
        let left = obs.budget_remaining(span);
        obs.record_span(EventKind::SpanEnd, entity, left as u64, span);
    }
    injected
}

/// Convenience: a connected loopback echo pair (server + client).
///
/// # Errors
///
/// Composition or memory failures.
pub fn loopback_echo_pair() -> Result<(CompadresServer, CompadresClient), OrbError> {
    let server = CompadresServer::spawn_loopback(ObjectRegistry::with_echo())?;
    let conn = server.attach_loopback();
    let client = CompadresClient::from_conn(Arc::new(conn))?;
    Ok((server, client))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_echo_roundtrip() {
        let (_server, client) = loopback_echo_pair().unwrap();
        assert_eq!(
            client.invoke(b"echo", "echo", &[1, 2, 3]).unwrap(),
            vec![1, 2, 3]
        );
        for i in 0..50u8 {
            assert_eq!(client.invoke(b"echo", "echo", &[i, i]).unwrap(), vec![i, i]);
        }
    }

    #[test]
    fn giop_round_trips_are_observed() {
        let (_server, client) = loopback_echo_pair().unwrap();
        for i in 0..10u8 {
            client.invoke(b"echo", "echo", &[i]).unwrap();
        }
        let obs = client.app().observer();
        let hist = obs.histogram("rtcorba_roundtrip_echo_ns");
        let snap = obs.hist_snapshot(hist);
        assert_eq!(snap.count, 10, "one observation per invocation");
        assert!(snap.p50 > 0 && snap.max >= snap.p50);
        let events = obs.events();
        let requests = events
            .iter()
            .filter(|e| e.kind == EventKind::GiopRequest)
            .count();
        let replies = events
            .iter()
            .filter(|e| e.kind == EventKind::GiopReply)
            .count();
        assert_eq!(requests, 10);
        assert_eq!(replies, 10);
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::GiopRequest
                    && obs.entity_name(e.subject) == "giop:echo")
        );
        // The same journal carries the in-process port traffic too.
        assert!(events.iter().any(|e| e.kind == EventKind::PortEnqueue));
        assert!(client
            .app()
            .metrics_text()
            .contains("rtcorba_roundtrip_echo_ns_count 10"));
    }

    #[test]
    fn tcp_echo_roundtrip() {
        let server = crate::ServerBuilder::new(ObjectRegistry::with_echo())
            .serve()
            .unwrap();
        let client = crate::ClientBuilder::new()
            .connect(server.addr().unwrap())
            .unwrap();
        let payload = vec![0x5Au8; 1024];
        assert_eq!(client.invoke(b"echo", "echo", &payload).unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn per_request_processing_component_lifecycle() {
        let (server, client) = loopback_echo_pair().unwrap();
        let before = server.app().activations_of("ServerProcessing").unwrap();
        client.invoke(b"echo", "echo", &[1]).unwrap();
        client.invoke(b"echo", "echo", &[2]).unwrap();
        let after = server.app().activations_of("ServerProcessing").unwrap();
        assert_eq!(after - before, 2, "RequestProcessing created per request");
        // The reply reaches the client slightly before the server-side
        // reader thread finishes releasing the request scope; poll.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while server.app().is_active("ServerProcessing").unwrap() {
            assert!(
                std::time::Instant::now() < deadline,
                "destroyed after reply"
            );
            std::thread::yield_now();
        }
        // Transport stays alive (connected).
        assert!(server.app().is_active("ServerTransport").unwrap());
    }

    #[test]
    fn client_processing_component_is_per_request_too() {
        let (_server, client) = loopback_echo_pair().unwrap();
        client.invoke(b"echo", "echo", &[1]).unwrap();
        assert!(!client.app().is_active("ClientProcessing").unwrap());
        assert!(client.app().is_active("ClientTransport").unwrap());
        let before = client.app().activations_of("ClientProcessing").unwrap();
        client.invoke(b"echo", "echo", &[2]).unwrap();
        assert_eq!(
            client.app().activations_of("ClientProcessing").unwrap(),
            before + 1
        );
    }

    #[test]
    fn exceptions_and_unknown_objects() {
        let (_server, client) = loopback_echo_pair().unwrap();
        assert!(matches!(
            client.invoke(b"ghost", "echo", &[]),
            Err(OrbError::ObjectNotExist)
        ));
        assert!(matches!(
            client.invoke(b"echo", "bad-op", &[]),
            Err(OrbError::Exception(_))
        ));
        // The ORB still works afterwards.
        assert_eq!(client.invoke(b"echo", "echo", &[5]).unwrap(), vec![5]);
    }

    #[test]
    fn varied_message_sizes() {
        let (_server, client) = loopback_echo_pair().unwrap();
        for size in [32usize, 64, 128, 256, 512, 1024] {
            let payload = vec![(size % 251) as u8; size];
            assert_eq!(client.invoke(b"echo", "echo", &payload).unwrap(), payload);
        }
    }
}
