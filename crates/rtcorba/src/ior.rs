//! Stringified object references in `corbaloc` form.
//!
//! CORBA clients locate objects through object references; the humane
//! textual form is the `corbaloc` URL. This module implements the subset
//! both ORBs use: `corbaloc::<host>:<port>/<object-key>`, with `%XX`
//! percent-escapes in the key, so servers can hand out references and
//! clients can resolve them without an IOR repository.

use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};

/// A parsed `corbaloc` object reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRef {
    /// Host name or address.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Raw (unescaped) object key.
    pub object_key: Vec<u8>,
}

/// Errors parsing a `corbaloc` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IorError {
    /// The string does not start with `corbaloc::`.
    BadScheme,
    /// Missing or malformed `host:port` part.
    BadAddress(String),
    /// Missing `/<object-key>` part.
    MissingKey,
    /// A `%` escape was malformed.
    BadEscape,
    /// The host could not be resolved to a socket address.
    Unresolvable(String),
}

impl fmt::Display for IorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IorError::BadScheme => write!(f, "object reference must start with corbaloc::"),
            IorError::BadAddress(a) => write!(f, "malformed address {a:?}"),
            IorError::MissingKey => write!(f, "missing /object-key"),
            IorError::BadEscape => write!(f, "malformed % escape in object key"),
            IorError::Unresolvable(h) => write!(f, "cannot resolve host {h:?}"),
        }
    }
}

impl std::error::Error for IorError {}

impl ObjectRef {
    /// Builds a reference from parts.
    pub fn new(host: impl Into<String>, port: u16, object_key: impl Into<Vec<u8>>) -> ObjectRef {
        ObjectRef {
            host: host.into(),
            port,
            object_key: object_key.into(),
        }
    }

    /// Builds a reference for a bound socket address.
    pub fn for_addr(addr: SocketAddr, object_key: impl Into<Vec<u8>>) -> ObjectRef {
        ObjectRef {
            host: addr.ip().to_string(),
            port: addr.port(),
            object_key: object_key.into(),
        }
    }

    /// Parses a `corbaloc::host:port/key` string.
    ///
    /// # Errors
    ///
    /// [`IorError`] variants describing the malformed part.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtcorba::ior::ObjectRef;
    /// let r = ObjectRef::parse("corbaloc::127.0.0.1:2809/echo")?;
    /// assert_eq!(r.port, 2809);
    /// assert_eq!(r.object_key, b"echo");
    /// assert_eq!(r.to_string(), "corbaloc::127.0.0.1:2809/echo");
    /// # Ok::<(), rtcorba::ior::IorError>(())
    /// ```
    pub fn parse(s: &str) -> Result<ObjectRef, IorError> {
        let rest = s.strip_prefix("corbaloc::").ok_or(IorError::BadScheme)?;
        let slash = rest.find('/').ok_or(IorError::MissingKey)?;
        let (addr, key_enc) = rest.split_at(slash);
        let key_enc = &key_enc[1..];
        if key_enc.is_empty() {
            return Err(IorError::MissingKey);
        }
        let colon = addr
            .rfind(':')
            .ok_or_else(|| IorError::BadAddress(addr.to_string()))?;
        let (host, port_str) = addr.split_at(colon);
        let port: u16 = port_str[1..]
            .parse()
            .map_err(|_| IorError::BadAddress(addr.to_string()))?;
        if host.is_empty() {
            return Err(IorError::BadAddress(addr.to_string()));
        }
        Ok(ObjectRef {
            host: host.to_string(),
            port,
            object_key: unescape(key_enc)?,
        })
    }

    /// Resolves the host/port to a connectable socket address.
    ///
    /// # Errors
    ///
    /// [`IorError::Unresolvable`] when DNS/parse resolution fails.
    pub fn socket_addr(&self) -> Result<SocketAddr, IorError> {
        (self.host.as_str(), self.port)
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .ok_or_else(|| IorError::Unresolvable(self.host.clone()))
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corbaloc::{}:{}/{}",
            self.host,
            self.port,
            escape(&self.object_key)
        )
    }
}

fn escape(key: &[u8]) -> String {
    let mut out = String::new();
    for &b in key {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn unescape(s: &str) -> Result<Vec<u8>, IorError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return Err(IorError::BadEscape);
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).map_err(|_| IorError::BadEscape)?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| IorError::BadEscape)?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain_key() {
        let r = ObjectRef::new("rt-host", 2809, b"echo".to_vec());
        let s = r.to_string();
        assert_eq!(s, "corbaloc::rt-host:2809/echo");
        assert_eq!(ObjectRef::parse(&s).unwrap(), r);
    }

    #[test]
    fn roundtrip_binary_key() {
        let r = ObjectRef::new("127.0.0.1", 1, vec![0x00, 0xFF, b'/', b' ', b'A']);
        let s = r.to_string();
        assert_eq!(s, "corbaloc::127.0.0.1:1/%00%FF%2F%20A");
        assert_eq!(ObjectRef::parse(&s).unwrap(), r);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            ObjectRef::parse("iiop://x").unwrap_err(),
            IorError::BadScheme
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::hostport/k").unwrap_err(),
            IorError::BadAddress("hostport".into())
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::h:99").unwrap_err(),
            IorError::MissingKey
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::h:99/").unwrap_err(),
            IorError::MissingKey
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::h:notaport/k").unwrap_err(),
            IorError::BadAddress("h:notaport".into())
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::h:1/%Z9").unwrap_err(),
            IorError::BadEscape
        );
        assert_eq!(
            ObjectRef::parse("corbaloc::h:1/%F").unwrap_err(),
            IorError::BadEscape
        );
    }

    #[test]
    fn socket_addr_resolution() {
        let r = ObjectRef::new("127.0.0.1", 4242, b"x".to_vec());
        let addr = r.socket_addr().unwrap();
        assert_eq!(addr.port(), 4242);
        assert!(addr.ip().is_loopback());
    }

    #[test]
    fn for_addr_builder() {
        let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        let r = ObjectRef::for_addr(addr, b"svc".to_vec());
        assert_eq!(r.to_string(), "corbaloc::127.0.0.1:9000/svc");
    }
}
