//! Unified construction API for both ORBs.
//!
//! The historical entry points — `CompadresServer::spawn_tcp`,
//! `spawn_tcp_reactor`, `spawn_tcp_threaded`, `ZenServer::spawn_tcp`,
//! `ZenClient::connect_tcp`, … — grew one static constructor per
//! (transport × fault-policy × ORB) combination. [`ServerBuilder`] and
//! [`ClientBuilder`] collapse that matrix into one fluent surface with
//! two terminal methods each: `serve()` / `connect()` produce the
//! Compadres (component-assembled) ORB, `serve_zen()` / `connect_zen()`
//! the hand-coded ZenOrb comparator. The old constructors survive as
//! deprecated thin shims over the same internals.
//!
//! ```
//! use rtcorba::{ClientBuilder, ServerBuilder};
//! use rtcorba::service::ObjectRegistry;
//!
//! let server = ServerBuilder::new(ObjectRegistry::with_echo()).serve()?;
//! let client = ClientBuilder::new().connect(server.addr().unwrap())?;
//! assert_eq!(client.invoke(b"echo", "echo", &[1, 2])?, vec![1, 2]);
//! # server.shutdown();
//! # Ok::<(), rtcorba::OrbError>(())
//! ```

use std::net::SocketAddr;
use std::sync::Arc;

use rtobs::Observer;
use rtplatform::fault::FaultPolicy;

use crate::corb::{CompadresClient, CompadresServer};
use crate::reactor::ReactorConfig;
use crate::service::ObjectRegistry;
use crate::transport::Connection;
use crate::zen::{ZenClient, ZenServer};
use crate::OrbError;

/// Which I/O model a server runs its connections on.
#[derive(Debug, Clone, Copy)]
pub enum Transport {
    /// Event-driven: one poll-loop thread multiplexes every connection,
    /// a worker pool dispatches complete frames (DESIGN.md §5h). The
    /// default — scales past the thread-per-client wall.
    Reactor(ReactorConfig),
    /// Paper-faithful acceptor + one reader thread per connection.
    Threaded,
    /// No TCP endpoint: only in-process `attach_loopback` connections.
    Loopback,
}

/// Builds a server ORB — either the component-assembled Compadres ORB
/// ([`serve`](ServerBuilder::serve)) or the hand-coded ZenOrb
/// comparator ([`serve_zen`](ServerBuilder::serve_zen)) — over a chosen
/// [`Transport`].
#[derive(Debug)]
pub struct ServerBuilder {
    registry: Arc<ObjectRegistry>,
    transport: Transport,
    observer: Option<Arc<Observer>>,
}

impl ServerBuilder {
    /// Starts a builder serving `registry` on the default transport
    /// (reactor with [`ReactorConfig::default`]).
    pub fn new(registry: Arc<ObjectRegistry>) -> ServerBuilder {
        ServerBuilder {
            registry,
            transport: Transport::Reactor(ReactorConfig::default()),
            observer: None,
        }
    }

    /// Selects the transport explicitly.
    pub fn transport(mut self, transport: Transport) -> ServerBuilder {
        self.transport = transport;
        self
    }

    /// Selects the reactor transport with explicit sizing.
    pub fn reactor(self, cfg: ReactorConfig) -> ServerBuilder {
        self.transport(Transport::Reactor(cfg))
    }

    /// Selects the thread-per-connection transport.
    pub fn threaded(self) -> ServerBuilder {
        self.transport(Transport::Threaded)
    }

    /// Serves only in-process loopback connections (no TCP endpoint).
    pub fn loopback(self) -> ServerBuilder {
        self.transport(Transport::Loopback)
    }

    /// Sets the reactor worker-pool size. Switches to the reactor
    /// transport if another one was selected.
    pub fn workers(self, workers: usize) -> ServerBuilder {
        let mut cfg = self.reactor_cfg();
        cfg.workers = workers.max(1);
        self.reactor(cfg)
    }

    /// Caps how many complete frames one connection's reactor inbox may
    /// hold before newly arrived frames are shed (`reactor_shed_total`).
    /// Switches to the reactor transport if another one was selected.
    pub fn inbox_capacity(self, frames: usize) -> ServerBuilder {
        let mut cfg = self.reactor_cfg();
        cfg.inbox_capacity = frames.max(1);
        self.reactor(cfg)
    }

    /// Observability domain for the reactor's metrics. The Compadres ORB
    /// ignores this — its reactor always shares the component app's
    /// observer; ZenOrb, which has no component app, records reactor
    /// metrics here (a fresh, disabled observer when unset).
    pub fn observer(mut self, obs: Arc<Observer>) -> ServerBuilder {
        self.observer = Some(obs);
        self
    }

    fn reactor_cfg(&self) -> ReactorConfig {
        match self.transport {
            Transport::Reactor(cfg) => cfg,
            _ => ReactorConfig::default(),
        }
    }

    /// Builds and starts the component-assembled Compadres ORB server.
    ///
    /// # Errors
    ///
    /// Bind, composition or memory failures.
    pub fn serve(self) -> Result<CompadresServer, OrbError> {
        match self.transport {
            Transport::Reactor(cfg) => CompadresServer::serve_reactor(self.registry, cfg),
            Transport::Threaded => CompadresServer::serve_threaded(self.registry),
            Transport::Loopback => CompadresServer::spawn_loopback(self.registry),
        }
    }

    /// Builds and starts the hand-coded ZenOrb comparator server.
    ///
    /// # Errors
    ///
    /// Bind or memory-architecture failures.
    pub fn serve_zen(self) -> Result<ZenServer, OrbError> {
        match self.transport {
            Transport::Reactor(cfg) => {
                let obs = self.observer.unwrap_or_else(Observer::new);
                ZenServer::serve_reactor(self.registry, obs, cfg)
            }
            Transport::Threaded => ZenServer::serve_threaded(self.registry),
            Transport::Loopback => ZenServer::spawn_loopback(self.registry),
        }
    }
}

/// Builds a client ORB — Compadres ([`connect`](ClientBuilder::connect))
/// or ZenOrb ([`connect_zen`](ClientBuilder::connect_zen)) — optionally
/// under a [`FaultPolicy`] whose connect/send/recv deadlines bound every
/// later invocation.
#[derive(Debug, Default)]
pub struct ClientBuilder {
    policy: Option<FaultPolicy>,
}

impl ClientBuilder {
    /// Starts a builder with no fault policy (blocking I/O, no
    /// deadlines).
    pub fn new() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Arms connect/send/recv deadlines from `policy` on the connection,
    /// so a silent peer surfaces as a deadline miss instead of a wedged
    /// real-time thread.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> ClientBuilder {
        self.policy = Some(policy);
        self
    }

    /// Connects a Compadres client ORB over TCP.
    ///
    /// # Errors
    ///
    /// Connection, composition or memory failures.
    pub fn connect(self, addr: SocketAddr) -> Result<CompadresClient, OrbError> {
        match &self.policy {
            Some(policy) => CompadresClient::tcp_with(addr, policy),
            None => CompadresClient::tcp(addr),
        }
    }

    /// Builds a Compadres client ORB over an established connection
    /// (e.g. a loopback end or a chaos-wrapped conn).
    ///
    /// # Errors
    ///
    /// Composition or memory failures.
    pub fn over(self, conn: Arc<dyn Connection>) -> Result<CompadresClient, OrbError> {
        match &self.policy {
            Some(policy) => CompadresClient::from_conn_with(conn, policy),
            None => CompadresClient::from_conn(conn),
        }
    }

    /// Connects a ZenOrb client over TCP.
    ///
    /// # Errors
    ///
    /// Connection or memory-architecture failures.
    pub fn connect_zen(self, addr: SocketAddr) -> Result<ZenClient, OrbError> {
        match &self.policy {
            Some(policy) => ZenClient::tcp_with(addr, policy),
            None => ZenClient::tcp(addr),
        }
    }

    /// Builds a ZenOrb client over an established connection. The fault
    /// policy, if set, only arms the recv deadline (ZenOrb takes the
    /// connection as-is).
    ///
    /// # Errors
    ///
    /// Memory-architecture failures.
    pub fn over_zen(self, conn: Arc<dyn Connection>) -> Result<ZenClient, OrbError> {
        if let Some(policy) = &self.policy {
            conn.set_deadline(Some(policy.recv_timeout))?;
        }
        ZenClient::from_conn(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_default_is_reactor() {
        let b = ServerBuilder::new(ObjectRegistry::with_echo());
        assert!(matches!(b.transport, Transport::Reactor(_)));
    }

    #[test]
    fn workers_and_inbox_capacity_compose() {
        let b = ServerBuilder::new(ObjectRegistry::with_echo())
            .workers(2)
            .inbox_capacity(8);
        match b.transport {
            Transport::Reactor(cfg) => {
                assert_eq!(cfg.workers, 2);
                assert_eq!(cfg.inbox_capacity, 8);
            }
            other => panic!("expected reactor, got {other:?}"),
        }
    }

    #[test]
    fn loopback_server_via_builder() {
        let server = ServerBuilder::new(ObjectRegistry::with_echo())
            .loopback()
            .serve()
            .unwrap();
        let conn = server.attach_loopback();
        let client = ClientBuilder::new().over(Arc::new(conn)).unwrap();
        assert_eq!(client.invoke(b"echo", "echo", &[7, 7]).unwrap(), vec![7, 7]);
    }

    #[test]
    fn zen_loopback_via_builder() {
        let server = ServerBuilder::new(ObjectRegistry::with_echo())
            .loopback()
            .serve_zen()
            .unwrap();
        let conn = server.attach_loopback();
        let client = ClientBuilder::new().over_zen(Arc::new(conn)).unwrap();
        assert_eq!(client.invoke(b"echo", "echo", &[9]).unwrap(), vec![9]);
    }
}
