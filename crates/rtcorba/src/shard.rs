//! Sharded naming: one logical namespace over N naming servers.
//!
//! A single naming servant is a single point of failure and a
//! serialization point for every resolve on the failover path. This
//! module splits the namespace by *name*, not by server: a
//! [`ShardMap`] assigns each name to a shard with rendezvous
//! (highest-random-weight) hashing, so every client routes the same
//! name to the same shard with no coordination, and removing a shard
//! moves only the names that lived on it — all other names keep their
//! shard, which keeps cached routes valid through membership churn.
//!
//! [`ShardedNaming`] is the client: it holds the resolver endpoints
//! from the deployment manifest, routes `bind`/`resolve`/`unbind` by
//! shard, and implements the core [`EndpointResolver`] seam so a
//! [`FailoverSender`](compadres_core::membership::FailoverSender)
//! can rebind a primary endpoint name through it during failover.

use std::net::SocketAddr;

use compadres_core::membership::EndpointResolver;
use compadres_core::CompadresError;

use crate::ior::ObjectRef;
use crate::naming::NamingClient;
use crate::{ClientBuilder, OrbError};

/// 64-bit FNV-1a — stable across processes and platforms, which is what
/// makes uncoordinated clients agree on routing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assigns names to shards with rendezvous hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    labels: Vec<String>,
}

impl ShardMap {
    /// A map over the given shard labels (order is irrelevant to
    /// routing — only the label strings matter).
    ///
    /// # Panics
    ///
    /// When `labels` is empty.
    pub fn new(labels: Vec<String>) -> ShardMap {
        assert!(!labels.is_empty(), "a shard map needs at least one shard");
        ShardMap { labels }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the map has no shards (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The shard labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn weight(label: &str, name: &str) -> u64 {
        // FNV alone leaves the per-label hashes of one name affinely
        // related (identical tail bytes), which biases the max; the
        // splitmix64 finalizer breaks that correlation.
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            x
        }
        mix(fnv1a(label.as_bytes()) ^ mix(fnv1a(name.as_bytes())))
    }

    /// Index of the shard owning `name`: the shard whose
    /// `(label, name)` hash is highest. Ties break toward the lower
    /// index, deterministically.
    pub fn index_for(&self, name: &str) -> usize {
        self.labels
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                Self::weight(a, name)
                    .cmp(&Self::weight(b, name))
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
            .expect("non-empty by construction")
    }

    /// Label of the shard owning `name`.
    pub fn shard_for(&self, name: &str) -> &str {
        &self.labels[self.index_for(name)]
    }
}

/// A sharded naming client: the resolver endpoints of a deployment,
/// routed by [`ShardMap`]. Connections are per-operation — naming
/// traffic is the control path (resolution, failover rebinds), not the
/// data path, and a fresh connection per operation keeps the client
/// `Send + Sync` without pooling machinery.
#[derive(Debug, Clone)]
pub struct ShardedNaming {
    map: ShardMap,
    addrs: Vec<SocketAddr>,
}

impl ShardedNaming {
    /// A client over `(label, addr)` resolver endpoints. Labels are the
    /// routing identity: use stable names (e.g. the manifest's node
    /// names), not addresses that change across restarts.
    ///
    /// # Panics
    ///
    /// When `shards` is empty.
    pub fn new(shards: Vec<(String, SocketAddr)>) -> ShardedNaming {
        let (labels, addrs) = shards.into_iter().unzip();
        ShardedNaming {
            map: ShardMap::new(labels),
            addrs,
        }
    }

    /// The routing map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard index `name` routes to.
    pub fn shard_of(&self, name: &str) -> usize {
        self.map.index_for(name)
    }

    fn with_shard<T>(
        &self,
        name: &str,
        f: impl FnOnce(&NamingClient<'_>) -> Result<T, OrbError>,
    ) -> Result<T, OrbError> {
        let client = ClientBuilder::new().connect(self.addrs[self.shard_of(name)])?;
        let ns = NamingClient::over_compadres(&client);
        f(&ns)
    }

    /// Binds `name` on its shard; returns whether a binding was
    /// replaced.
    ///
    /// # Errors
    ///
    /// ORB invocation failures.
    pub fn bind(&self, name: &str, reference: &ObjectRef) -> Result<bool, OrbError> {
        self.with_shard(name, |ns| ns.bind(name, reference))
    }

    /// Resolves `name` on its shard.
    ///
    /// # Errors
    ///
    /// `NotFound` exceptions and invocation failures.
    pub fn resolve(&self, name: &str) -> Result<ObjectRef, OrbError> {
        self.with_shard(name, |ns| ns.resolve(name))
    }

    /// Unbinds `name` on its shard; returns whether it existed.
    ///
    /// # Errors
    ///
    /// ORB invocation failures.
    pub fn unbind(&self, name: &str) -> Result<bool, OrbError> {
        self.with_shard(name, |ns| ns.unbind(name))
    }

    /// Rebinds `name` (the failover path) and returns the shard index
    /// that served it — the same shard `resolve` routes to, so readers
    /// see the new binding on their next resolve.
    ///
    /// # Errors
    ///
    /// ORB invocation failures.
    pub fn rebind(&self, name: &str, reference: &ObjectRef) -> Result<usize, OrbError> {
        self.bind(name, reference)?;
        Ok(self.shard_of(name))
    }

    /// All bound names across every shard, in shard order.
    ///
    /// # Errors
    ///
    /// ORB invocation failures on any shard.
    pub fn list_all(&self) -> Result<Vec<String>, OrbError> {
        let mut out = Vec::new();
        for addr in &self.addrs {
            let client = ClientBuilder::new().connect(*addr)?;
            out.extend(NamingClient::over_compadres(&client).list()?);
        }
        Ok(out)
    }
}

impl EndpointResolver for ShardedNaming {
    fn resolve(&self, name: &str) -> compadres_core::Result<SocketAddr> {
        let r = ShardedNaming::resolve(self, name)
            .map_err(|e| CompadresError::Model(format!("sharded naming resolve {name:?}: {e}")))?;
        r.socket_addr()
            .map_err(|e| CompadresError::Model(format!("bad reference for {name:?}: {e}")))
    }

    fn rebind(&self, name: &str, addr: SocketAddr) -> compadres_core::Result<()> {
        let reference = ObjectRef::for_addr(addr, name.as_bytes().to_vec());
        ShardedNaming::rebind(self, name, &reference)
            .map(|_| ())
            .map_err(|e| CompadresError::Model(format!("sharded naming rebind {name:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naming::{NamingServant, NAME_SERVICE_KEY};
    use crate::service::{ObjectRegistry, Servant};
    use std::sync::Arc;

    #[test]
    fn routing_is_deterministic_and_total() {
        let map = ShardMap::new(vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..100 {
            let name = format!("App/n{i}/inst.port");
            let first = map.index_for(&name);
            assert!(first < 3);
            assert_eq!(map.index_for(&name), first, "routing must be stable");
            assert_eq!(map.shard_for(&name), map.labels()[first]);
        }
    }

    #[test]
    fn all_shards_get_traffic() {
        let map = ShardMap::new(vec!["a".into(), "b".into(), "c".into()]);
        let mut hits = [0u32; 3];
        for i in 0..300 {
            hits[map.index_for(&format!("name-{i}"))] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 30),
            "rendezvous hashing should spread names, got {hits:?}"
        );
    }

    #[test]
    fn removing_a_shard_moves_only_its_names() {
        let full = ShardMap::new(vec!["a".into(), "b".into(), "c".into()]);
        let without_c = ShardMap::new(vec!["a".into(), "b".into()]);
        for i in 0..200 {
            let name = format!("name-{i}");
            if full.shard_for(&name) != "c" {
                assert_eq!(
                    full.shard_for(&name),
                    without_c.shard_for(&name),
                    "{name} must keep its shard when an unrelated shard leaves"
                );
            }
        }
    }

    fn shard_servers(n: usize) -> (Vec<crate::corb::CompadresServer>, ShardedNaming) {
        let mut servers = Vec::new();
        let mut shards = Vec::new();
        for i in 0..n {
            let registry = ObjectRegistry::with_echo();
            registry.register(
                NAME_SERVICE_KEY.to_vec(),
                Arc::new(NamingServant::new()) as Arc<dyn Servant>,
            );
            let server = crate::ServerBuilder::new(registry).serve().unwrap();
            shards.push((format!("shard{i}"), server.addr().unwrap()));
            servers.push(server);
        }
        let naming = ShardedNaming::new(shards);
        (servers, naming)
    }

    #[test]
    fn bind_and_resolve_route_to_the_same_shard() {
        let (servers, naming) = shard_servers(3);
        let addr = servers[0].addr().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..12 {
            let name = format!("App/node{i}/C.In");
            let reference = ObjectRef::for_addr(addr, name.as_bytes().to_vec());
            assert!(!naming.bind(&name, &reference).unwrap());
            assert_eq!(naming.resolve(&name).unwrap(), reference);
            seen.insert(naming.shard_of(&name));
        }
        assert!(seen.len() > 1, "12 names should span multiple shards");
        assert_eq!(naming.list_all().unwrap().len(), 12);
        for s in &servers {
            s.shutdown();
        }
    }

    #[test]
    fn endpoint_resolver_rebind_moves_resolution() {
        let (servers, naming) = shard_servers(2);
        let a1 = servers[0].addr().unwrap();
        let a2 = servers[1].addr().unwrap();
        let name = "App/hub/H.In";
        EndpointResolver::rebind(&naming, name, a1).unwrap();
        assert_eq!(EndpointResolver::resolve(&naming, name).unwrap(), a1);
        EndpointResolver::rebind(&naming, name, a2).unwrap();
        assert_eq!(EndpointResolver::resolve(&naming, name).unwrap(), a2);
        for s in &servers {
            s.shutdown();
        }
    }
}
