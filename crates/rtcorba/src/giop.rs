//! GIOP message framing: headers, request and reply messages.
//!
//! Implements the subset of GIOP 1.0 both ORBs speak: `Request` and
//! `Reply` messages with the standard 12-byte header (`GIOP` magic,
//! version, flags, message type, message size).
//!
//! ## Service contexts
//!
//! Requests and replies may carry a list of `(slot id, octets)` service
//! contexts, encoded *after* the body octets as `u32 count` followed by
//! `u32 id, sequence<octet>` per entry. Placing the section at the tail
//! keeps the wire compatible in both directions: a pre-context decoder
//! reads its fields and never looks at the trailing bytes, and
//! [`decode`] treats a missing or malformed section as simply "no
//! contexts" — it never fails a frame over it. An unrecognised slot id
//! round-trips unharmed through a server that echoes contexts.
//!
//! The one slot defined today is [`TRACE_CONTEXT_SLOT`], carrying the
//! causal-tracing context of DESIGN.md §5g.

use std::borrow::Cow;

use crate::cdr::{CdrChainEncoder, CdrDecoder, CdrEncoder, CdrError, CdrSliceDecoder, Endian};
use rtplatform::bufchain::{BufChain, FrameBuf, SegPool};

/// The 4-byte GIOP magic.
pub const GIOP_MAGIC: [u8; 4] = *b"GIOP";
/// GIOP protocol version implemented.
pub const GIOP_VERSION: (u8, u8) = (1, 0);
/// Size of the fixed GIOP message header.
pub const HEADER_LEN: usize = 12;

/// Service-context slot id for the causal-tracing context (`"TRAC"`).
///
/// Slot payload (always big-endian, independent of the frame's flags
/// byte): `u32` trace id, `u32` parent span id, `u64` remaining
/// deadline budget in nanoseconds (`0` = no deadline). See
/// [`encode_trace_slot`] / [`decode_trace_slot`].
pub const TRACE_CONTEXT_SLOT: u32 = 0x5452_4143;

/// GIOP message types (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// A client request.
    Request,
    /// A server reply.
    Reply,
    /// Connection close notification.
    CloseConnection,
    /// Protocol error notification.
    MessageError,
}

impl MsgType {
    fn code(self) -> u8 {
        match self {
            MsgType::Request => 0,
            MsgType::Reply => 1,
            MsgType::CloseConnection => 5,
            MsgType::MessageError => 6,
        }
    }

    fn from_code(code: u8) -> Option<MsgType> {
        Some(match code {
            0 => MsgType::Request,
            1 => MsgType::Reply,
            5 => MsgType::CloseConnection,
            6 => MsgType::MessageError,
            _ => return None,
        })
    }
}

/// Reply status (subset of GIOP `ReplyStatusType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The request completed normally.
    NoException,
    /// The servant raised an exception; the body carries a message string.
    SystemException,
    /// The object key was unknown.
    ObjectNotExist,
}

impl ReplyStatus {
    fn code(self) -> u32 {
        match self {
            ReplyStatus::NoException => 0,
            ReplyStatus::SystemException => 2,
            ReplyStatus::ObjectNotExist => 3,
        }
    }

    fn from_code(code: u32) -> Option<ReplyStatus> {
        Some(match code {
            0 => ReplyStatus::NoException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::ObjectNotExist,
            _ => return None,
        })
    }
}

/// GIOP protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GiopError {
    /// The header did not start with `GIOP`.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8, u8),
    /// Unknown message type code.
    BadMsgType(u8),
    /// Unknown reply status code.
    BadReplyStatus(u32),
    /// Header or body failed to decode.
    Cdr(CdrError),
    /// The frame was shorter than the declared message size.
    ShortBody {
        /// Declared size.
        declared: usize,
        /// Actual body bytes present.
        actual: usize,
    },
}

impl std::fmt::Display for GiopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GiopError::BadMagic(m) => write!(f, "bad GIOP magic {m:?}"),
            GiopError::BadVersion(a, b) => write!(f, "unsupported GIOP version {a}.{b}"),
            GiopError::BadMsgType(t) => write!(f, "unknown GIOP message type {t}"),
            GiopError::BadReplyStatus(s) => write!(f, "unknown reply status {s}"),
            GiopError::Cdr(e) => write!(f, "CDR error: {e}"),
            GiopError::ShortBody { declared, actual } => {
                write!(f, "short GIOP body: declared {declared}, got {actual}")
            }
        }
    }
}

impl std::error::Error for GiopError {}

impl From<CdrError> for GiopError {
    fn from(e: CdrError) -> Self {
        GiopError::Cdr(e)
    }
}

/// A GIOP request message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMessage {
    /// Client-chosen id correlating the reply.
    pub request_id: u32,
    /// Whether a reply is expected (false = oneway).
    pub response_expected: bool,
    /// Opaque key identifying the target object.
    pub object_key: Vec<u8>,
    /// Operation name.
    pub operation: String,
    /// Marshalled in-parameters.
    pub body: Vec<u8>,
    /// Service contexts (`(slot id, octets)`), e.g.
    /// [`TRACE_CONTEXT_SLOT`]. Servers echo them into the reply.
    pub service_context: Vec<(u32, Vec<u8>)>,
}

/// A GIOP reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMessage {
    /// Correlates with the request.
    pub request_id: u32,
    /// Outcome.
    pub status: ReplyStatus,
    /// Marshalled result (or exception message).
    pub body: Vec<u8>,
    /// Service contexts echoed back from the request.
    pub service_context: Vec<(u32, Vec<u8>)>,
}

/// Either kind of incoming message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request.
    Request(RequestMessage),
    /// A reply.
    Reply(ReplyMessage),
    /// Connection close.
    CloseConnection,
    /// The peer could not parse what we sent (GIOP `MessageError`).
    Error,
}

fn write_header(enc: &mut CdrEncoder, msg_type: MsgType) {
    enc.write_u8(GIOP_MAGIC[0]);
    enc.write_u8(GIOP_MAGIC[1]);
    enc.write_u8(GIOP_MAGIC[2]);
    enc.write_u8(GIOP_MAGIC[3]);
    enc.write_u8(GIOP_VERSION.0);
    enc.write_u8(GIOP_VERSION.1);
    enc.write_u8(enc.endian().flag_bit());
    enc.write_u8(msg_type.code());
    enc.write_u32(0); // message size, patched later
}

fn patch_size(bytes: &mut [u8], endian: Endian) {
    let size = (bytes.len() - HEADER_LEN) as u32;
    let be = match endian {
        Endian::Big => size.to_be_bytes(),
        Endian::Little => size.to_le_bytes(),
    };
    bytes[8..12].copy_from_slice(&be);
}

/// Appends the service-context tail. An empty list writes nothing, so
/// context-free frames stay byte-identical to the pre-context format.
fn write_service_context(enc: &mut CdrEncoder, ctx: &[(u32, Vec<u8>)]) {
    if ctx.is_empty() {
        return;
    }
    enc.write_u32(ctx.len() as u32);
    for (id, data) in ctx {
        enc.write_u32(*id);
        enc.write_octets(data);
    }
}

/// Leniently reads the trailing service-context section. Absence or any
/// malformation yields an empty list — the section is advisory and must
/// never fail a frame that decoded fine without it.
fn read_service_context(dec: &mut CdrDecoder<'_>) -> Vec<(u32, Vec<u8>)> {
    if dec.remaining() == 0 {
        return Vec::new();
    }
    let Ok(count) = dec.read_u32() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for _ in 0..count {
        let Ok(id) = dec.read_u32() else {
            return Vec::new();
        };
        let Ok(data) = dec.read_octets() else {
            return Vec::new();
        };
        out.push((id, data));
    }
    out
}

/// Builds the fixed 12-byte header with a known body size — the
/// headroom-framing path: the body is encoded first into a chain, then
/// this header is prepended, so nothing is patched in place.
fn header_bytes(endian: Endian, msg_type: MsgType, size: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&GIOP_MAGIC);
    h[4] = GIOP_VERSION.0;
    h[5] = GIOP_VERSION.1;
    h[6] = endian.flag_bit();
    h[7] = msg_type.code();
    h[8..12].copy_from_slice(&match endian {
        Endian::Big => size.to_be_bytes(),
        Endian::Little => size.to_le_bytes(),
    });
    h
}

/// Chain-encoder twin of [`write_service_context`].
fn write_service_context_chain(enc: &mut CdrChainEncoder<'_>, ctx: &[(u32, Vec<u8>)]) {
    if ctx.is_empty() {
        return;
    }
    enc.write_u32(ctx.len() as u32);
    for (id, data) in ctx {
        enc.write_u32(*id);
        enc.write_octets(data);
    }
}

/// Lenient service-context reader over fragmented frames — same
/// semantics as [`read_service_context`], zero-copy payload views.
fn read_service_context_views<'a>(dec: &mut CdrSliceDecoder<'a>) -> Vec<(u32, Cow<'a, [u8]>)> {
    if dec.remaining() == 0 {
        return Vec::new();
    }
    let Ok(count) = dec.read_u32() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for _ in 0..count {
        let Ok(id) = dec.read_u32() else {
            return Vec::new();
        };
        let Ok(data) = dec.read_octets_view() else {
            return Vec::new();
        };
        out.push((id, data));
    }
    out
}

/// Packs a trace context into [`TRACE_CONTEXT_SLOT`] wire form. The slot
/// payload is fixed big-endian so it survives re-framing at a different
/// endianness (contexts are echoed verbatim, not re-marshalled).
pub fn encode_trace_slot(trace_id: u32, parent_span: u16, budget_ns: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&trace_id.to_be_bytes());
    out.extend_from_slice(&u32::from(parent_span).to_be_bytes());
    out.extend_from_slice(&budget_ns.to_be_bytes());
    out
}

/// Unpacks a [`TRACE_CONTEXT_SLOT`] payload into `(trace_id,
/// parent_span, budget_ns)`. Returns `None` for short payloads or an
/// inactive (zero) trace id — garbage in a recognised slot is dropped,
/// never an error.
pub fn decode_trace_slot(data: &[u8]) -> Option<(u32, u16, u64)> {
    if data.len() < 16 {
        return None;
    }
    let trace_id = u32::from_be_bytes(data[0..4].try_into().ok()?);
    let parent = u32::from_be_bytes(data[4..8].try_into().ok()?);
    let budget = u64::from_be_bytes(data[8..16].try_into().ok()?);
    if trace_id == 0 {
        return None;
    }
    Some((trace_id, parent as u16, budget))
}

/// Lean scan of a request frame for its [`TRACE_CONTEXT_SLOT`]: skips
/// the object key, operation and body without copying them. Returns
/// `None` for non-requests, frames without the slot, or anything
/// malformed — it never panics on arbitrary bytes.
pub fn peek_trace(frame: &[u8]) -> Option<(u32, u16, u64)> {
    if frame.len() < HEADER_LEN || frame[..4] != GIOP_MAGIC {
        return None;
    }
    if (frame[4], frame[5]) != GIOP_VERSION
        || MsgType::from_code(frame[7]) != Some(MsgType::Request)
    {
        return None;
    }
    let endian = Endian::from_flag(frame[6]);
    let mut hdr = CdrDecoder::new(&frame[8..12], endian);
    let declared = hdr.read_u32().ok()? as usize;
    let body = &frame[HEADER_LEN..];
    if body.len() < declared {
        return None;
    }
    let mut dec = CdrDecoder::new(&body[..declared], endian);
    dec.read_u32().ok()?; // request_id
    dec.read_bool().ok()?; // response_expected
    dec.skip_octets().ok()?; // object_key
    dec.skip_octets().ok()?; // operation (string shares the layout)
    dec.skip_octets().ok()?; // body
    if dec.remaining() == 0 {
        return None;
    }
    let count = dec.read_u32().ok()?;
    for _ in 0..count {
        let id = dec.read_u32().ok()?;
        if id == TRACE_CONTEXT_SLOT {
            let len = dec.read_u32().ok()? as usize;
            if len > dec.remaining() {
                return None;
            }
            let start = dec.position();
            return decode_trace_slot(&body[start..start + len]);
        }
        dec.skip_octets().ok()?;
    }
    None
}

impl RequestMessage {
    /// Encodes the full GIOP frame (header + request header + body).
    pub fn encode(&self, endian: Endian) -> Vec<u8> {
        let mut enc = CdrEncoder::new(endian);
        write_header(&mut enc, MsgType::Request);
        enc.write_u32(self.request_id);
        enc.write_bool(self.response_expected);
        enc.write_octets(&self.object_key);
        enc.write_string(&self.operation);
        enc.write_octets(&self.body);
        write_service_context(&mut enc, &self.service_context);
        let mut bytes = enc.into_bytes();
        patch_size(&mut bytes, endian);
        bytes
    }

    /// The decoded [`TRACE_CONTEXT_SLOT`] carried by this request, if any.
    pub fn trace_context(&self) -> Option<(u32, u16, u64)> {
        self.service_context
            .iter()
            .find(|(id, _)| *id == TRACE_CONTEXT_SLOT)
            .and_then(|(_, data)| decode_trace_slot(data))
    }

    /// Zero-copy encode: the body goes straight into pool-leased
    /// segments and the header is prepended into headroom. The frame
    /// bytes are identical to [`RequestMessage::encode`].
    pub fn encode_chain(&self, endian: Endian, pool: &SegPool) -> FrameBuf {
        encode_request_chain(
            self.request_id,
            self.response_expected,
            &self.object_key,
            &self.operation,
            &self.body,
            &self.service_context,
            endian,
            pool,
        )
    }
}

/// Encodes a request frame from borrowed fields directly into a chain
/// — the client hot path, which otherwise clones key/operation/args
/// into a [`RequestMessage`] only to marshal them.
#[allow(clippy::too_many_arguments)]
pub fn encode_request_chain(
    request_id: u32,
    response_expected: bool,
    object_key: &[u8],
    operation: &str,
    body: &[u8],
    service_context: &[(u32, Vec<u8>)],
    endian: Endian,
    pool: &SegPool,
) -> FrameBuf {
    let mut chain = BufChain::with_headroom(pool, HEADER_LEN);
    {
        let mut enc = CdrChainEncoder::new(&mut chain, endian);
        enc.write_u32(request_id);
        enc.write_bool(response_expected);
        enc.write_octets(object_key);
        enc.write_string(operation);
        enc.write_octets(body);
        write_service_context_chain(&mut enc, service_context);
    }
    let size = chain.body_len() as u32;
    chain.prepend(&header_bytes(endian, MsgType::Request, size));
    chain.into_frame()
}

impl ReplyMessage {
    /// Encodes the full GIOP frame (header + reply header + body).
    pub fn encode(&self, endian: Endian) -> Vec<u8> {
        let mut enc = CdrEncoder::new(endian);
        write_header(&mut enc, MsgType::Reply);
        enc.write_u32(self.request_id);
        enc.write_u32(self.status.code());
        enc.write_octets(&self.body);
        write_service_context(&mut enc, &self.service_context);
        let mut bytes = enc.into_bytes();
        patch_size(&mut bytes, endian);
        bytes
    }

    /// The decoded [`TRACE_CONTEXT_SLOT`] echoed in this reply, if any.
    pub fn trace_context(&self) -> Option<(u32, u16, u64)> {
        self.service_context
            .iter()
            .find(|(id, _)| *id == TRACE_CONTEXT_SLOT)
            .and_then(|(_, data)| decode_trace_slot(data))
    }

    /// Zero-copy encode: byte-identical to [`ReplyMessage::encode`],
    /// without the `Vec` assembly and size patch.
    pub fn encode_chain(&self, endian: Endian, pool: &SegPool) -> FrameBuf {
        let mut chain = BufChain::with_headroom(pool, HEADER_LEN);
        {
            let mut enc = CdrChainEncoder::new(&mut chain, endian);
            enc.write_u32(self.request_id);
            enc.write_u32(self.status.code());
            enc.write_octets(&self.body);
            write_service_context_chain(&mut enc, &self.service_context);
        }
        let size = chain.body_len() as u32;
        chain.prepend(&header_bytes(endian, MsgType::Reply, size));
        chain.into_frame()
    }
}

/// Encodes a `CloseConnection` frame.
pub fn encode_close(endian: Endian) -> Vec<u8> {
    let mut enc = CdrEncoder::new(endian);
    write_header(&mut enc, MsgType::CloseConnection);
    let mut bytes = enc.into_bytes();
    patch_size(&mut bytes, endian);
    bytes
}

/// Encodes a `MessageError` frame — sent back when an incoming frame
/// fails to parse, so a (possibly fault-injected) peer learns its message
/// was garbage instead of waiting for a reply that will never come.
pub fn encode_error(endian: Endian) -> Vec<u8> {
    let mut enc = CdrEncoder::new(endian);
    write_header(&mut enc, MsgType::MessageError);
    let mut bytes = enc.into_bytes();
    patch_size(&mut bytes, endian);
    bytes
}

/// Decodes a complete GIOP frame.
///
/// # Errors
///
/// [`GiopError`] on any protocol violation.
pub fn decode(frame: &[u8]) -> Result<Message, GiopError> {
    if frame.len() < HEADER_LEN {
        return Err(GiopError::Cdr(CdrError::Truncated {
            needed: HEADER_LEN,
            remaining: frame.len(),
        }));
    }
    let magic = [frame[0], frame[1], frame[2], frame[3]];
    if magic != GIOP_MAGIC {
        return Err(GiopError::BadMagic(magic));
    }
    if (frame[4], frame[5]) != GIOP_VERSION {
        return Err(GiopError::BadVersion(frame[4], frame[5]));
    }
    let endian = Endian::from_flag(frame[6]);
    let msg_type = MsgType::from_code(frame[7]).ok_or(GiopError::BadMsgType(frame[7]))?;
    // Declared size (read with the frame's endianness).
    let mut hdr = CdrDecoder::new(&frame[8..12], endian);
    let declared = hdr.read_u32()? as usize;
    let body = &frame[HEADER_LEN..];
    if body.len() < declared {
        return Err(GiopError::ShortBody {
            declared,
            actual: body.len(),
        });
    }
    // Alignment in GIOP bodies restarts after the header.
    let mut dec = CdrDecoder::new(&body[..declared], endian);
    match msg_type {
        MsgType::Request => {
            let request_id = dec.read_u32()?;
            let response_expected = dec.read_bool()?;
            let object_key = dec.read_octets()?;
            let operation = dec.read_string()?;
            let req_body = dec.read_octets()?;
            let service_context = read_service_context(&mut dec);
            Ok(Message::Request(RequestMessage {
                request_id,
                response_expected,
                object_key,
                operation,
                body: req_body,
                service_context,
            }))
        }
        MsgType::Reply => {
            let request_id = dec.read_u32()?;
            let code = dec.read_u32()?;
            let status = ReplyStatus::from_code(code).ok_or(GiopError::BadReplyStatus(code))?;
            let body = dec.read_octets()?;
            let service_context = read_service_context(&mut dec);
            Ok(Message::Reply(ReplyMessage {
                request_id,
                status,
                body,
                service_context,
            }))
        }
        MsgType::CloseConnection => Ok(Message::CloseConnection),
        MsgType::MessageError => Ok(Message::Error),
    }
}

/// A request decoded in place: key, operation and body borrow the
/// frame's segments whenever they do not straddle a segment boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestView<'a> {
    /// Client-chosen id correlating the reply.
    pub request_id: u32,
    /// Whether a reply is expected (false = oneway).
    pub response_expected: bool,
    /// Opaque key identifying the target object.
    pub object_key: Cow<'a, [u8]>,
    /// Operation name.
    pub operation: Cow<'a, str>,
    /// Marshalled in-parameters.
    pub body: Cow<'a, [u8]>,
    /// Service contexts (zero-copy payload views).
    pub service_context: Vec<(u32, Cow<'a, [u8]>)>,
}

impl RequestView<'_> {
    /// Copies the view into an owned [`RequestMessage`].
    pub fn to_message(&self) -> RequestMessage {
        RequestMessage {
            request_id: self.request_id,
            response_expected: self.response_expected,
            object_key: self.object_key.to_vec(),
            operation: self.operation.clone().into_owned(),
            body: self.body.to_vec(),
            service_context: self
                .service_context
                .iter()
                .map(|(id, d)| (*id, d.to_vec()))
                .collect(),
        }
    }

    /// Copies the context list into owned form (for reply echoing).
    pub fn owned_contexts(&self) -> Vec<(u32, Vec<u8>)> {
        self.service_context
            .iter()
            .map(|(id, d)| (*id, d.to_vec()))
            .collect()
    }

    /// The decoded [`TRACE_CONTEXT_SLOT`], if any.
    pub fn trace_context(&self) -> Option<(u32, u16, u64)> {
        self.service_context
            .iter()
            .find(|(id, _)| *id == TRACE_CONTEXT_SLOT)
            .and_then(|(_, data)| decode_trace_slot(data))
    }
}

/// A reply decoded in place over borrowed segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyView<'a> {
    /// Correlates with the request.
    pub request_id: u32,
    /// Outcome.
    pub status: ReplyStatus,
    /// Marshalled result (or exception message).
    pub body: Cow<'a, [u8]>,
    /// Service contexts echoed back from the request.
    pub service_context: Vec<(u32, Cow<'a, [u8]>)>,
}

impl ReplyView<'_> {
    /// Copies the view into an owned [`ReplyMessage`].
    pub fn to_message(&self) -> ReplyMessage {
        ReplyMessage {
            request_id: self.request_id,
            status: self.status,
            body: self.body.to_vec(),
            service_context: self
                .service_context
                .iter()
                .map(|(id, d)| (*id, d.to_vec()))
                .collect(),
        }
    }

    /// The decoded [`TRACE_CONTEXT_SLOT`], if any.
    pub fn trace_context(&self) -> Option<(u32, u16, u64)> {
        self.service_context
            .iter()
            .find(|(id, _)| *id == TRACE_CONTEXT_SLOT)
            .and_then(|(_, data)| decode_trace_slot(data))
    }
}

/// Either kind of incoming message, decoded in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageView<'a> {
    /// A request.
    Request(RequestView<'a>),
    /// A reply.
    Reply(ReplyView<'a>),
    /// Connection close.
    CloseConnection,
    /// The peer could not parse what we sent.
    Error,
}

impl MessageView<'_> {
    /// Copies the view into an owned [`Message`].
    pub fn to_message(&self) -> Message {
        match self {
            MessageView::Request(r) => Message::Request(r.to_message()),
            MessageView::Reply(r) => Message::Reply(r.to_message()),
            MessageView::CloseConnection => Message::CloseConnection,
            MessageView::Error => Message::Error,
        }
    }
}

/// Copies `out.len()` bytes at logical offset `off` out of `parts`;
/// `false` if the parts end too early.
fn copy_from_parts(parts: &[&[u8]], off: usize, out: &mut [u8]) -> bool {
    let mut skip = off;
    let mut done = 0;
    for p in parts {
        let b = if skip >= p.len() {
            skip -= p.len();
            continue;
        } else {
            &p[skip..]
        };
        skip = 0;
        let n = b.len().min(out.len() - done);
        out[done..done + n].copy_from_slice(&b[..n]);
        done += n;
        if done == out.len() {
            return true;
        }
    }
    done == out.len()
}

/// Decodes a complete GIOP frame *in place* over a fragmented buffer
/// (the regions of a [`FrameBuf`], in wire order): no coalescing copy
/// is made, and the resulting views borrow the segments. Agrees with
/// [`decode`] on every frame — a property the wire tests enforce.
///
/// # Errors
///
/// [`GiopError`] on any protocol violation.
pub fn decode_view<'a>(parts: &'a [&'a [u8]]) -> Result<MessageView<'a>, GiopError> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut header = [0u8; HEADER_LEN];
    if !copy_from_parts(parts, 0, &mut header) {
        return Err(GiopError::Cdr(CdrError::Truncated {
            needed: HEADER_LEN,
            remaining: total,
        }));
    }
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != GIOP_MAGIC {
        return Err(GiopError::BadMagic(magic));
    }
    if (header[4], header[5]) != GIOP_VERSION {
        return Err(GiopError::BadVersion(header[4], header[5]));
    }
    let endian = Endian::from_flag(header[6]);
    let msg_type = MsgType::from_code(header[7]).ok_or(GiopError::BadMsgType(header[7]))?;
    let mut hdr = CdrDecoder::new(&header[8..12], endian);
    let declared = hdr.read_u32()? as usize;
    if total - HEADER_LEN < declared {
        return Err(GiopError::ShortBody {
            declared,
            actual: total - HEADER_LEN,
        });
    }
    // Alignment in GIOP bodies restarts after the header.
    let mut dec = CdrSliceDecoder::sub(parts, endian, HEADER_LEN, declared)?;
    match msg_type {
        MsgType::Request => {
            let request_id = dec.read_u32()?;
            let response_expected = dec.read_bool()?;
            let object_key = dec.read_octets_view()?;
            let operation = dec.read_string_view()?;
            let body = dec.read_octets_view()?;
            let service_context = read_service_context_views(&mut dec);
            Ok(MessageView::Request(RequestView {
                request_id,
                response_expected,
                object_key,
                operation,
                body,
                service_context,
            }))
        }
        MsgType::Reply => {
            let request_id = dec.read_u32()?;
            let code = dec.read_u32()?;
            let status = ReplyStatus::from_code(code).ok_or(GiopError::BadReplyStatus(code))?;
            let body = dec.read_octets_view()?;
            let service_context = read_service_context_views(&mut dec);
            Ok(MessageView::Reply(ReplyView {
                request_id,
                status,
                body,
                service_context,
            }))
        }
        MsgType::CloseConnection => Ok(MessageView::CloseConnection),
        MsgType::MessageError => Ok(MessageView::Error),
    }
}

/// [`peek_trace`] over a fragmented frame: same never-panic guarantee,
/// no coalescing. Used by the reactor path, where a frame may span
/// segment boundaries.
pub fn peek_trace_parts(parts: &[&[u8]]) -> Option<(u32, u16, u64)> {
    let mut header = [0u8; HEADER_LEN];
    if !copy_from_parts(parts, 0, &mut header) || header[..4] != GIOP_MAGIC {
        return None;
    }
    if (header[4], header[5]) != GIOP_VERSION
        || MsgType::from_code(header[7]) != Some(MsgType::Request)
    {
        return None;
    }
    let endian = Endian::from_flag(header[6]);
    let mut hdr = CdrDecoder::new(&header[8..12], endian);
    let declared = hdr.read_u32().ok()? as usize;
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total - HEADER_LEN < declared {
        return None;
    }
    let mut dec = CdrSliceDecoder::sub(parts, endian, HEADER_LEN, declared).ok()?;
    dec.read_u32().ok()?; // request_id
    dec.read_bool().ok()?; // response_expected
    dec.skip_octets().ok()?; // object_key
    dec.skip_octets().ok()?; // operation
    dec.skip_octets().ok()?; // body
    if dec.remaining() == 0 {
        return None;
    }
    let count = dec.read_u32().ok()?;
    for _ in 0..count {
        let id = dec.read_u32().ok()?;
        if id == TRACE_CONTEXT_SLOT {
            let data = dec.read_octets_view().ok()?;
            return decode_trace_slot(&data);
        }
        dec.skip_octets().ok()?;
    }
    None
}

/// Reads the declared message size from a 12-byte header.
///
/// # Errors
///
/// [`GiopError`] if the header is malformed.
pub fn body_size(header: &[u8; HEADER_LEN]) -> Result<usize, GiopError> {
    if header[..4] != GIOP_MAGIC {
        return Err(GiopError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let endian = Endian::from_flag(header[6]);
    let mut dec = CdrDecoder::new(&header[8..12], endian);
    Ok(dec.read_u32()? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 7,
            response_expected: true,
            object_key: b"echo-1".to_vec(),
            operation: "echo".to_string(),
            body: vec![1, 2, 3, 4, 5],
            service_context: Vec::new(),
        }
    }

    #[test]
    fn request_roundtrip_both_endians() {
        for endian in [Endian::Big, Endian::Little] {
            let req = sample_request();
            let frame = req.encode(endian);
            assert_eq!(&frame[..4], b"GIOP");
            match decode(&frame).unwrap() {
                Message::Request(r) => assert_eq!(r, req),
                other => panic!("expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn reply_roundtrip() {
        let reply = ReplyMessage {
            request_id: 7,
            status: ReplyStatus::NoException,
            body: vec![0xAA; 64],
            service_context: Vec::new(),
        };
        let frame = reply.encode(Endian::Big);
        match decode(&frame).unwrap() {
            Message::Reply(r) => assert_eq!(r, reply),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn declared_size_matches_frame() {
        let frame = sample_request().encode(Endian::Big);
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&frame[..HEADER_LEN]);
        assert_eq!(body_size(&header).unwrap(), frame.len() - HEADER_LEN);
    }

    #[test]
    fn cross_endian_decoding() {
        // Encode little, decode without being told: the flags byte governs.
        let frame = sample_request().encode(Endian::Little);
        match decode(&frame).unwrap() {
            Message::Request(r) => assert_eq!(r.operation, "echo"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_connection_roundtrip() {
        let frame = encode_close(Endian::Big);
        assert_eq!(decode(&frame).unwrap(), Message::CloseConnection);
    }

    #[test]
    fn message_error_roundtrip() {
        for endian in [Endian::Big, Endian::Little] {
            let frame = encode_error(endian);
            assert_eq!(frame.len(), HEADER_LEN, "MessageError has no body");
            assert_eq!(decode(&frame).unwrap(), Message::Error);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = sample_request().encode(Endian::Big);
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(GiopError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = sample_request().encode(Endian::Big);
        frame[4] = 9;
        assert!(matches!(decode(&frame), Err(GiopError::BadVersion(9, 0))));
    }

    #[test]
    fn short_body_rejected() {
        let frame = sample_request().encode(Endian::Big);
        let truncated = &frame[..frame.len() - 3];
        assert!(matches!(
            decode(truncated),
            Err(GiopError::ShortBody { .. })
        ));
    }

    #[test]
    fn service_context_roundtrip_both_endians() {
        for endian in [Endian::Big, Endian::Little] {
            let mut req = sample_request();
            req.service_context = vec![
                (TRACE_CONTEXT_SLOT, encode_trace_slot(0xAB, 42, 1_000_000)),
                (0xDEAD_BEEF, vec![9, 9, 9]), // unknown slot: opaque octets
            ];
            let frame = req.encode(endian);
            match decode(&frame).unwrap() {
                Message::Request(r) => {
                    assert_eq!(r, req, "unknown slots round-trip unharmed");
                    assert_eq!(r.trace_context(), Some((0xAB, 42, 1_000_000)));
                }
                other => panic!("expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn context_free_frame_is_byte_identical_to_legacy() {
        // An empty context list writes no tail at all, so old and new
        // encoders produce the same bytes for the same message.
        let req = sample_request();
        let frame = req.encode(Endian::Big);
        let mut dec = CdrDecoder::new(&frame[HEADER_LEN..], Endian::Big);
        dec.read_u32().unwrap(); // request_id
        dec.read_bool().unwrap();
        dec.skip_octets().unwrap();
        dec.skip_octets().unwrap();
        dec.skip_octets().unwrap();
        assert_eq!(dec.remaining(), 0, "no trailing section when empty");
    }

    #[test]
    fn reply_echoes_service_context() {
        let reply = ReplyMessage {
            request_id: 3,
            status: ReplyStatus::NoException,
            body: vec![1],
            service_context: vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(5, 6, 7))],
        };
        let frame = reply.encode(Endian::Little);
        match decode(&frame).unwrap() {
            Message::Reply(r) => assert_eq!(r.trace_context(), Some((5, 6, 7))),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn malformed_context_tail_is_ignored_not_fatal() {
        // Truncate inside the service-context section: the core message
        // must still decode, with an empty context list.
        let mut req = sample_request();
        req.service_context = vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(1, 2, 3))];
        let full = req.encode(Endian::Big);
        let bare_len = sample_request().encode(Endian::Big).len();
        for cut in bare_len..full.len() {
            let mut frame = full[..cut].to_vec();
            patch_size(&mut frame, Endian::Big);
            match decode(&frame) {
                Ok(Message::Request(r)) => {
                    assert_eq!(r.operation, "echo");
                    assert!(r.service_context.is_empty() || r.trace_context().is_some());
                }
                other => panic!("truncated tail at {cut} must not fail: {other:?}"),
            }
        }
    }

    #[test]
    fn peek_trace_finds_the_slot_without_full_decode() {
        for endian in [Endian::Big, Endian::Little] {
            let mut req = sample_request();
            req.service_context = vec![
                (1, vec![0xFF; 8]),
                (TRACE_CONTEXT_SLOT, encode_trace_slot(0xC0FFEE, 9, 250_000)),
            ];
            let frame = req.encode(endian);
            assert_eq!(peek_trace(&frame), Some((0xC0FFEE, 9, 250_000)));
        }
        // No slot, non-request, and garbage frames all yield None.
        assert_eq!(peek_trace(&sample_request().encode(Endian::Big)), None);
        let reply = ReplyMessage {
            request_id: 1,
            status: ReplyStatus::NoException,
            body: vec![],
            service_context: vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(1, 1, 1))],
        };
        assert_eq!(peek_trace(&reply.encode(Endian::Big)), None);
        assert_eq!(peek_trace(b"not a giop frame at all"), None);
    }

    #[test]
    fn peek_trace_never_panics_on_mutated_frames() {
        let mut req = sample_request();
        req.service_context = vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(7, 7, 7))];
        let frame = req.encode(Endian::Big);
        // Single-byte corruptions over the whole frame.
        for i in 0..frame.len() {
            for delta in [1u8, 0x80, 0xFF] {
                let mut f = frame.clone();
                f[i] = f[i].wrapping_add(delta);
                let _ = peek_trace(&f);
                let _ = decode(&f);
            }
        }
        // Truncations at every length.
        for cut in 0..frame.len() {
            let _ = peek_trace(&frame[..cut]);
        }
    }

    #[test]
    fn encode_chain_is_byte_identical_to_encode() {
        // 16-byte segments: the 12-byte headroom leaves 4 body bytes in
        // the first segment, forcing many boundary crossings.
        let pool = SegPool::new(64, 16);
        for endian in [Endian::Big, Endian::Little] {
            let mut req = sample_request();
            req.service_context = vec![
                (TRACE_CONTEXT_SLOT, encode_trace_slot(0xAB, 42, 1_000_000)),
                (0xDEAD_BEEF, vec![9, 9, 9]),
            ];
            assert_eq!(req.encode_chain(endian, &pool).to_vec(), req.encode(endian));
            let bare = sample_request();
            assert_eq!(
                bare.encode_chain(endian, &pool).to_vec(),
                bare.encode(endian)
            );
            let reply = ReplyMessage {
                request_id: 7,
                status: ReplyStatus::SystemException,
                body: vec![0xEE; 40],
                service_context: vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(1, 2, 3))],
            };
            assert_eq!(
                reply.encode_chain(endian, &pool).to_vec(),
                reply.encode(endian)
            );
        }
        assert_eq!(pool.available(), 64, "all segments recycled");
    }

    #[test]
    fn decode_view_agrees_with_decode_on_fragmented_frames() {
        let mut req = sample_request();
        req.service_context = vec![(TRACE_CONTEXT_SLOT, encode_trace_slot(0xC0, 1, 77))];
        for endian in [Endian::Big, Endian::Little] {
            let frame = req.encode(endian);
            // Every single split point, including through the header.
            for cut in 0..=frame.len() {
                let parts = [&frame[..cut], &frame[cut..]];
                match decode_view(&parts).unwrap() {
                    MessageView::Request(v) => {
                        assert_eq!(Message::Request(v.to_message()), decode(&frame).unwrap());
                        assert_eq!(v.trace_context(), Some((0xC0, 1, 77)));
                    }
                    other => panic!("cut {cut}: {other:?}"),
                }
                assert_eq!(peek_trace_parts(&parts), peek_trace(&frame), "cut {cut}");
            }
        }
    }

    #[test]
    fn decode_view_borrows_on_contiguous_frames() {
        let frame = sample_request().encode(Endian::Big);
        let parts = [&frame[..]];
        match decode_view(&parts).unwrap() {
            MessageView::Request(v) => {
                assert!(matches!(v.object_key, Cow::Borrowed(_)));
                assert!(matches!(v.operation, Cow::Borrowed(_)));
                assert!(matches!(v.body, Cow::Borrowed(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_view_rejects_what_decode_rejects() {
        let frame = sample_request().encode(Endian::Big);
        let mut bad = frame.clone();
        bad[0] = b'X';
        let parts = [&bad[..]];
        assert!(matches!(decode_view(&parts), Err(GiopError::BadMagic(_))));
        let short = &frame[..frame.len() - 3];
        let parts = [short];
        assert!(matches!(
            decode_view(&parts),
            Err(GiopError::ShortBody { .. })
        ));
        let parts: [&[u8]; 2] = [&frame[..5], &[]];
        assert!(matches!(
            decode_view(&parts),
            Err(GiopError::Cdr(CdrError::Truncated { .. }))
        ));
    }

    #[test]
    fn oneway_request() {
        let mut req = sample_request();
        req.response_expected = false;
        let frame = req.encode(Endian::Big);
        match decode(&frame).unwrap() {
            Message::Request(r) => assert!(!r.response_expected),
            other => panic!("unexpected {other:?}"),
        }
    }
}
