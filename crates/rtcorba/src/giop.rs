//! GIOP message framing: headers, request and reply messages.
//!
//! Implements the subset of GIOP 1.0 both ORBs speak: `Request` and
//! `Reply` messages with the standard 12-byte header (`GIOP` magic,
//! version, flags, message type, message size).

use crate::cdr::{CdrDecoder, CdrEncoder, CdrError, Endian};

/// The 4-byte GIOP magic.
pub const GIOP_MAGIC: [u8; 4] = *b"GIOP";
/// GIOP protocol version implemented.
pub const GIOP_VERSION: (u8, u8) = (1, 0);
/// Size of the fixed GIOP message header.
pub const HEADER_LEN: usize = 12;

/// GIOP message types (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// A client request.
    Request,
    /// A server reply.
    Reply,
    /// Connection close notification.
    CloseConnection,
    /// Protocol error notification.
    MessageError,
}

impl MsgType {
    fn code(self) -> u8 {
        match self {
            MsgType::Request => 0,
            MsgType::Reply => 1,
            MsgType::CloseConnection => 5,
            MsgType::MessageError => 6,
        }
    }

    fn from_code(code: u8) -> Option<MsgType> {
        Some(match code {
            0 => MsgType::Request,
            1 => MsgType::Reply,
            5 => MsgType::CloseConnection,
            6 => MsgType::MessageError,
            _ => return None,
        })
    }
}

/// Reply status (subset of GIOP `ReplyStatusType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The request completed normally.
    NoException,
    /// The servant raised an exception; the body carries a message string.
    SystemException,
    /// The object key was unknown.
    ObjectNotExist,
}

impl ReplyStatus {
    fn code(self) -> u32 {
        match self {
            ReplyStatus::NoException => 0,
            ReplyStatus::SystemException => 2,
            ReplyStatus::ObjectNotExist => 3,
        }
    }

    fn from_code(code: u32) -> Option<ReplyStatus> {
        Some(match code {
            0 => ReplyStatus::NoException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::ObjectNotExist,
            _ => return None,
        })
    }
}

/// GIOP protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GiopError {
    /// The header did not start with `GIOP`.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8, u8),
    /// Unknown message type code.
    BadMsgType(u8),
    /// Unknown reply status code.
    BadReplyStatus(u32),
    /// Header or body failed to decode.
    Cdr(CdrError),
    /// The frame was shorter than the declared message size.
    ShortBody {
        /// Declared size.
        declared: usize,
        /// Actual body bytes present.
        actual: usize,
    },
}

impl std::fmt::Display for GiopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GiopError::BadMagic(m) => write!(f, "bad GIOP magic {m:?}"),
            GiopError::BadVersion(a, b) => write!(f, "unsupported GIOP version {a}.{b}"),
            GiopError::BadMsgType(t) => write!(f, "unknown GIOP message type {t}"),
            GiopError::BadReplyStatus(s) => write!(f, "unknown reply status {s}"),
            GiopError::Cdr(e) => write!(f, "CDR error: {e}"),
            GiopError::ShortBody { declared, actual } => {
                write!(f, "short GIOP body: declared {declared}, got {actual}")
            }
        }
    }
}

impl std::error::Error for GiopError {}

impl From<CdrError> for GiopError {
    fn from(e: CdrError) -> Self {
        GiopError::Cdr(e)
    }
}

/// A GIOP request message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMessage {
    /// Client-chosen id correlating the reply.
    pub request_id: u32,
    /// Whether a reply is expected (false = oneway).
    pub response_expected: bool,
    /// Opaque key identifying the target object.
    pub object_key: Vec<u8>,
    /// Operation name.
    pub operation: String,
    /// Marshalled in-parameters.
    pub body: Vec<u8>,
}

/// A GIOP reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMessage {
    /// Correlates with the request.
    pub request_id: u32,
    /// Outcome.
    pub status: ReplyStatus,
    /// Marshalled result (or exception message).
    pub body: Vec<u8>,
}

/// Either kind of incoming message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request.
    Request(RequestMessage),
    /// A reply.
    Reply(ReplyMessage),
    /// Connection close.
    CloseConnection,
    /// The peer could not parse what we sent (GIOP `MessageError`).
    Error,
}

fn write_header(enc: &mut CdrEncoder, msg_type: MsgType) {
    enc.write_u8(GIOP_MAGIC[0]);
    enc.write_u8(GIOP_MAGIC[1]);
    enc.write_u8(GIOP_MAGIC[2]);
    enc.write_u8(GIOP_MAGIC[3]);
    enc.write_u8(GIOP_VERSION.0);
    enc.write_u8(GIOP_VERSION.1);
    enc.write_u8(enc.endian().flag_bit());
    enc.write_u8(msg_type.code());
    enc.write_u32(0); // message size, patched later
}

fn patch_size(bytes: &mut [u8], endian: Endian) {
    let size = (bytes.len() - HEADER_LEN) as u32;
    let be = match endian {
        Endian::Big => size.to_be_bytes(),
        Endian::Little => size.to_le_bytes(),
    };
    bytes[8..12].copy_from_slice(&be);
}

impl RequestMessage {
    /// Encodes the full GIOP frame (header + request header + body).
    pub fn encode(&self, endian: Endian) -> Vec<u8> {
        let mut enc = CdrEncoder::new(endian);
        write_header(&mut enc, MsgType::Request);
        enc.write_u32(self.request_id);
        enc.write_bool(self.response_expected);
        enc.write_octets(&self.object_key);
        enc.write_string(&self.operation);
        enc.write_octets(&self.body);
        let mut bytes = enc.into_bytes();
        patch_size(&mut bytes, endian);
        bytes
    }
}

impl ReplyMessage {
    /// Encodes the full GIOP frame (header + reply header + body).
    pub fn encode(&self, endian: Endian) -> Vec<u8> {
        let mut enc = CdrEncoder::new(endian);
        write_header(&mut enc, MsgType::Reply);
        enc.write_u32(self.request_id);
        enc.write_u32(self.status.code());
        enc.write_octets(&self.body);
        let mut bytes = enc.into_bytes();
        patch_size(&mut bytes, endian);
        bytes
    }
}

/// Encodes a `CloseConnection` frame.
pub fn encode_close(endian: Endian) -> Vec<u8> {
    let mut enc = CdrEncoder::new(endian);
    write_header(&mut enc, MsgType::CloseConnection);
    let mut bytes = enc.into_bytes();
    patch_size(&mut bytes, endian);
    bytes
}

/// Encodes a `MessageError` frame — sent back when an incoming frame
/// fails to parse, so a (possibly fault-injected) peer learns its message
/// was garbage instead of waiting for a reply that will never come.
pub fn encode_error(endian: Endian) -> Vec<u8> {
    let mut enc = CdrEncoder::new(endian);
    write_header(&mut enc, MsgType::MessageError);
    let mut bytes = enc.into_bytes();
    patch_size(&mut bytes, endian);
    bytes
}

/// Decodes a complete GIOP frame.
///
/// # Errors
///
/// [`GiopError`] on any protocol violation.
pub fn decode(frame: &[u8]) -> Result<Message, GiopError> {
    if frame.len() < HEADER_LEN {
        return Err(GiopError::Cdr(CdrError::Truncated {
            needed: HEADER_LEN,
            remaining: frame.len(),
        }));
    }
    let magic = [frame[0], frame[1], frame[2], frame[3]];
    if magic != GIOP_MAGIC {
        return Err(GiopError::BadMagic(magic));
    }
    if (frame[4], frame[5]) != GIOP_VERSION {
        return Err(GiopError::BadVersion(frame[4], frame[5]));
    }
    let endian = Endian::from_flag(frame[6]);
    let msg_type = MsgType::from_code(frame[7]).ok_or(GiopError::BadMsgType(frame[7]))?;
    // Declared size (read with the frame's endianness).
    let mut hdr = CdrDecoder::new(&frame[8..12], endian);
    let declared = hdr.read_u32()? as usize;
    let body = &frame[HEADER_LEN..];
    if body.len() < declared {
        return Err(GiopError::ShortBody {
            declared,
            actual: body.len(),
        });
    }
    // Alignment in GIOP bodies restarts after the header.
    let mut dec = CdrDecoder::new(&body[..declared], endian);
    match msg_type {
        MsgType::Request => {
            let request_id = dec.read_u32()?;
            let response_expected = dec.read_bool()?;
            let object_key = dec.read_octets()?;
            let operation = dec.read_string()?;
            let req_body = dec.read_octets()?;
            Ok(Message::Request(RequestMessage {
                request_id,
                response_expected,
                object_key,
                operation,
                body: req_body,
            }))
        }
        MsgType::Reply => {
            let request_id = dec.read_u32()?;
            let code = dec.read_u32()?;
            let status = ReplyStatus::from_code(code).ok_or(GiopError::BadReplyStatus(code))?;
            let body = dec.read_octets()?;
            Ok(Message::Reply(ReplyMessage {
                request_id,
                status,
                body,
            }))
        }
        MsgType::CloseConnection => Ok(Message::CloseConnection),
        MsgType::MessageError => Ok(Message::Error),
    }
}

/// Reads the declared message size from a 12-byte header.
///
/// # Errors
///
/// [`GiopError`] if the header is malformed.
pub fn body_size(header: &[u8; HEADER_LEN]) -> Result<usize, GiopError> {
    if header[..4] != GIOP_MAGIC {
        return Err(GiopError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let endian = Endian::from_flag(header[6]);
    let mut dec = CdrDecoder::new(&header[8..12], endian);
    Ok(dec.read_u32()? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 7,
            response_expected: true,
            object_key: b"echo-1".to_vec(),
            operation: "echo".to_string(),
            body: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn request_roundtrip_both_endians() {
        for endian in [Endian::Big, Endian::Little] {
            let req = sample_request();
            let frame = req.encode(endian);
            assert_eq!(&frame[..4], b"GIOP");
            match decode(&frame).unwrap() {
                Message::Request(r) => assert_eq!(r, req),
                other => panic!("expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn reply_roundtrip() {
        let reply = ReplyMessage {
            request_id: 7,
            status: ReplyStatus::NoException,
            body: vec![0xAA; 64],
        };
        let frame = reply.encode(Endian::Big);
        match decode(&frame).unwrap() {
            Message::Reply(r) => assert_eq!(r, reply),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn declared_size_matches_frame() {
        let frame = sample_request().encode(Endian::Big);
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&frame[..HEADER_LEN]);
        assert_eq!(body_size(&header).unwrap(), frame.len() - HEADER_LEN);
    }

    #[test]
    fn cross_endian_decoding() {
        // Encode little, decode without being told: the flags byte governs.
        let frame = sample_request().encode(Endian::Little);
        match decode(&frame).unwrap() {
            Message::Request(r) => assert_eq!(r.operation, "echo"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_connection_roundtrip() {
        let frame = encode_close(Endian::Big);
        assert_eq!(decode(&frame).unwrap(), Message::CloseConnection);
    }

    #[test]
    fn message_error_roundtrip() {
        for endian in [Endian::Big, Endian::Little] {
            let frame = encode_error(endian);
            assert_eq!(frame.len(), HEADER_LEN, "MessageError has no body");
            assert_eq!(decode(&frame).unwrap(), Message::Error);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = sample_request().encode(Endian::Big);
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(GiopError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = sample_request().encode(Endian::Big);
        frame[4] = 9;
        assert!(matches!(decode(&frame), Err(GiopError::BadVersion(9, 0))));
    }

    #[test]
    fn short_body_rejected() {
        let frame = sample_request().encode(Endian::Big);
        let truncated = &frame[..frame.len() - 3];
        assert!(matches!(
            decode(truncated),
            Err(GiopError::ShortBody { .. })
        ));
    }

    #[test]
    fn oneway_request() {
        let mut req = sample_request();
        req.response_expected = false;
        let frame = req.encode(Endian::Big);
        match decode(&frame).unwrap() {
            Message::Request(r) => assert!(!r.response_expected),
            other => panic!("unexpected {other:?}"),
        }
    }
}
