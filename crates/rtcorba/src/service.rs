//! Servants and the object registry — the request-processing core shared
//! by both ORBs.

use std::collections::HashMap;
use std::sync::Arc;

use rtplatform::sync::RwLock;

use crate::giop::{ReplyMessage, ReplyStatus, RequestMessage, RequestView};

/// A CORBA-style servant: invoked by operation name with marshalled
/// arguments, returning a marshalled result.
pub trait Servant: Send + Sync {
    /// Handles one invocation.
    ///
    /// # Errors
    ///
    /// A `String` is marshalled back to the client as a system exception.
    fn invoke(&self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String>;
}

/// The echo servant used by the paper-style round-trip benchmarks:
/// `echo` returns its argument bytes unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct EchoServant;

impl Servant for EchoServant {
    fn invoke(&self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        match operation {
            "echo" => Ok(args.to_vec()),
            "reverse" => {
                let mut v = args.to_vec();
                v.reverse();
                Ok(v)
            }
            other => Err(format!("unknown operation {other:?}")),
        }
    }
}

/// Maps object keys to servants (the POA's active object map).
#[derive(Default)]
pub struct ObjectRegistry {
    map: RwLock<HashMap<Vec<u8>, Arc<dyn Servant>>>,
}

impl std::fmt::Debug for ObjectRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectRegistry({} objects)", self.map.read().len())
    }
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with an [`EchoServant`] under the
    /// key `b"echo"` — the benchmark configuration.
    pub fn with_echo() -> Arc<Self> {
        let reg = ObjectRegistry::new();
        reg.register(b"echo".to_vec(), Arc::new(EchoServant));
        Arc::new(reg)
    }

    /// Registers (or replaces) a servant under `key`.
    pub fn register(&self, key: Vec<u8>, servant: Arc<dyn Servant>) {
        self.map.write().insert(key, servant);
    }

    /// Removes a servant.
    pub fn unregister(&self, key: &[u8]) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// Looks up a servant.
    pub fn lookup(&self, key: &[u8]) -> Option<Arc<dyn Servant>> {
        self.map.read().get(key).cloned()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Full request-processing step: locates the servant, invokes it and
    /// builds the reply message (including exception replies). The
    /// request's service contexts are echoed into every reply, so
    /// tracing clients can correlate even exception paths.
    pub fn dispatch(&self, req: &RequestMessage) -> ReplyMessage {
        self.dispatch_raw(
            req.request_id,
            &req.object_key,
            &req.operation,
            &req.body,
            || req.service_context.clone(),
        )
    }

    /// [`dispatch`](Self::dispatch) over an in-place request view: the
    /// key, operation and body are used where they lie in the frame's
    /// segments; the only copy made is the echoed context list.
    pub fn dispatch_view(&self, req: &RequestView<'_>) -> ReplyMessage {
        self.dispatch_raw(
            req.request_id,
            &req.object_key,
            &req.operation,
            &req.body,
            || req.owned_contexts(),
        )
    }

    fn dispatch_raw(
        &self,
        request_id: u32,
        object_key: &[u8],
        operation: &str,
        body: &[u8],
        contexts: impl Fn() -> Vec<(u32, Vec<u8>)>,
    ) -> ReplyMessage {
        match self.lookup(object_key) {
            None => ReplyMessage {
                request_id,
                status: ReplyStatus::ObjectNotExist,
                body: Vec::new(),
                service_context: contexts(),
            },
            Some(servant) => match servant.invoke(operation, body) {
                Ok(body) => ReplyMessage {
                    request_id,
                    status: ReplyStatus::NoException,
                    body,
                    service_context: contexts(),
                },
                Err(msg) => ReplyMessage {
                    request_id,
                    status: ReplyStatus::SystemException,
                    body: msg.into_bytes(),
                    service_context: contexts(),
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(key: &[u8], op: &str, body: &[u8]) -> RequestMessage {
        RequestMessage {
            request_id: 9,
            response_expected: true,
            object_key: key.to_vec(),
            operation: op.to_string(),
            body: body.to_vec(),
            service_context: Vec::new(),
        }
    }

    #[test]
    fn dispatch_echoes_service_context() {
        let reg = ObjectRegistry::with_echo();
        let mut req = request(b"echo", "echo", &[1]);
        req.service_context = vec![(0x5452_4143, vec![1, 2, 3])];
        assert_eq!(
            reg.dispatch(&req).service_context,
            req.service_context,
            "normal reply echoes contexts"
        );
        let mut bad = request(b"nope", "echo", &[]);
        bad.service_context = vec![(7, vec![9])];
        assert_eq!(
            reg.dispatch(&bad).service_context,
            bad.service_context,
            "exception replies echo contexts too"
        );
    }

    #[test]
    fn echo_servant_operations() {
        let s = EchoServant;
        assert_eq!(s.invoke("echo", &[1, 2, 3]).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.invoke("reverse", &[1, 2, 3]).unwrap(), vec![3, 2, 1]);
        assert!(s.invoke("bogus", &[]).is_err());
    }

    #[test]
    fn dispatch_routes_to_servant() {
        let reg = ObjectRegistry::with_echo();
        let reply = reg.dispatch(&request(b"echo", "echo", &[7, 7]));
        assert_eq!(reply.status, ReplyStatus::NoException);
        assert_eq!(reply.body, vec![7, 7]);
        assert_eq!(reply.request_id, 9);
    }

    #[test]
    fn dispatch_unknown_object() {
        let reg = ObjectRegistry::with_echo();
        let reply = reg.dispatch(&request(b"nope", "echo", &[]));
        assert_eq!(reply.status, ReplyStatus::ObjectNotExist);
    }

    #[test]
    fn dispatch_servant_exception() {
        let reg = ObjectRegistry::with_echo();
        let reply = reg.dispatch(&request(b"echo", "explode", &[]));
        assert_eq!(reply.status, ReplyStatus::SystemException);
        assert!(String::from_utf8(reply.body)
            .unwrap()
            .contains("unknown operation"));
    }

    #[test]
    fn register_unregister() {
        let reg = ObjectRegistry::new();
        assert!(reg.is_empty());
        reg.register(b"x".to_vec(), Arc::new(EchoServant));
        assert_eq!(reg.len(), 1);
        assert!(reg.lookup(b"x").is_some());
        assert!(reg.unregister(b"x"));
        assert!(!reg.unregister(b"x"));
        assert!(reg.is_empty());
    }
}

/// A servant that counts invocations — used by oneway tests and examples.
#[derive(Debug, Default)]
pub struct CountingServant {
    count: std::sync::atomic::AtomicU64,
}

impl CountingServant {
    /// Invocations observed so far.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl Servant for CountingServant {
    fn invoke(&self, _operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let n = self.count.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        let _ = args;
        Ok(n.to_be_bytes().to_vec())
    }
}
