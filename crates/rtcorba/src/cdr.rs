//! CDR (Common Data Representation) marshalling.
//!
//! Implements the alignment-sensitive encoding CORBA GIOP messages use —
//! the paper singles out marshalling/demarshalling as "the most
//! computationally-intensive modules of CORBA" (§3.3), so this is the hot
//! path of both ORBs. Primitives are aligned to their natural size
//! relative to the start of the encapsulation; both endiannesses are
//! supported as CDR requires.

use std::fmt;

/// Byte order of an encapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Endian {
    /// Big-endian (network order).
    #[default]
    Big,
    /// Little-endian.
    Little,
}

impl Endian {
    /// The GIOP flags bit for this byte order (bit 0: 1 = little).
    pub fn flag_bit(self) -> u8 {
        match self {
            Endian::Big => 0,
            Endian::Little => 1,
        }
    }

    /// Parses the GIOP flags byte.
    pub fn from_flag(flags: u8) -> Endian {
        if flags & 1 == 1 {
            Endian::Little
        } else {
            Endian::Big
        }
    }

    /// The byte order native to this machine.
    pub fn native() -> Endian {
        if cfg!(target_endian = "little") {
            Endian::Little
        } else {
            Endian::Big
        }
    }
}

/// CDR decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// Input ended before the value was complete.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A string was not valid UTF-8 or not NUL-terminated.
    BadString,
    /// A boolean octet was neither 0 nor 1.
    BadBoolean(u8),
    /// A declared sequence/string length is implausibly large.
    LengthOverflow(u32),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated CDR stream: needed {needed} bytes, {remaining} remaining"
                )
            }
            CdrError::BadString => write!(f, "malformed CDR string"),
            CdrError::BadBoolean(b) => write!(f, "invalid CDR boolean {b:#x}"),
            CdrError::LengthOverflow(n) => write!(f, "CDR length {n} exceeds the stream"),
        }
    }
}

impl std::error::Error for CdrError {}

/// CDR encoder writing into a growable buffer.
///
/// # Examples
///
/// ```
/// use rtcorba::cdr::{CdrEncoder, CdrDecoder, Endian};
///
/// let mut enc = CdrEncoder::new(Endian::Big);
/// enc.write_u8(1);
/// enc.write_u32(0xAABBCCDD); // aligned to 4: three pad bytes inserted
/// enc.write_string("echo");
/// let bytes = enc.into_bytes();
/// let mut dec = CdrDecoder::new(&bytes, Endian::Big);
/// assert_eq!(dec.read_u8()?, 1);
/// assert_eq!(dec.read_u32()?, 0xAABBCCDD);
/// assert_eq!(dec.read_string()?, "echo");
/// # Ok::<(), rtcorba::cdr::CdrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CdrEncoder {
    buf: Vec<u8>,
    endian: Endian,
}

impl CdrEncoder {
    /// Creates an encoder with the given byte order.
    pub fn new(endian: Endian) -> CdrEncoder {
        CdrEncoder {
            buf: Vec::new(),
            endian,
        }
    }

    /// Creates an encoder reusing an existing buffer (cleared).
    pub fn with_buffer(mut buf: Vec<u8>, endian: Endian) -> CdrEncoder {
        buf.clear();
        CdrEncoder { buf, endian }
    }

    /// The byte order in use.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Inserts padding so the next write lands on `alignment`.
    pub fn align(&mut self, alignment: usize) {
        let misaligned = self.buf.len() % alignment;
        if misaligned != 0 {
            self.buf.resize(self.buf.len() + alignment - misaligned, 0);
        }
    }

    /// Writes one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as an octet.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Writes an aligned 16-bit unsigned integer.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 32-bit unsigned integer.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 64-bit unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 16-bit signed integer.
    pub fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    /// Writes an aligned 32-bit signed integer.
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    /// Writes an aligned 64-bit signed integer.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Writes an aligned IEEE-754 float.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Writes an aligned IEEE-754 double.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a CDR string: u32 length (including NUL), bytes, NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Writes a `sequence<octet>`: u32 length then raw bytes.
    pub fn write_octets(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// CDR decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct CdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    endian: Endian,
}

impl<'a> CdrDecoder<'a> {
    /// Creates a decoder with the given byte order.
    pub fn new(buf: &'a [u8], endian: Endian) -> CdrDecoder<'a> {
        CdrDecoder {
            buf,
            pos: 0,
            endian,
        }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        if self.remaining() < n {
            return Err(CdrError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skips padding so the next read is aligned.
    pub fn align(&mut self, alignment: usize) -> Result<(), CdrError> {
        let misaligned = self.pos % alignment;
        if misaligned != 0 {
            self.take(alignment - misaligned)?;
        }
        Ok(())
    }

    /// Reads one octet.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean octet.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CdrError::BadBoolean(other)),
        }
    }

    /// Reads an aligned 16-bit unsigned integer.
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2)?;
        let b = self.take(2)?;
        let arr = [b[0], b[1]];
        Ok(match self.endian {
            Endian::Big => u16::from_be_bytes(arr),
            Endian::Little => u16::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 32-bit unsigned integer.
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4)?;
        let b = self.take(4)?;
        let arr = [b[0], b[1], b[2], b[3]];
        Ok(match self.endian {
            Endian::Big => u32::from_be_bytes(arr),
            Endian::Little => u32::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 64-bit unsigned integer.
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8)?;
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(match self.endian {
            Endian::Big => u64::from_be_bytes(arr),
            Endian::Little => u64::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 16-bit signed integer.
    pub fn read_i16(&mut self) -> Result<i16, CdrError> {
        Ok(self.read_u16()? as i16)
    }

    /// Reads an aligned 32-bit signed integer.
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        Ok(self.read_u32()? as i32)
    }

    /// Reads an aligned 64-bit signed integer.
    pub fn read_i64(&mut self) -> Result<i64, CdrError> {
        Ok(self.read_u64()? as i64)
    }

    /// Reads an aligned IEEE-754 float.
    pub fn read_f32(&mut self) -> Result<f32, CdrError> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Reads an aligned IEEE-754 double.
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a CDR string.
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_u32()?;
        if len == 0 || len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        let bytes = self.take(len as usize)?;
        if bytes[bytes.len() - 1] != 0 {
            return Err(CdrError::BadString);
        }
        String::from_utf8(bytes[..bytes.len() - 1].to_vec()).map_err(|_| CdrError::BadString)
    }

    /// Skips a length-prefixed octet sequence (the layout shared by
    /// `sequence<octet>` and CDR strings) without copying it; returns
    /// the payload length skipped. Used by scanners that only care
    /// about a later field, e.g. [`crate::giop::peek_trace`].
    pub fn skip_octets(&mut self) -> Result<usize, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        self.take(len as usize)?;
        Ok(len as usize)
    }

    /// Reads a `sequence<octet>`.
    pub fn read_octets(&mut self) -> Result<Vec<u8>, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_inserts_padding() {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u8(0xFF);
        enc.write_u32(1); // 3 pad bytes
        assert_eq!(enc.len(), 8);
        enc.write_u8(2);
        enc.write_u64(3); // 7 pad bytes to offset 16
        assert_eq!(enc.len(), 24);
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert_eq!(dec.read_u8().unwrap(), 0xFF);
        assert_eq!(dec.read_u32().unwrap(), 1);
        assert_eq!(dec.read_u8().unwrap(), 2);
        assert_eq!(dec.read_u64().unwrap(), 3);
    }

    #[test]
    fn both_endians_roundtrip() {
        for endian in [Endian::Big, Endian::Little] {
            let mut enc = CdrEncoder::new(endian);
            enc.write_u16(0x1234);
            enc.write_i32(-77);
            enc.write_i64(-1_000_000_007);
            enc.write_f32(1.5);
            enc.write_f64(-2.25);
            enc.write_bool(true);
            enc.write_string("héllo");
            enc.write_octets(&[9, 8, 7]);
            let bytes = enc.into_bytes();
            let mut dec = CdrDecoder::new(&bytes, endian);
            assert_eq!(dec.read_u16().unwrap(), 0x1234);
            assert_eq!(dec.read_i32().unwrap(), -77);
            assert_eq!(dec.read_i64().unwrap(), -1_000_000_007);
            assert_eq!(dec.read_f32().unwrap(), 1.5);
            assert_eq!(dec.read_f64().unwrap(), -2.25);
            assert!(dec.read_bool().unwrap());
            assert_eq!(dec.read_string().unwrap(), "héllo");
            assert_eq!(dec.read_octets().unwrap(), vec![9, 8, 7]);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn endian_differs_on_wire() {
        let mut big = CdrEncoder::new(Endian::Big);
        big.write_u32(0x01020304);
        let mut little = CdrEncoder::new(Endian::Little);
        little.write_u32(0x01020304);
        assert_eq!(big.as_bytes(), &[1, 2, 3, 4]);
        assert_eq!(little.as_bytes(), &[4, 3, 2, 1]);
    }

    #[test]
    fn truncated_reads_reported() {
        let mut dec = CdrDecoder::new(&[0, 0], Endian::Big);
        assert!(matches!(dec.read_u32(), Err(CdrError::Truncated { .. })));
    }

    #[test]
    fn bad_boolean_rejected() {
        let mut dec = CdrDecoder::new(&[7], Endian::Big);
        assert!(matches!(dec.read_bool(), Err(CdrError::BadBoolean(7))));
    }

    #[test]
    fn string_validation() {
        // Length claims more than available.
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u32(100);
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert!(matches!(
            dec.read_string(),
            Err(CdrError::LengthOverflow(100))
        ));
        // Missing NUL terminator.
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u32(2);
        enc.write_u8(b'a');
        enc.write_u8(b'b');
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert!(matches!(dec.read_string(), Err(CdrError::BadString)));
    }

    #[test]
    fn flag_bits() {
        assert_eq!(Endian::Big.flag_bit(), 0);
        assert_eq!(Endian::Little.flag_bit(), 1);
        assert_eq!(Endian::from_flag(0), Endian::Big);
        assert_eq!(Endian::from_flag(1), Endian::Little);
        assert_eq!(Endian::from_flag(3), Endian::Little);
    }

    #[test]
    fn buffer_reuse_clears() {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u64(42);
        let buf = enc.into_bytes();
        let enc2 = CdrEncoder::with_buffer(buf, Endian::Big);
        assert!(enc2.is_empty());
    }
}
