//! CDR (Common Data Representation) marshalling.
//!
//! Implements the alignment-sensitive encoding CORBA GIOP messages use —
//! the paper singles out marshalling/demarshalling as "the most
//! computationally-intensive modules of CORBA" (§3.3), so this is the hot
//! path of both ORBs. Primitives are aligned to their natural size
//! relative to the start of the encapsulation; both endiannesses are
//! supported as CDR requires.

use std::borrow::Cow;
use std::fmt;

use rtplatform::bufchain::BufChain;

/// Byte order of an encapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Endian {
    /// Big-endian (network order).
    #[default]
    Big,
    /// Little-endian.
    Little,
}

impl Endian {
    /// The GIOP flags bit for this byte order (bit 0: 1 = little).
    pub fn flag_bit(self) -> u8 {
        match self {
            Endian::Big => 0,
            Endian::Little => 1,
        }
    }

    /// Parses the GIOP flags byte.
    pub fn from_flag(flags: u8) -> Endian {
        if flags & 1 == 1 {
            Endian::Little
        } else {
            Endian::Big
        }
    }

    /// The byte order native to this machine.
    pub fn native() -> Endian {
        if cfg!(target_endian = "little") {
            Endian::Little
        } else {
            Endian::Big
        }
    }
}

/// CDR decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// Input ended before the value was complete.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A string was not valid UTF-8 or not NUL-terminated.
    BadString,
    /// A boolean octet was neither 0 nor 1.
    BadBoolean(u8),
    /// A declared sequence/string length is implausibly large.
    LengthOverflow(u32),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated CDR stream: needed {needed} bytes, {remaining} remaining"
                )
            }
            CdrError::BadString => write!(f, "malformed CDR string"),
            CdrError::BadBoolean(b) => write!(f, "invalid CDR boolean {b:#x}"),
            CdrError::LengthOverflow(n) => write!(f, "CDR length {n} exceeds the stream"),
        }
    }
}

impl std::error::Error for CdrError {}

/// CDR encoder writing into a growable buffer.
///
/// # Examples
///
/// ```
/// use rtcorba::cdr::{CdrEncoder, CdrDecoder, Endian};
///
/// let mut enc = CdrEncoder::new(Endian::Big);
/// enc.write_u8(1);
/// enc.write_u32(0xAABBCCDD); // aligned to 4: three pad bytes inserted
/// enc.write_string("echo");
/// let bytes = enc.into_bytes();
/// let mut dec = CdrDecoder::new(&bytes, Endian::Big);
/// assert_eq!(dec.read_u8()?, 1);
/// assert_eq!(dec.read_u32()?, 0xAABBCCDD);
/// assert_eq!(dec.read_string()?, "echo");
/// # Ok::<(), rtcorba::cdr::CdrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CdrEncoder {
    buf: Vec<u8>,
    endian: Endian,
}

impl CdrEncoder {
    /// Creates an encoder with the given byte order.
    pub fn new(endian: Endian) -> CdrEncoder {
        CdrEncoder {
            buf: Vec::new(),
            endian,
        }
    }

    /// Creates an encoder reusing an existing buffer (cleared).
    pub fn with_buffer(mut buf: Vec<u8>, endian: Endian) -> CdrEncoder {
        buf.clear();
        CdrEncoder { buf, endian }
    }

    /// The byte order in use.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Inserts padding so the next write lands on `alignment`.
    pub fn align(&mut self, alignment: usize) {
        let misaligned = self.buf.len() % alignment;
        if misaligned != 0 {
            self.buf.resize(self.buf.len() + alignment - misaligned, 0);
        }
    }

    /// Writes one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as an octet.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Writes an aligned 16-bit unsigned integer.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 32-bit unsigned integer.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 64-bit unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        match self.endian {
            Endian::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            Endian::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 16-bit signed integer.
    pub fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    /// Writes an aligned 32-bit signed integer.
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    /// Writes an aligned 64-bit signed integer.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Writes an aligned IEEE-754 float.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Writes an aligned IEEE-754 double.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a CDR string: u32 length (including NUL), bytes, NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Writes a `sequence<octet>`: u32 length then raw bytes.
    pub fn write_octets(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// CDR encoder writing directly into a segment chain — the zero-copy
/// counterpart of [`CdrEncoder`]. Bytes land in pool-leased segments
/// (crossing boundaries transparently) and are never moved again: the
/// GIOP header is later prepended into the chain's headroom and the
/// segments go to the socket via vectored writes.
///
/// Alignment is maintained relative to the *body* start (the chain's
/// [`BufChain::body_len`]), matching how [`CdrDecoder`] aligns when
/// decoding a GIOP body. The legacy [`CdrEncoder`] aligns relative to
/// the frame start (header included); the two agree for every
/// alignment ≤ 4 because the GIOP header is 12 bytes (12 ≡ 0 mod 4).
/// Only 8-byte-aligned primitives would diverge — no GIOP message body
/// in this ORB uses one, and the wire-compat property tests pin the
/// byte-for-byte agreement.
#[derive(Debug)]
pub struct CdrChainEncoder<'a> {
    chain: &'a mut BufChain,
    endian: Endian,
}

impl<'a> CdrChainEncoder<'a> {
    /// Wraps a chain; writes append after whatever the chain holds.
    pub fn new(chain: &'a mut BufChain, endian: Endian) -> CdrChainEncoder<'a> {
        CdrChainEncoder { chain, endian }
    }

    /// The byte order in use.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Logical body offset (alignment reference point).
    pub fn position(&self) -> usize {
        self.chain.body_len()
    }

    /// Inserts padding so the next write lands on `alignment`
    /// (relative to the body start).
    pub fn align(&mut self, alignment: usize) {
        let misaligned = self.chain.body_len() % alignment;
        if misaligned != 0 {
            self.chain.pad(alignment - misaligned);
        }
    }

    /// Writes one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.chain.put(&[v]);
    }

    /// Writes a boolean as an octet.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Writes an aligned 16-bit unsigned integer.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        match self.endian {
            Endian::Big => self.chain.put(&v.to_be_bytes()),
            Endian::Little => self.chain.put(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 32-bit unsigned integer.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        match self.endian {
            Endian::Big => self.chain.put(&v.to_be_bytes()),
            Endian::Little => self.chain.put(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 64-bit unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        match self.endian {
            Endian::Big => self.chain.put(&v.to_be_bytes()),
            Endian::Little => self.chain.put(&v.to_le_bytes()),
        }
    }

    /// Writes an aligned 16-bit signed integer.
    pub fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    /// Writes an aligned 32-bit signed integer.
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    /// Writes an aligned 64-bit signed integer.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Writes an aligned IEEE-754 float.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Writes an aligned IEEE-754 double.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a CDR string: u32 length (including NUL), bytes, NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.chain.put(s.as_bytes());
        self.chain.put(&[0]);
    }

    /// Writes a `sequence<octet>`: u32 length then raw bytes.
    pub fn write_octets(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.chain.put(bytes);
    }
}

/// CDR decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct CdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    endian: Endian,
}

impl<'a> CdrDecoder<'a> {
    /// Creates a decoder with the given byte order.
    pub fn new(buf: &'a [u8], endian: Endian) -> CdrDecoder<'a> {
        CdrDecoder {
            buf,
            pos: 0,
            endian,
        }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        if self.remaining() < n {
            return Err(CdrError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skips padding so the next read is aligned.
    pub fn align(&mut self, alignment: usize) -> Result<(), CdrError> {
        let misaligned = self.pos % alignment;
        if misaligned != 0 {
            self.take(alignment - misaligned)?;
        }
        Ok(())
    }

    /// Reads one octet.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean octet.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CdrError::BadBoolean(other)),
        }
    }

    /// Reads an aligned 16-bit unsigned integer.
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2)?;
        let b = self.take(2)?;
        let arr = [b[0], b[1]];
        Ok(match self.endian {
            Endian::Big => u16::from_be_bytes(arr),
            Endian::Little => u16::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 32-bit unsigned integer.
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4)?;
        let b = self.take(4)?;
        let arr = [b[0], b[1], b[2], b[3]];
        Ok(match self.endian {
            Endian::Big => u32::from_be_bytes(arr),
            Endian::Little => u32::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 64-bit unsigned integer.
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8)?;
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(match self.endian {
            Endian::Big => u64::from_be_bytes(arr),
            Endian::Little => u64::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 16-bit signed integer.
    pub fn read_i16(&mut self) -> Result<i16, CdrError> {
        Ok(self.read_u16()? as i16)
    }

    /// Reads an aligned 32-bit signed integer.
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        Ok(self.read_u32()? as i32)
    }

    /// Reads an aligned 64-bit signed integer.
    pub fn read_i64(&mut self) -> Result<i64, CdrError> {
        Ok(self.read_u64()? as i64)
    }

    /// Reads an aligned IEEE-754 float.
    pub fn read_f32(&mut self) -> Result<f32, CdrError> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Reads an aligned IEEE-754 double.
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a CDR string.
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_u32()?;
        if len == 0 || len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        let bytes = self.take(len as usize)?;
        if bytes[bytes.len() - 1] != 0 {
            return Err(CdrError::BadString);
        }
        String::from_utf8(bytes[..bytes.len() - 1].to_vec()).map_err(|_| CdrError::BadString)
    }

    /// Skips a length-prefixed octet sequence (the layout shared by
    /// `sequence<octet>` and CDR strings) without copying it; returns
    /// the payload length skipped. Used by scanners that only care
    /// about a later field, e.g. [`crate::giop::peek_trace`].
    pub fn skip_octets(&mut self) -> Result<usize, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        self.take(len as usize)?;
        Ok(len as usize)
    }

    /// Reads a `sequence<octet>`.
    pub fn read_octets(&mut self) -> Result<Vec<u8>, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }
}

/// CDR decoder over a *fragmented* buffer — a sequence of borrowed
/// segment regions in wire order, as produced by [`rtplatform::bufchain::
/// FrameBuf::slices`]. Decodes in place: sequence and string payloads
/// come back as [`Cow::Borrowed`] views into the segments whenever they
/// do not straddle a boundary (the common case), and primitives that do
/// straddle are reassembled through an 8-byte stack buffer. Semantics
/// (alignment, validation, errors) are identical to [`CdrDecoder`]; the
/// wire-compat property tests enforce the agreement on random frames.
#[derive(Debug, Clone)]
pub struct CdrSliceDecoder<'a> {
    parts: &'a [&'a [u8]],
    part: usize,
    off: usize,
    pos: usize,
    total: usize,
    endian: Endian,
}

impl<'a> CdrSliceDecoder<'a> {
    /// Creates a decoder over `parts` (concatenated in order).
    pub fn new(parts: &'a [&'a [u8]], endian: Endian) -> CdrSliceDecoder<'a> {
        CdrSliceDecoder {
            parts,
            part: 0,
            off: 0,
            pos: 0,
            total: parts.iter().map(|p| p.len()).sum(),
            endian,
        }
    }

    /// A decoder over the same `parts` that starts `skip` bytes in and
    /// sees at most `len` bytes, with alignment rebased to the new
    /// start — how a GIOP body (alignment restarts after the header)
    /// is decoded in place from a fragmented frame.
    pub fn sub(
        parts: &'a [&'a [u8]],
        endian: Endian,
        skip: usize,
        len: usize,
    ) -> Result<CdrSliceDecoder<'a>, CdrError> {
        let mut d = CdrSliceDecoder::new(parts, endian);
        d.check(skip)?;
        d.advance(skip);
        d.total = (d.total - skip).min(len);
        d.pos = 0;
        Ok(d)
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.total - self.pos
    }

    fn check(&self, n: usize) -> Result<(), CdrError> {
        if self.remaining() < n {
            return Err(CdrError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Advances past `n` bytes (which must be available).
    fn advance(&mut self, mut n: usize) {
        self.pos += n;
        while n > 0 {
            let here = self.parts[self.part].len() - self.off;
            if n < here {
                self.off += n;
                return;
            }
            n -= here;
            self.part += 1;
            self.off = 0;
        }
        // Skip any empty parts so `contiguous` sees real bytes.
        while self.part < self.parts.len() && self.off == self.parts[self.part].len() {
            self.part += 1;
            self.off = 0;
        }
    }

    /// A borrowed view of the next `n` bytes if they are contiguous in
    /// one part (does not consume).
    fn contiguous(&self, n: usize) -> Option<&'a [u8]> {
        let p = self.parts.get(self.part)?;
        if p.len() - self.off >= n {
            Some(&p[self.off..self.off + n])
        } else {
            None
        }
    }

    /// Consumes `n` bytes into `out` (must be available).
    fn copy_out(&mut self, out: &mut [u8]) {
        let mut done = 0;
        while done < out.len() {
            let p = self.parts[self.part];
            let here = (p.len() - self.off).min(out.len() - done);
            out[done..done + here].copy_from_slice(&p[self.off..self.off + here]);
            done += here;
            self.advance(here);
        }
    }

    /// Consumes `n` bytes as a zero-copy view when contiguous, or an
    /// owned copy when they straddle a boundary.
    fn take_view(&mut self, n: usize) -> Result<Cow<'a, [u8]>, CdrError> {
        self.check(n)?;
        if let Some(view) = self.contiguous(n) {
            self.advance(n);
            return Ok(Cow::Borrowed(view));
        }
        let mut out = vec![0u8; n];
        self.copy_out(&mut out);
        Ok(Cow::Owned(out))
    }

    /// Skips padding so the next read is aligned.
    pub fn align(&mut self, alignment: usize) -> Result<(), CdrError> {
        let misaligned = self.pos % alignment;
        if misaligned != 0 {
            let pad = alignment - misaligned;
            self.check(pad)?;
            self.advance(pad);
        }
        Ok(())
    }

    fn take_fixed<const N: usize>(&mut self) -> Result<[u8; N], CdrError> {
        self.check(N)?;
        let mut arr = [0u8; N];
        if let Some(view) = self.contiguous(N) {
            arr.copy_from_slice(view);
            self.advance(N);
        } else {
            self.copy_out(&mut arr);
        }
        Ok(arr)
    }

    /// Reads one octet.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        Ok(self.take_fixed::<1>()?[0])
    }

    /// Reads a boolean octet.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CdrError::BadBoolean(other)),
        }
    }

    /// Reads an aligned 16-bit unsigned integer.
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2)?;
        let arr = self.take_fixed::<2>()?;
        Ok(match self.endian {
            Endian::Big => u16::from_be_bytes(arr),
            Endian::Little => u16::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 32-bit unsigned integer.
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4)?;
        let arr = self.take_fixed::<4>()?;
        Ok(match self.endian {
            Endian::Big => u32::from_be_bytes(arr),
            Endian::Little => u32::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 64-bit unsigned integer.
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8)?;
        let arr = self.take_fixed::<8>()?;
        Ok(match self.endian {
            Endian::Big => u64::from_be_bytes(arr),
            Endian::Little => u64::from_le_bytes(arr),
        })
    }

    /// Reads an aligned 16-bit signed integer.
    pub fn read_i16(&mut self) -> Result<i16, CdrError> {
        Ok(self.read_u16()? as i16)
    }

    /// Reads an aligned 32-bit signed integer.
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        Ok(self.read_u32()? as i32)
    }

    /// Reads an aligned 64-bit signed integer.
    pub fn read_i64(&mut self) -> Result<i64, CdrError> {
        Ok(self.read_u64()? as i64)
    }

    /// Reads an aligned IEEE-754 float.
    pub fn read_f32(&mut self) -> Result<f32, CdrError> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Reads an aligned IEEE-754 double.
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a CDR string as a zero-copy view when possible.
    pub fn read_string_view(&mut self) -> Result<Cow<'a, str>, CdrError> {
        let len = self.read_u32()?;
        if len == 0 || len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        let bytes = self.take_view(len as usize)?;
        if bytes[bytes.len() - 1] != 0 {
            return Err(CdrError::BadString);
        }
        match bytes {
            Cow::Borrowed(b) => std::str::from_utf8(&b[..b.len() - 1])
                .map(Cow::Borrowed)
                .map_err(|_| CdrError::BadString),
            Cow::Owned(mut v) => {
                v.pop();
                String::from_utf8(v)
                    .map(Cow::Owned)
                    .map_err(|_| CdrError::BadString)
            }
        }
    }

    /// Reads a CDR string into an owned `String`.
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        Ok(self.read_string_view()?.into_owned())
    }

    /// Reads a `sequence<octet>` as a zero-copy view when possible.
    pub fn read_octets_view(&mut self) -> Result<Cow<'a, [u8]>, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        self.take_view(len as usize)
    }

    /// Reads a `sequence<octet>` into an owned `Vec`.
    pub fn read_octets(&mut self) -> Result<Vec<u8>, CdrError> {
        Ok(self.read_octets_view()?.into_owned())
    }

    /// Skips a length-prefixed octet sequence without copying; returns
    /// the payload length skipped.
    pub fn skip_octets(&mut self) -> Result<usize, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverflow(len));
        }
        self.advance(len as usize);
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_inserts_padding() {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u8(0xFF);
        enc.write_u32(1); // 3 pad bytes
        assert_eq!(enc.len(), 8);
        enc.write_u8(2);
        enc.write_u64(3); // 7 pad bytes to offset 16
        assert_eq!(enc.len(), 24);
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert_eq!(dec.read_u8().unwrap(), 0xFF);
        assert_eq!(dec.read_u32().unwrap(), 1);
        assert_eq!(dec.read_u8().unwrap(), 2);
        assert_eq!(dec.read_u64().unwrap(), 3);
    }

    #[test]
    fn both_endians_roundtrip() {
        for endian in [Endian::Big, Endian::Little] {
            let mut enc = CdrEncoder::new(endian);
            enc.write_u16(0x1234);
            enc.write_i32(-77);
            enc.write_i64(-1_000_000_007);
            enc.write_f32(1.5);
            enc.write_f64(-2.25);
            enc.write_bool(true);
            enc.write_string("héllo");
            enc.write_octets(&[9, 8, 7]);
            let bytes = enc.into_bytes();
            let mut dec = CdrDecoder::new(&bytes, endian);
            assert_eq!(dec.read_u16().unwrap(), 0x1234);
            assert_eq!(dec.read_i32().unwrap(), -77);
            assert_eq!(dec.read_i64().unwrap(), -1_000_000_007);
            assert_eq!(dec.read_f32().unwrap(), 1.5);
            assert_eq!(dec.read_f64().unwrap(), -2.25);
            assert!(dec.read_bool().unwrap());
            assert_eq!(dec.read_string().unwrap(), "héllo");
            assert_eq!(dec.read_octets().unwrap(), vec![9, 8, 7]);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn endian_differs_on_wire() {
        let mut big = CdrEncoder::new(Endian::Big);
        big.write_u32(0x01020304);
        let mut little = CdrEncoder::new(Endian::Little);
        little.write_u32(0x01020304);
        assert_eq!(big.as_bytes(), &[1, 2, 3, 4]);
        assert_eq!(little.as_bytes(), &[4, 3, 2, 1]);
    }

    #[test]
    fn truncated_reads_reported() {
        let mut dec = CdrDecoder::new(&[0, 0], Endian::Big);
        assert!(matches!(dec.read_u32(), Err(CdrError::Truncated { .. })));
    }

    #[test]
    fn bad_boolean_rejected() {
        let mut dec = CdrDecoder::new(&[7], Endian::Big);
        assert!(matches!(dec.read_bool(), Err(CdrError::BadBoolean(7))));
    }

    #[test]
    fn string_validation() {
        // Length claims more than available.
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u32(100);
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert!(matches!(
            dec.read_string(),
            Err(CdrError::LengthOverflow(100))
        ));
        // Missing NUL terminator.
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u32(2);
        enc.write_u8(b'a');
        enc.write_u8(b'b');
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes, Endian::Big);
        assert!(matches!(dec.read_string(), Err(CdrError::BadString)));
    }

    #[test]
    fn flag_bits() {
        assert_eq!(Endian::Big.flag_bit(), 0);
        assert_eq!(Endian::Little.flag_bit(), 1);
        assert_eq!(Endian::from_flag(0), Endian::Big);
        assert_eq!(Endian::from_flag(1), Endian::Little);
        assert_eq!(Endian::from_flag(3), Endian::Little);
    }

    fn chunked<'a>(bytes: &'a [u8], at: &[usize]) -> Vec<&'a [u8]> {
        let mut parts = Vec::new();
        let mut prev = 0;
        for &cut in at {
            parts.push(&bytes[prev..cut]);
            prev = cut;
        }
        parts.push(&bytes[prev..]);
        parts
    }

    #[test]
    fn chain_encoder_matches_vec_encoder() {
        use rtplatform::bufchain::SegPool;
        // Deliberately tiny segments so every multi-byte primitive can
        // straddle a boundary.
        let pool = SegPool::new(32, 8);
        for endian in [Endian::Big, Endian::Little] {
            let mut legacy = CdrEncoder::new(endian);
            let mut chain = BufChain::with_headroom(&pool, 0);
            let mut enc = CdrChainEncoder::new(&mut chain, endian);
            legacy.write_u8(7);
            legacy.write_u16(0x1234);
            legacy.write_u32(0xAABB_CCDD);
            legacy.write_bool(true);
            legacy.write_string("straddle-me-please");
            legacy.write_octets(&[9; 21]);
            legacy.write_i32(-5);
            enc.write_u8(7);
            enc.write_u16(0x1234);
            enc.write_u32(0xAABB_CCDD);
            enc.write_bool(true);
            enc.write_string("straddle-me-please");
            enc.write_octets(&[9; 21]);
            enc.write_i32(-5);
            assert_eq!(chain.to_vec(), legacy.into_bytes(), "{endian:?}");
        }
    }

    #[test]
    fn slice_decoder_matches_contiguous_decoder() {
        let mut enc = CdrEncoder::new(Endian::Little);
        enc.write_u8(1);
        enc.write_u32(0xC0FF_EE00);
        enc.write_string("zero-copy");
        enc.write_octets(&[5; 17]);
        enc.write_u16(0xBEEF);
        let bytes = enc.into_bytes();
        // Every possible single split point, plus a many-way split.
        for cut in 0..=bytes.len() {
            let parts = chunked(&bytes, &[cut]);
            let mut dec = CdrSliceDecoder::new(&parts, Endian::Little);
            assert_eq!(dec.read_u8().unwrap(), 1);
            assert_eq!(dec.read_u32().unwrap(), 0xC0FF_EE00);
            assert_eq!(dec.read_string().unwrap(), "zero-copy");
            assert_eq!(dec.read_octets().unwrap(), vec![5; 17]);
            assert_eq!(dec.read_u16().unwrap(), 0xBEEF);
            assert_eq!(dec.remaining(), 0);
        }
        let every: Vec<usize> = (1..bytes.len()).collect();
        let parts = chunked(&bytes, &every);
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Little);
        assert_eq!(dec.read_u8().unwrap(), 1);
        assert_eq!(dec.read_u32().unwrap(), 0xC0FF_EE00);
        assert_eq!(dec.read_string().unwrap(), "zero-copy");
        assert_eq!(dec.read_octets().unwrap(), vec![5; 17]);
        assert_eq!(dec.read_u16().unwrap(), 0xBEEF);
    }

    #[test]
    fn slice_decoder_borrows_when_contiguous() {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_octets(&[1, 2, 3, 4]);
        enc.write_string("view");
        let bytes = enc.into_bytes();
        let parts = [&bytes[..]];
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Big);
        assert!(matches!(dec.read_octets_view().unwrap(), Cow::Borrowed(_)));
        assert!(matches!(dec.read_string_view().unwrap(), Cow::Borrowed(_)));
        // A split through the octets forces an owned copy, same value.
        let parts = chunked(&bytes, &[6]);
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Big);
        match dec.read_octets_view().unwrap() {
            Cow::Owned(v) => assert_eq!(v, vec![1, 2, 3, 4]),
            Cow::Borrowed(_) => panic!("split payload cannot borrow"),
        }
    }

    #[test]
    fn slice_decoder_truncation_and_validation() {
        let parts: [&[u8]; 2] = [&[0, 0], &[0]];
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Big);
        assert!(matches!(dec.read_u32(), Err(CdrError::Truncated { .. })));
        let parts: [&[u8]; 1] = [&[7]];
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Big);
        assert!(matches!(dec.read_bool(), Err(CdrError::BadBoolean(7))));
        let parts: [&[u8]; 2] = [&[0, 0], &[0, 100]];
        let mut dec = CdrSliceDecoder::new(&parts, Endian::Big);
        assert!(matches!(
            dec.read_string(),
            Err(CdrError::LengthOverflow(100))
        ));
    }

    #[test]
    fn buffer_reuse_clears() {
        let mut enc = CdrEncoder::new(Endian::Big);
        enc.write_u64(42);
        let buf = enc.into_bytes();
        let enc2 = CdrEncoder::with_buffer(buf, Endian::Big);
        assert!(enc2.is_empty());
    }
}
