//! ZenOrb — the hand-coded baseline ORB standing in for RTZen.
//!
//! The paper compares its Compadres-assembled ORB against RTZen, a
//! hand-written RTSJ RT-CORBA implementation that manages scoped memory
//! manually (§3.2–3.3). ZenOrb reproduces that comparator on the same
//! substrate: the same CDR/GIOP/transport stack, with the RTZen memory
//! architecture — client: ORB (immortal) → Transport scope → per-request
//! MessageProcessing scope; server: ORB (immortal) → POA/Acceptor scope →
//! per-connection Transport scope → per-request RequestProcessing scope —
//! but with direct function calls instead of components, ports and SMMs.
//! Policy checking is omitted, as in the paper's experiment.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rtplatform::bufchain::{FrameBuf, SegPool, DEFAULT_SEG_SIZE};
use rtplatform::sync::Mutex;

use rtmem::{Ctx, MemoryModel, ScopePool, Wedge};

use crate::cdr::Endian;
use crate::giop::{self, MessageView, ReplyStatus};
use crate::reactor::{FrameFn, ReactorConfig, ReactorServer};
use crate::service::ObjectRegistry;
use crate::transport::{loopback_pair, Connection, LoopbackConn, TcpAcceptor, TcpConn};
use crate::{InvokeOptions, OrbError};

const TRANSPORT_SCOPE: usize = 64 << 10;
const REQUEST_SCOPE: usize = 64 << 10;
/// Segments in the marshal pool: enough that a burst of concurrent
/// requests stays pool-backed; exhaustion falls back to plain heap
/// segments rather than blocking (see [`rtplatform::bufchain`]).
const CLIENT_POOL_SEGS: usize = 16;
const SERVER_POOL_SEGS: usize = 64;

/// The hand-coded client ORB.
///
/// Each `invoke` enters the persistent transport scope, creates (from a
/// pool) a message-processing scope, marshals the request there, performs
/// the round trip and reclaims the scope — RTZen's architecture in direct
/// code.
pub struct ZenClient {
    model: MemoryModel,
    conn: Arc<dyn Connection>,
    transport_scope: rtmem::RegionId,
    _transport_wedge: Wedge,
    processing_pool: ScopePool,
    seg_pool: SegPool,
    ctx: Mutex<Ctx>,
    next_id: AtomicU32,
    endian: Endian,
}

impl std::fmt::Debug for ZenClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ZenClient")
    }
}

impl ZenClient {
    /// Builds a client over an established connection.
    ///
    /// # Errors
    ///
    /// Fails if the scoped-memory architecture cannot be created.
    pub fn from_conn(conn: Arc<dyn Connection>) -> Result<ZenClient, OrbError> {
        let model = MemoryModel::new();
        let transport_scope = model.create_scoped(TRANSPORT_SCOPE)?;
        let wedge = Wedge::pin_from_base(&model, transport_scope)?;
        let processing_pool = ScopePool::new(&model, 2, REQUEST_SCOPE, 2)?;
        Ok(ZenClient {
            ctx: Mutex::new(Ctx::no_heap(&model)),
            model,
            conn,
            transport_scope,
            _transport_wedge: wedge,
            processing_pool,
            seg_pool: SegPool::new(CLIENT_POOL_SEGS, DEFAULT_SEG_SIZE),
            next_id: AtomicU32::new(1),
            endian: Endian::native(),
        })
    }

    pub(crate) fn tcp(addr: SocketAddr) -> Result<ZenClient, OrbError> {
        let conn = TcpConn::connect(addr)?;
        ZenClient::from_conn(Arc::new(conn))
    }

    pub(crate) fn tcp_with(
        addr: SocketAddr,
        policy: &rtplatform::fault::FaultPolicy,
    ) -> Result<ZenClient, OrbError> {
        let conn = TcpConn::connect_with(addr, policy)?;
        ZenClient::from_conn(Arc::new(conn))
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Connection or memory-architecture failures.
    #[deprecated(note = "use rtcorba::ClientBuilder::new().connect_zen(addr)")]
    pub fn connect_tcp(addr: SocketAddr) -> Result<ZenClient, OrbError> {
        ZenClient::tcp(addr)
    }

    /// Connects over TCP under a [`rtplatform::fault::FaultPolicy`]:
    /// connect/send/recv deadlines bound every later invocation, so a
    /// silent peer surfaces as a deadline miss instead of a wedged
    /// thread.
    ///
    /// # Errors
    ///
    /// Connection or memory-architecture failures.
    #[deprecated(note = "use rtcorba::ClientBuilder::new().fault_policy(policy).connect_zen(addr)")]
    pub fn connect_tcp_with(
        addr: SocketAddr,
        policy: &rtplatform::fault::FaultPolicy,
    ) -> Result<ZenClient, OrbError> {
        ZenClient::tcp_with(addr, policy)
    }

    /// Connects to the ORB endpoint named by a stringified `corbaloc`
    /// object reference (the CORBA `string_to_object` flow).
    ///
    /// # Errors
    ///
    /// Reference parse/resolution failures, then the same as
    /// [`ZenClient::connect_tcp`].
    pub fn connect_ref(reference: &str) -> Result<(ZenClient, Vec<u8>), OrbError> {
        let obj = crate::ior::ObjectRef::parse(reference)?;
        let addr = obj.socket_addr()?;
        Ok((ZenClient::tcp(addr)?, obj.object_key))
    }

    /// The memory model (for instrumentation).
    pub fn model(&self) -> &MemoryModel {
        &self.model
    }

    /// Performs an invocation shaped by `opts` — two-way or oneway. The
    /// unified entry point behind [`invoke`](ZenClient::invoke) and
    /// [`invoke_oneway`](ZenClient::invoke_oneway). ZenOrb has no
    /// tracing subsystem, so `opts.budget` is ignored (see
    /// [`InvokeOptions::budget`]). A oneway invocation returns an empty
    /// body.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a servant exception.
    pub fn invoke_with(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
        opts: &InvokeOptions,
    ) -> Result<Vec<u8>, OrbError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let oneway = opts.oneway;
        let mut ctx = self.ctx.lock();
        let lease = self.processing_pool.acquire()?;
        let processing = lease.region();
        let conn = Arc::clone(&self.conn);
        let endian = self.endian;
        let out: Result<Vec<u8>, OrbError> = ctx
            .enter(self.transport_scope, |ctx| {
                ctx.enter(processing, |_ctx| {
                    // Marshal inside the per-request scope, but into
                    // pool-leased segments: the bytes are written once
                    // (chain encoder) and scattered to the socket with
                    // vectored I/O. The segments recycle into the pool
                    // when the frame drops at the end of the request —
                    // the chain plays the role the staging copy used to.
                    let frame = giop::encode_request_chain(
                        request_id,
                        !oneway,
                        object_key,
                        operation,
                        args,
                        &[],
                        endian,
                        &self.seg_pool,
                    );
                    conn.send_chain(&frame)?;
                    if oneway {
                        return Ok(Vec::new());
                    }
                    let reply_frame = conn.recv_frame()?;
                    // Decode in place over the received buffer; the
                    // only copy taken is the reply body, which escapes
                    // the request scope to the caller.
                    let parts = [&reply_frame[..]];
                    match giop::decode_view(&parts)? {
                        MessageView::Reply(r) if r.request_id == request_id => match r.status {
                            ReplyStatus::NoException => Ok(r.body.into_owned()),
                            ReplyStatus::SystemException => Err(OrbError::Exception(
                                String::from_utf8_lossy(&r.body).into_owned(),
                            )),
                            ReplyStatus::ObjectNotExist => Err(OrbError::ObjectNotExist),
                        },
                        MessageView::Reply(r) => Err(OrbError::RequestMismatch {
                            expected: request_id,
                            got: r.request_id,
                        }),
                        _ => Err(OrbError::UnexpectedMessage),
                    }
                })?
            })
            .map_err(OrbError::from)?;
        out
    }

    /// Sends a **oneway** invocation: no reply is expected or waited for
    /// (GIOP `response_expected = false`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn invoke_oneway(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
    ) -> Result<(), OrbError> {
        self.invoke_with(object_key, operation, args, &InvokeOptions::oneway())
            .map(|_| ())
    }

    /// Performs a synchronous two-way invocation.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a servant exception.
    pub fn invoke(
        &self,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, OrbError> {
        self.invoke_with(object_key, operation, args, &InvokeOptions::twoway())
    }
}

/// Handle to a running hand-coded server ORB.
pub struct ZenServer {
    addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    reactor: Option<ReactorServer>,
    loopback_feeder: Arc<ServerCore>,
}

impl std::fmt::Debug for ZenServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ZenServer({:?})", self.addr)
    }
}

/// The server-side memory architecture and dispatch logic, shared by the
/// acceptor thread and loopback attachments.
struct ServerCore {
    model: MemoryModel,
    registry: Arc<ObjectRegistry>,
    poa_scope: rtmem::RegionId,
    _poa_wedge: Wedge,
    request_pool: ScopePool,
    seg_pool: SegPool,
    endian: Endian,
    shutdown: Arc<AtomicBool>,
}

impl ServerCore {
    fn new(
        registry: Arc<ObjectRegistry>,
        shutdown: Arc<AtomicBool>,
    ) -> Result<ServerCore, OrbError> {
        let model = MemoryModel::new();
        let poa_scope = model.create_scoped(TRANSPORT_SCOPE)?;
        let poa_wedge = Wedge::pin_from_base(&model, poa_scope)?;
        let request_pool = ScopePool::new(&model, 3, REQUEST_SCOPE, 4)?;
        Ok(ServerCore {
            model,
            registry,
            poa_scope,
            _poa_wedge: poa_wedge,
            request_pool,
            seg_pool: SegPool::new(SERVER_POOL_SEGS, DEFAULT_SEG_SIZE),
            endian: Endian::native(),
            shutdown,
        })
    }

    /// Serves one connection until it closes: POA scope → per-connection
    /// transport scope → per-request processing scope.
    fn serve_connection(&self, conn: Arc<dyn Connection>) {
        let mut ctx = Ctx::no_heap(&self.model);
        let transport_scope = match self.model.create_scoped(TRANSPORT_SCOPE) {
            Ok(r) => r,
            Err(_) => return,
        };
        let _ = ctx.enter(self.poa_scope, |ctx| {
            let _ = ctx.enter(transport_scope, |ctx| loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let frame = match conn.recv_frame() {
                    Ok(f) => f,
                    Err(_) => break,
                };
                let Ok(lease) = self.request_pool.acquire() else {
                    break;
                };
                let request_region = lease.region();
                let outcome = ctx.enter(request_region, |_ctx| {
                    // Decode in place over the received buffer: the key,
                    // operation and body are borrowed views, and the
                    // reply marshals into pool-leased segments sent with
                    // vectored I/O — no staging copy either way.
                    let parts = [&frame[..]];
                    match giop::decode_view(&parts) {
                        Ok(MessageView::Request(req)) => {
                            let reply = self.registry.dispatch_view(&req);
                            if req.response_expected {
                                conn.send_chain(&reply.encode_chain(self.endian, &self.seg_pool))
                                    .is_ok()
                            } else {
                                true
                            }
                        }
                        Ok(MessageView::CloseConnection) => false,
                        Ok(_) => false,
                        Err(_) => {
                            // Tell the peer its frame was garbage before
                            // hanging up, so it fails fast instead of
                            // waiting out its reply deadline.
                            let _ = conn.send_frame(&giop::encode_error(self.endian));
                            false
                        }
                    }
                });
                match outcome {
                    Ok(true) => {}
                    _ => break,
                }
            });
        });
        let _ = self.model.destroy_scoped(transport_scope);
    }

    /// Serves one already-framed message on the reactor path: POA scope →
    /// per-request processing scope. The per-*connection* transport scope
    /// of [`serve_connection`] has no owner here (connections outlive any
    /// single worker call), so the reactor path collapses to the two
    /// scopes whose lifetimes match its units of work.
    ///
    /// The frame arrives as a segment chain carved straight out of the
    /// reactor's receive buffers — it is decoded in place over the
    /// borrowed segments, never coalesced.
    fn serve_frame(&self, conn: &Arc<dyn Connection>, frame: &FrameBuf) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut ctx = Ctx::no_heap(&self.model);
        let _ = ctx.enter(self.poa_scope, |ctx| {
            let Ok(lease) = self.request_pool.acquire() else {
                return;
            };
            let request_region = lease.region();
            let _ = ctx.enter(request_region, |_ctx| {
                let parts = frame.slices();
                match giop::decode_view(&parts) {
                    Ok(MessageView::Request(req)) => {
                        let reply = self.registry.dispatch_view(&req);
                        if req.response_expected {
                            let _ =
                                conn.send_chain(&reply.encode_chain(self.endian, &self.seg_pool));
                        }
                    }
                    Ok(MessageView::CloseConnection) => conn.close(),
                    Ok(_) => {}
                    Err(_) => {
                        let _ = conn.send_frame(&giop::encode_error(self.endian));
                        conn.close();
                    }
                }
            });
        });
    }
}

impl ZenServer {
    /// Spawns a TCP server with its acceptor thread.
    ///
    /// # Errors
    ///
    /// Bind or memory-architecture failures.
    #[deprecated(note = "use rtcorba::ServerBuilder::new(registry).threaded().serve_zen()")]
    pub fn spawn_tcp(registry: Arc<ObjectRegistry>) -> Result<ZenServer, OrbError> {
        Self::serve_threaded(registry)
    }

    /// The paper-faithful thread-per-connection I/O model: an acceptor
    /// thread plus one `zen-transport` thread per client — the RTZen
    /// comparator architecture.
    pub(crate) fn serve_threaded(registry: Arc<ObjectRegistry>) -> Result<ZenServer, OrbError> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let core = Arc::new(ServerCore::new(registry, Arc::clone(&shutdown))?);
        let acceptor = TcpAcceptor::bind_loopback()?;
        let addr = acceptor.local_addr()?;
        let core2 = Arc::clone(&core);
        let shutdown2 = Arc::clone(&shutdown);
        let accept_handle = std::thread::Builder::new()
            .name("zen-acceptor".into())
            .spawn(move || {
                while !shutdown2.load(Ordering::SeqCst) {
                    match acceptor.accept() {
                        Ok(conn) => {
                            let core3 = Arc::clone(&core2);
                            let _ = std::thread::Builder::new()
                                .name("zen-transport".into())
                                .spawn(move || core3.serve_connection(Arc::new(conn)));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn acceptor");
        Ok(ZenServer {
            addr: Some(addr),
            shutdown,
            accept_handle: Some(accept_handle),
            reactor: None,
            loopback_feeder: core,
        })
    }

    /// Spawns a TCP server on the event-driven reactor transport.
    ///
    /// # Errors
    ///
    /// Bind or memory-architecture failures.
    #[deprecated(note = "use rtcorba::ServerBuilder::new(registry).observer(obs).serve_zen()")]
    pub fn spawn_tcp_reactor(
        registry: Arc<ObjectRegistry>,
        obs: Arc<rtobs::Observer>,
    ) -> Result<ZenServer, OrbError> {
        Self::serve_reactor(registry, obs, ReactorConfig::default())
    }

    /// The event-driven reactor transport (DESIGN.md §5h): connections
    /// are multiplexed by one poll loop and requests dispatched by a
    /// worker pool through the same POA-scope frame service as the
    /// threaded path. The threaded path stays thread-per-connection —
    /// the paper-faithful RTZen comparator — while this one scales past
    /// it.
    pub(crate) fn serve_reactor(
        registry: Arc<ObjectRegistry>,
        obs: Arc<rtobs::Observer>,
        cfg: ReactorConfig,
    ) -> Result<ZenServer, OrbError> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let core = Arc::new(ServerCore::new(registry, Arc::clone(&shutdown))?);
        let core2 = Arc::clone(&core);
        let handler: FrameFn = Arc::new(move |conn, frame| core2.serve_frame(conn, &frame));
        let reactor = ReactorServer::spawn(handler, obs, cfg)?;
        let addr = reactor.addr();
        Ok(ZenServer {
            addr: Some(addr),
            shutdown,
            accept_handle: None,
            reactor: Some(reactor),
            loopback_feeder: core,
        })
    }

    /// Spawns a server that only serves in-process loopback connections.
    ///
    /// # Errors
    ///
    /// Memory-architecture failures.
    pub fn spawn_loopback(registry: Arc<ObjectRegistry>) -> Result<ZenServer, OrbError> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let core = Arc::new(ServerCore::new(registry, Arc::clone(&shutdown))?);
        Ok(ZenServer {
            addr: None,
            shutdown,
            accept_handle: None,
            reactor: None,
            loopback_feeder: core,
        })
    }

    /// The TCP address, when serving TCP.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Creates an in-process connection served by a dedicated thread.
    pub fn attach_loopback(&self) -> LoopbackConn {
        let (client_end, server_end) = loopback_pair();
        let core = Arc::clone(&self.loopback_feeder);
        let _ = std::thread::Builder::new()
            .name("zen-loopback-transport".into())
            .spawn(move || core.serve_connection(Arc::new(server_end)));
        client_end
    }

    /// Stops accepting and serving.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(reactor) = &self.reactor {
            reactor.shutdown();
        }
        if self.accept_handle.is_some() {
            if let Some(addr) = self.addr {
                // Nudge the blocking acceptor.
                let _ = std::net::TcpStream::connect(addr);
            }
        }
    }
}

impl Drop for ZenServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

/// Convenience: a connected loopback echo pair (server + client).
///
/// # Errors
///
/// Memory-architecture failures.
pub fn loopback_echo_pair() -> Result<(ZenServer, ZenClient), OrbError> {
    let server = ZenServer::spawn_loopback(ObjectRegistry::with_echo())?;
    let conn = server.attach_loopback();
    let client = ZenClient::from_conn(Arc::new(conn))?;
    Ok((server, client))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_echo_roundtrip() {
        let (_server, client) = loopback_echo_pair().unwrap();
        let reply = client.invoke(b"echo", "echo", &[1, 2, 3, 4]).unwrap();
        assert_eq!(reply, vec![1, 2, 3, 4]);
        // Request scopes are pooled and reclaimed; repeated invokes work.
        for i in 0..50u8 {
            let reply = client.invoke(b"echo", "echo", &[i]).unwrap();
            assert_eq!(reply, vec![i]);
        }
    }

    #[test]
    fn tcp_echo_roundtrip() {
        let server = crate::ServerBuilder::new(ObjectRegistry::with_echo())
            .threaded()
            .serve_zen()
            .unwrap();
        let client = crate::ClientBuilder::new()
            .connect_zen(server.addr().unwrap())
            .unwrap();
        let payload = vec![9u8; 512];
        assert_eq!(client.invoke(b"echo", "echo", &payload).unwrap(), payload);
        assert_eq!(
            client.invoke(b"echo", "reverse", &[1, 2, 3]).unwrap(),
            vec![3, 2, 1]
        );
        server.shutdown();
    }

    #[test]
    fn tcp_reactor_echo_roundtrip() {
        let server = crate::ServerBuilder::new(ObjectRegistry::with_echo())
            .observer(rtobs::Observer::new())
            .serve_zen()
            .unwrap();
        let client = crate::ClientBuilder::new()
            .connect_zen(server.addr().unwrap())
            .unwrap();
        let payload = vec![7u8; 512];
        assert_eq!(client.invoke(b"echo", "echo", &payload).unwrap(), payload);
        assert_eq!(
            client.invoke(b"echo", "reverse", &[1, 2, 3]).unwrap(),
            vec![3, 2, 1]
        );
        server.shutdown();
    }

    #[test]
    fn unknown_object_reported() {
        let (_server, client) = loopback_echo_pair().unwrap();
        assert!(matches!(
            client.invoke(b"ghost", "echo", &[]),
            Err(OrbError::ObjectNotExist)
        ));
    }

    #[test]
    fn servant_exception_propagates() {
        let (_server, client) = loopback_echo_pair().unwrap();
        match client.invoke(b"echo", "frobnicate", &[]) {
            Err(OrbError::Exception(msg)) => assert!(msg.contains("unknown operation")),
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn per_request_scope_reclaimed() {
        let (_server, client) = loopback_echo_pair().unwrap();
        client.invoke(b"echo", "echo", &[0; 128]).unwrap();
        let model = client.model();
        // Processing pool scopes are all free after the call.
        // (transport scope + pool scopes + heap/immortal)
        assert!(model.live_regions() >= 3);
        client.invoke(b"echo", "echo", &[0; 128]).unwrap();
    }
}
