//! Event-driven server transport: one epoll reactor thread multiplexing
//! every GIOP connection, a small fixed worker pool executing request
//! handlers (DESIGN.md §5h).
//!
//! The thread-per-connection servers ([`crate::zen::ZenServer`],
//! [`crate::corb::CompadresServer`]) are faithful to the paper's echo
//! demo but burn one OS thread (and its stack) per client — a hard wall
//! well before 10k concurrent connections. This module replaces the
//! server-side I/O model while leaving the protocol, dispatch and
//! memory-architecture layers untouched:
//!
//! * a **reactor thread** owns the listening socket and every accepted
//!   connection (all nonblocking), waits on an
//!   [`rtplatform::poll::Poller`], reassembles partial GIOP frames per
//!   connection, and writes replies back with **vectored writes** that
//!   coalesce whatever replies have queued since the last flush;
//! * complete frames flow to a **fixed worker pool** over an
//!   [`rtplatform::ring::MpmcRing`] readiness queue (workers park on an
//!   [`rtplatform::park::Gate`] when idle). Scheduling is per
//!   connection, actor-style: a connection is enqueued at most once, a
//!   worker drains its inbox in FIFO order, and no two workers ever
//!   process the same connection concurrently — so pipelined requests
//!   on one connection are answered in order;
//! * workers reply through a [`ReactorConn`] (a [`Connection`] whose
//!   `send_frame` enqueues bytes on the connection's outbox and nudges
//!   the reactor through an eventfd [`rtplatform::poll::Waker`]), which
//!   means the existing handler pipelines — spans, fault replies,
//!   service-context echoing — run unchanged.
//!
//! Observability (all on the server's [`Observer`]): `reactor_connections`
//! gauge (+ high-water mark), `reactor_queue_depth` gauge, the
//! `reactor_coalesced_writes` histogram (frames per vectored write),
//! `reactor_wakeups_total`, `reactor_partial_frames_total`,
//! `reactor_protocol_errors_total` and `reactor_backpressure_total`
//! counters.

use std::collections::HashMap;
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rtobs::{CounterId, GaugeId, HistId, Observer};
use rtplatform::bufchain::{FrameBuf, RecvChain, SegPool};
use rtplatform::park::Gate;
use rtplatform::poll::{Interest, PollEvent, Poller, Waker};
use rtplatform::ring::MpmcRing;
use rtplatform::sync::Mutex;

use crate::cdr::Endian;
use crate::giop::{self, HEADER_LEN};
use crate::transport::{Connection, TransportError};

/// Token of the listening socket in the reactor's poller.
const TOKEN_LISTENER: u64 = 0;
/// Token of the wakeup eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Frames a worker processes from one connection before requeueing it,
/// so a firehose connection cannot starve its neighbours.
const WORKER_BATCH: usize = 16;

/// Most buffer segments gathered into a single vectored write.
const MAX_IOVECS: usize = 64;

/// Segments pre-allocated in the receive pool. Each is `read_chunk`
/// bytes; exhaustion falls back to heap segments (never blocks the
/// reactor), it just loses the recycling benefit until frames drop.
const RECV_POOL_SEGS: usize = 16;

/// Sizing and limits for a [`ReactorServer`].
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Worker threads executing frame handlers. Keep this at or below
    /// the server's per-request scope-pool size (the Compadres server
    /// CCL provisions 4 level-3 scopes): the pool then never blocks a
    /// worker on scope exhaustion.
    pub workers: usize,
    /// Largest accepted GIOP body; a header declaring more is a
    /// protocol violation (MessageError + close), not an allocation.
    pub max_frame: usize,
    /// Segment size of the receive buffer pool — the most bytes one
    /// `read` call can deliver into a segment.
    pub read_chunk: usize,
    /// Capacity of the readiness queue between reactor and workers
    /// (connections, not frames; rounded up to a power of two).
    pub queue_capacity: usize,
    /// Most complete frames one connection's inbox may hold before the
    /// reactor sheds newly carved frames (`reactor_shed_total`). GIOP
    /// frames carry no priority, so this is a coarse per-connection
    /// overload valve — the shed client sees its recv deadline, not a
    /// wedged reactor. Priority-aware shedding happens downstream at the
    /// component in-ports (see `rtplatform::fault::AdmissionPolicy`).
    pub inbox_capacity: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 4,
            max_frame: 16 << 20,
            read_chunk: 64 << 10,
            queue_capacity: 4096,
            inbox_capacity: 1024,
        }
    }
}

/// The per-frame callback run on worker threads: `(connection, frame)`.
/// The frame is a segment chain carved out of the reactor's receive
/// buffers without coalescing — decode it in place
/// ([`crate::giop::decode_view`] over [`FrameBuf::slices`]). Replies
/// (if any) go back through the connection's
/// [`Connection::send_chain`]/[`Connection::send_frame`].
pub type FrameFn = Arc<dyn Fn(&Arc<dyn Connection>, FrameBuf) + Send + Sync>;

/// State shared between the reactor thread, the workers and every
/// [`ReactorConn`].
struct Shared {
    waker: Waker,
    /// Receive segments shared by every connection's reassembly chain.
    recv_pool: SegPool,
    /// Connections with frames awaiting processing (each at most once).
    work: MpmcRing<Arc<ReactorConn>>,
    work_gate: Gate,
    /// Connections with replies awaiting flushing (each at most once).
    flush: MpmcRing<u64>,
    /// Spillover when `flush` is momentarily full — never dropped.
    flush_overflow: Mutex<Vec<u64>>,
    shutdown: AtomicBool,
    obs: Arc<Observer>,
    handler: FrameFn,
    conns_gauge: GaugeId,
    depth_gauge: GaugeId,
    wakeups: CounterId,
    coalesce_hist: HistId,
    partial_frames: CounterId,
    protocol_errors: CounterId,
    backpressure: CounterId,
    shed: CounterId,
}

impl Shared {
    /// Queues `token` for a write flush (once) and wakes the reactor.
    fn request_flush(&self, conn: &ReactorConn) {
        if conn.flush_queued.swap(true, Ordering::SeqCst) {
            return;
        }
        if self.flush.push(conn.token).is_err() {
            self.flush_overflow.lock().push(conn.token);
        }
        self.obs.inc(self.wakeups);
        self.waker.wake();
    }

    /// Enqueues a connection for worker processing if it isn't already
    /// queued. Called by the reactor after appending to the inbox.
    fn schedule(&self, conn: &Arc<ReactorConn>) {
        if conn.scheduled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut item = Arc::clone(conn);
        // The queue holds connections (not frames) so it only fills when
        // `queue_capacity` distinct connections all have pending work;
        // if that happens, the reactor yields until workers drain —
        // natural backpressure that ultimately flows back over TCP.
        while let Err(back) = self.work.push(item) {
            self.obs.inc(self.backpressure);
            std::thread::yield_now();
            item = back;
        }
        self.obs.gauge_set(self.depth_gauge, self.work.len() as u64);
        self.work_gate.notify_one();
    }
}

/// Write-side state of one connection: queued reply frames plus how far
/// into the front frame a partial write got.
#[derive(Default)]
struct OutBuf {
    queue: std::collections::VecDeque<FrameBuf>,
    /// Bytes of `queue[0]` already written.
    offset: usize,
}

/// The worker-facing half of a reactor connection. Implements
/// [`Connection`]: `send_frame` enqueues on the outbox and nudges the
/// reactor; `recv_frame` is unsupported (inbound frames are delivered to
/// the [`FrameFn`], never pulled).
pub struct ReactorConn {
    token: u64,
    shared: Arc<Shared>,
    /// Complete inbound frames awaiting a worker, FIFO. Each frame
    /// shares (refcounts) the receive segments it was carved from.
    inbox: Mutex<std::collections::VecDeque<FrameBuf>>,
    /// Whether this connection currently sits in the work queue (or is
    /// being drained by a worker).
    scheduled: AtomicBool,
    outbox: Mutex<OutBuf>,
    flush_queued: AtomicBool,
    /// Set by `close()`, a protocol violation, or the reactor dropping
    /// the connection. The reactor flushes the outbox, then hangs up.
    closing: AtomicBool,
}

impl std::fmt::Debug for ReactorConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactorConn(token={})", self.token)
    }
}

impl Connection for ReactorConn {
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        self.send_chain(&FrameBuf::from_vec(frame.to_vec()))
    }

    fn send_chain(&self, frame: &FrameBuf) -> Result<(), TransportError> {
        if self.closing.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        // Cloning a FrameBuf only bumps segment refcounts: the reply
        // bytes written by the chain encoder are the bytes the reactor
        // later scatters into the socket.
        self.outbox.lock().queue.push_back(frame.clone());
        self.shared.request_flush(self);
        Ok(())
    }

    fn recv_frame(&self) -> Result<Vec<u8>, TransportError> {
        Err(TransportError::Io(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor connections deliver frames to the handler; recv_frame is never valid",
        )))
    }

    fn close(&self) {
        self.closing.store(true, Ordering::SeqCst);
        self.shared.request_flush(self);
    }
}

/// Read-side state owned exclusively by the reactor thread.
struct ConnEntry {
    stream: TcpStream,
    conn: Arc<ReactorConn>,
    /// Partial-frame reassembly chain: reads land directly in pooled
    /// segments and complete frames are carved off as [`FrameBuf`]s
    /// sharing those segments — bytes are never copied together.
    chain: RecvChain,
    /// Whether EPOLLOUT is currently armed.
    write_interest: bool,
}

/// Handle to a running reactor server. Dropping it shuts the reactor,
/// its workers and every connection down.
pub struct ReactorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactorServer({:?})", self.addr)
    }
}

impl ReactorServer {
    /// Binds `127.0.0.1:0` and spawns the reactor thread plus
    /// `cfg.workers` worker threads; inbound frames are handed to
    /// `handler` on worker threads.
    ///
    /// # Errors
    ///
    /// Bind, epoll or thread-spawn failures.
    pub fn spawn(
        handler: FrameFn,
        obs: Arc<Observer>,
        cfg: ReactorConfig,
    ) -> Result<ReactorServer, TransportError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(TransportError::Io)?;
        listener.set_nonblocking(true).map_err(TransportError::Io)?;
        let addr = listener.local_addr().map_err(TransportError::Io)?;
        let poller = Poller::new().map_err(TransportError::Io)?;
        poller
            .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .map_err(TransportError::Io)?;
        let waker = Waker::new(&poller, TOKEN_WAKER).map_err(TransportError::Io)?;

        let shared = Arc::new(Shared {
            waker,
            recv_pool: SegPool::new(RECV_POOL_SEGS, cfg.read_chunk.max(HEADER_LEN)),
            work: MpmcRing::new(cfg.queue_capacity.max(2)),
            work_gate: Gate::new(),
            flush: MpmcRing::new(cfg.queue_capacity.max(2)),
            flush_overflow: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            conns_gauge: obs.gauge("reactor_connections"),
            depth_gauge: obs.gauge("reactor_queue_depth"),
            wakeups: obs.counter("reactor_wakeups_total"),
            coalesce_hist: obs.histogram("reactor_coalesced_writes"),
            partial_frames: obs.counter("reactor_partial_frames_total"),
            protocol_errors: obs.counter("reactor_protocol_errors_total"),
            backpressure: obs.counter("reactor_backpressure_total"),
            shed: obs.counter("reactor_shed_total"),
            obs,
            handler,
        });

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let shared2 = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("orb-reactor-worker-{i}"))
                    .spawn(move || worker_loop(&shared2))
                    .map_err(TransportError::Io)?,
            );
        }
        let shared2 = Arc::clone(&shared);
        let reactor = std::thread::Builder::new()
            .name("orb-reactor".into())
            .spawn(move || reactor_loop(&shared2, poller, listener, cfg))
            .map_err(TransportError::Io)?;

        Ok(ReactorServer {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the reactor and workers; all connections are severed.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        self.shared.work_gate.notify_all();
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker: pop a connection, drain (a batch of) its inbox through the
/// handler, park when there is nothing to do.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.work.pop() {
            Some(conn) => {
                shared
                    .obs
                    .gauge_set(shared.depth_gauge, shared.work.len() as u64);
                drain_conn(shared, conn);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let deadline = std::time::Instant::now() + Duration::from_millis(100);
                shared.work_gate.wait(Some(deadline), || {
                    !shared.work.is_empty() || shared.shutdown.load(Ordering::SeqCst)
                });
            }
        }
    }
}

/// Processes up to [`WORKER_BATCH`] frames from `conn`'s inbox in FIFO
/// order, then either requeues it (more work pending — fairness) or
/// releases its schedule slot with the usual lost-wakeup re-check.
fn drain_conn(shared: &Arc<Shared>, conn: Arc<ReactorConn>) {
    let as_dyn: Arc<dyn Connection> = Arc::clone(&conn) as Arc<dyn Connection>;
    let mut handled = 0;
    loop {
        let frame = conn.inbox.lock().pop_front();
        match frame {
            Some(frame) => {
                (shared.handler)(&as_dyn, frame);
                handled += 1;
                if handled >= WORKER_BATCH {
                    if conn.inbox.lock().is_empty() {
                        continue; // next iteration observes the empty inbox
                    }
                    // Requeue at the tail, still scheduled, so another
                    // worker continues this connection after its peers.
                    let mut item = Arc::clone(&conn);
                    while let Err(back) = shared.work.push(item) {
                        std::thread::yield_now();
                        item = back;
                    }
                    shared.work_gate.notify_one();
                    return;
                }
            }
            None => {
                conn.scheduled.store(false, Ordering::SeqCst);
                // Re-check: the reactor may have appended between the
                // empty pop and the store. Whoever wins the swap owns
                // the requeue.
                if !conn.inbox.lock().is_empty() && !conn.scheduled.swap(true, Ordering::SeqCst) {
                    let mut item = Arc::clone(&conn);
                    while let Err(back) = shared.work.push(item) {
                        std::thread::yield_now();
                        item = back;
                    }
                    shared.work_gate.notify_one();
                }
                return;
            }
        }
    }
}

/// The reactor thread: accept, read/frame, flush, repeat.
fn reactor_loop(shared: &Arc<Shared>, poller: Poller, listener: TcpListener, cfg: ReactorConfig) {
    let mut conns: HashMap<u64, ConnEntry> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<PollEvent> = Vec::new();

    while !shared.shutdown.load(Ordering::SeqCst) {
        // The timeout is a shutdown-latency bound, not a poll interval:
        // all data paths wake the loop via fd readiness or the eventfd.
        if poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .is_err()
        {
            break;
        }
        for ev in events.clone() {
            match ev.token {
                TOKEN_LISTENER => {
                    accept_ready(shared, &poller, &listener, &mut conns, &mut next_token)
                }
                TOKEN_WAKER => shared.waker.drain(),
                token => {
                    if ev.readable || ev.closed {
                        read_ready(shared, &poller, &mut conns, token, &cfg, ev.closed);
                    }
                    if ev.writable {
                        flush_conn(shared, &poller, &mut conns, token);
                    }
                }
            }
        }
        // Replies queued by workers since the last pass.
        let mut pending = std::mem::take(&mut *shared.flush_overflow.lock());
        while let Some(token) = shared.flush.pop() {
            pending.push(token);
        }
        for token in pending {
            if let Some(entry) = conns.get(&token) {
                // Clear before flushing: a send racing the flush then
                // re-queues rather than being lost.
                entry.conn.flush_queued.store(false, Ordering::SeqCst);
            }
            flush_conn(shared, &poller, &mut conns, token);
        }
    }

    // Shutdown: sever every connection so blocked peers fail fast.
    for (_, entry) in conns.drain() {
        entry.conn.closing.store(true, Ordering::SeqCst);
        poller.deregister(entry.stream.as_raw_fd());
        let _ = entry.stream.shutdown(std::net::Shutdown::Both);
    }
    shared.work_gate.notify_all();
}

fn accept_ready(
    shared: &Arc<Shared>,
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<u64, ConnEntry>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                let conn = Arc::new(ReactorConn {
                    token,
                    shared: Arc::clone(shared),
                    inbox: Mutex::new(std::collections::VecDeque::new()),
                    scheduled: AtomicBool::new(false),
                    outbox: Mutex::new(OutBuf::default()),
                    flush_queued: AtomicBool::new(false),
                    closing: AtomicBool::new(false),
                });
                conns.insert(
                    token,
                    ConnEntry {
                        stream,
                        conn,
                        chain: RecvChain::new(&shared.recv_pool),
                        write_interest: false,
                    },
                );
                shared.obs.gauge_add(shared.conns_gauge, 1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Drains the socket, reassembles frames, delivers them, and tears the
/// connection down on EOF/error (after delivering what arrived).
fn read_ready(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    token: u64,
    cfg: &ReactorConfig,
    peer_closed: bool,
) {
    let Some(entry) = conns.get_mut(&token) else {
        return;
    };
    let mut eof = peer_closed;
    loop {
        // Reads land directly in pooled segment memory; frames carved
        // below share those segments instead of being copied out.
        match entry.chain.read_from(&mut entry.stream) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(_) => {} // loop until WouldBlock (socket is nonblocking)
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                eof = true;
                break;
            }
        }
    }

    // Carve every complete frame out of the reassembly chain.
    let mut delivered = false;
    loop {
        let mut header = [0u8; HEADER_LEN];
        if !entry.chain.peek(0, &mut header) {
            if !entry.chain.is_empty() {
                shared.obs.inc(shared.partial_frames);
            }
            break;
        }
        let body = match giop::body_size(&header) {
            Ok(b) if b <= cfg.max_frame => b,
            _ => {
                // Bad magic or absurd size: this is not a GIOP stream.
                // Tell the peer (MessageError), then hang up once the
                // reply has flushed.
                shared.obs.inc(shared.protocol_errors);
                let _ = entry.conn.send_frame(&giop::encode_error(Endian::native()));
                entry.conn.closing.store(true, Ordering::SeqCst);
                let discard = entry.chain.len();
                let _ = entry.chain.take_frame(discard);
                return;
            }
        };
        let total = HEADER_LEN + body;
        if entry.chain.len() < total {
            shared.obs.inc(shared.partial_frames);
            break;
        }
        let frame = entry.chain.take_frame(total);
        {
            let mut inbox = entry.conn.inbox.lock();
            if inbox.len() >= cfg.inbox_capacity.max(1) {
                // Inbox over capacity: shed the frame instead of queueing
                // unboundedly. The peer learns via its recv deadline.
                drop(inbox);
                shared.obs.inc(shared.shed);
                continue;
            }
            inbox.push_back(frame);
        }
        delivered = true;
    }
    if delivered {
        let conn = Arc::clone(&entry.conn);
        shared.schedule(&conn);
    }
    if eof {
        drop_conn(shared, poller, conns, token);
    }
}

/// Flushes the outbox with vectored writes, arming/disarming EPOLLOUT as
/// the socket blocks/unblocks, and completes a deferred close once the
/// outbox is empty.
fn flush_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    token: u64,
) {
    let Some(entry) = conns.get_mut(&token) else {
        return;
    };
    loop {
        let mut out = entry.conn.outbox.lock();
        if out.queue.is_empty() {
            drop(out);
            if entry.write_interest {
                entry.write_interest = false;
                let _ = poller.modify(entry.stream.as_raw_fd(), token, Interest::READ);
            }
            if entry.conn.closing.load(Ordering::SeqCst) {
                drop_conn(shared, poller, conns, token);
            }
            return;
        }
        // Gather the head partial plus whole queued frames: one syscall
        // carries every reply coalesced since the last flush, each
        // frame contributing its segments as separate iovecs (never
        // copied together).
        let head_rest = out.queue[0].slice(out.offset, out.queue[0].len());
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOVECS);
        let mut frames_gathered = 0u64;
        for s in head_rest.slices() {
            slices.push(IoSlice::new(s));
        }
        frames_gathered += 1;
        for frame in out.queue.iter().skip(1) {
            let parts = frame.slices();
            if slices.len() + parts.len() > MAX_IOVECS {
                break;
            }
            for s in parts {
                slices.push(IoSlice::new(s));
            }
            frames_gathered += 1;
        }
        shared.obs.observe(shared.coalesce_hist, frames_gathered);
        match entry.stream.write_vectored(&slices) {
            Ok(mut written) => {
                while written > 0 {
                    let head_left = out.queue[0].len() - out.offset;
                    if written >= head_left {
                        written -= head_left;
                        out.queue.pop_front();
                        out.offset = 0;
                    } else {
                        out.offset += written;
                        written = 0;
                    }
                }
                // Loop: either more queued frames, or empty → epilogue.
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                drop(out);
                if !entry.write_interest {
                    entry.write_interest = true;
                    let _ = poller.modify(entry.stream.as_raw_fd(), token, Interest::BOTH);
                }
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                drop(out);
                drop_conn(shared, poller, conns, token);
                return;
            }
        }
    }
}

fn drop_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    token: u64,
) {
    if let Some(entry) = conns.remove(&token) {
        entry.conn.closing.store(true, Ordering::SeqCst);
        poller.deregister(entry.stream.as_raw_fd());
        let _ = entry.stream.shutdown(std::net::Shutdown::Both);
        shared.obs.gauge_sub(shared.conns_gauge, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::giop::{decode, Message, RequestMessage};
    use crate::transport::TcpConn;

    /// A handler that echoes the request body back in a reply frame,
    /// decoding in place over the delivered segment chain.
    fn echo_handler() -> FrameFn {
        Arc::new(|conn, frame| {
            let parts = frame.slices();
            if let Ok(giop::MessageView::Request(req)) = giop::decode_view(&parts) {
                if req.response_expected {
                    let reply = giop::ReplyMessage {
                        request_id: req.request_id,
                        status: giop::ReplyStatus::NoException,
                        service_context: req.owned_contexts(),
                        body: req.body.into_owned(),
                    };
                    let _ = conn.send_frame(&reply.encode(Endian::native()));
                }
            }
        })
    }

    fn request(id: u32, body: Vec<u8>) -> Vec<u8> {
        RequestMessage {
            request_id: id,
            response_expected: true,
            object_key: b"echo".to_vec(),
            operation: "echo".to_string(),
            body,
            service_context: Vec::new(),
        }
        .encode(Endian::native())
    }

    #[test]
    fn echo_roundtrip_through_reactor() {
        let srv = ReactorServer::spawn(echo_handler(), Observer::new(), ReactorConfig::default())
            .unwrap();
        let conn = TcpConn::connect(srv.addr()).unwrap();
        conn.send_frame(&request(1, vec![1, 2, 3])).unwrap();
        match decode(&conn.recv_frame().unwrap()).unwrap() {
            Message::Reply(r) => {
                assert_eq!(r.request_id, 1);
                assert_eq!(r.body, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_reply_in_order() {
        let srv = ReactorServer::spawn(echo_handler(), Observer::new(), ReactorConfig::default())
            .unwrap();
        let conn = TcpConn::connect(srv.addr()).unwrap();
        // Fire 50 requests before reading a single reply.
        for i in 0..50u32 {
            conn.send_frame(&request(i, i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..50u32 {
            match decode(&conn.recv_frame().unwrap()).unwrap() {
                Message::Reply(r) => assert_eq!(r.request_id, i, "FIFO per connection"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn many_connections_multiplex() {
        let obs = Observer::new();
        let srv = ReactorServer::spawn(echo_handler(), Arc::clone(&obs), ReactorConfig::default())
            .unwrap();
        let conns: Vec<TcpConn> = (0..64)
            .map(|_| TcpConn::connect(srv.addr()).unwrap())
            .collect();
        for (i, c) in conns.iter().enumerate() {
            c.send_frame(&request(i as u32, vec![i as u8; 32])).unwrap();
        }
        for (i, c) in conns.iter().enumerate() {
            match decode(&c.recv_frame().unwrap()).unwrap() {
                Message::Reply(r) => assert_eq!(r.body, vec![i as u8; 32]),
                other => panic!("unexpected {other:?}"),
            }
        }
        let g = obs.gauge("reactor_connections");
        assert!(obs.gauge_hwm(g) >= 64, "gauge saw all connections");
    }

    #[test]
    fn garbage_stream_gets_message_error_then_close() {
        let srv = ReactorServer::spawn(echo_handler(), Observer::new(), ReactorConfig::default())
            .unwrap();
        let conn = TcpConn::connect(srv.addr()).unwrap();
        conn.send_frame(b"this is not giop at all.....").unwrap();
        match decode(&conn.recv_frame().unwrap()) {
            Ok(Message::Error) => {}
            other => panic!("expected MessageError, got {other:?}"),
        }
        assert!(matches!(
            conn.recv_frame(),
            Err(TransportError::Closed) | Err(TransportError::Io(_))
        ));
    }

    #[test]
    fn shutdown_severs_connections() {
        let srv = ReactorServer::spawn(echo_handler(), Observer::new(), ReactorConfig::default())
            .unwrap();
        let conn = TcpConn::connect(srv.addr()).unwrap();
        conn.send_frame(&request(9, vec![9])).unwrap();
        let _ = conn.recv_frame().unwrap();
        srv.shutdown();
        assert!(conn.recv_frame().is_err(), "severed on shutdown");
    }
}
