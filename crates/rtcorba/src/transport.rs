//! Transports carrying GIOP frames: in-process loopback and TCP.
//!
//! The paper's evaluation runs client and server "on a single machine
//! connected via loopback network" (§3.3). Both transports here frame
//! messages exactly the same way — a GIOP header announcing the body size
//! — so the ORB code is transport-agnostic.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rtplatform::bufchain::FrameBuf;
use rtplatform::fault::FaultPolicy;
use rtplatform::sync::{Condvar, Mutex};

use crate::giop::{self, HEADER_LEN};

/// Transport errors.
///
/// Each injectable network fault class maps to exactly one variant (the
/// mapping is exercised by `tests/fault_mapping.rs`):
///
/// | fault class                  | variant        |
/// |------------------------------|----------------|
/// | dropped frame / stalled peer | [`Deadline`](TransportError::Deadline) — indistinguishable on the wire: in both cases no bytes arrive before the recv deadline |
/// | mid-frame disconnect         | [`Closed`](TransportError::Closed) — the stream ends inside a frame |
/// | corrupt / truncated framing  | [`Protocol`](TransportError::Protocol) — bytes arrive but violate GIOP |
/// | any other socket failure     | [`Io`](TransportError::Io) |
#[derive(Debug)]
pub enum TransportError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection.
    Closed,
    /// The incoming frame violated GIOP framing.
    Protocol(giop::GiopError),
    /// The operation did not complete before its configured deadline
    /// (see [`Connection::set_deadline`] and
    /// [`rtplatform::fault::FaultPolicy`]). The connection itself may
    /// still be usable, but a caller that cannot tell a late reply from
    /// a lost one should drop it and reconnect.
    Deadline,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Protocol(e) => write!(f, "framing error: {e}"),
            TransportError::Deadline => write!(f, "operation missed its deadline"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if is_timeout(&e) {
            TransportError::Deadline
        } else {
            TransportError::Io(e)
        }
    }
}

/// Socket timeouts surface as `TimedOut` or `WouldBlock` depending on
/// platform; both mean "the deadline elapsed".
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// A bidirectional, framed GIOP connection.
pub trait Connection: Send + Sync {
    /// Sends one complete GIOP frame.
    ///
    /// # Errors
    ///
    /// I/O failures or a closed peer.
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError>;

    /// Sends one complete GIOP frame held as a segment chain. The
    /// default coalesces into a `Vec` for transports without
    /// scatter-gather; [`TcpConn`] overrides it with a vectored write
    /// so chain segments reach the socket without being copied
    /// together first.
    ///
    /// # Errors
    ///
    /// I/O failures or a closed peer.
    fn send_chain(&self, frame: &FrameBuf) -> Result<(), TransportError> {
        match frame.as_single() {
            Some(bytes) => self.send_frame(bytes),
            None => self.send_frame(&frame.to_vec()),
        }
    }

    /// Receives one complete GIOP frame (header + body), blocking.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] at end of stream; framing violations;
    /// [`TransportError::Deadline`] when a recv deadline is set and
    /// elapses.
    fn recv_frame(&self) -> Result<Vec<u8>, TransportError>;

    /// Bounds how long a subsequent [`recv_frame`](Connection::recv_frame)
    /// may block (`None` = block forever, the default). Implementations
    /// that cannot honour deadlines keep the default no-op — callers that
    /// *require* bounded blocking must use a deadline-capable transport
    /// ([`TcpConn`], [`LoopbackConn`], or a wrapper delegating to one).
    ///
    /// # Errors
    ///
    /// Socket-option failures.
    fn set_deadline(&self, _recv: Option<Duration>) -> Result<(), TransportError> {
        Ok(())
    }

    /// Closes the connection; subsequent operations fail.
    fn close(&self);
}

// ---------------------------------------------------------------------
// Loopback (in-process) transport
// ---------------------------------------------------------------------

#[derive(Default)]
struct Pipe {
    queue: Mutex<(VecDeque<Vec<u8>>, bool)>,
    cond: Condvar,
}

impl Pipe {
    fn push(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let mut g = self.queue.lock();
        if g.1 {
            return Err(TransportError::Closed);
        }
        g.0.push_back(frame);
        drop(g);
        self.cond.notify_one();
        Ok(())
    }

    fn pop(&self, deadline: Option<Duration>) -> Result<Vec<u8>, TransportError> {
        let timeout_at = deadline.map(|d| std::time::Instant::now() + d);
        let mut g = self.queue.lock();
        loop {
            if let Some(frame) = g.0.pop_front() {
                return Ok(frame);
            }
            if g.1 {
                return Err(TransportError::Closed);
            }
            match timeout_at {
                None => self.cond.wait(&mut g),
                Some(at) => {
                    if self.cond.wait_until(&mut g, at).timed_out() && g.0.is_empty() && !g.1 {
                        return Err(TransportError::Deadline);
                    }
                }
            }
        }
    }

    fn close(&self) {
        self.queue.lock().1 = true;
        self.cond.notify_all();
    }
}

/// One endpoint of an in-process loopback connection.
pub struct LoopbackConn {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    recv_deadline: Mutex<Option<Duration>>,
}

impl std::fmt::Debug for LoopbackConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LoopbackConn")
    }
}

/// Creates a connected pair of loopback endpoints.
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        LoopbackConn {
            tx: Arc::clone(&a),
            rx: Arc::clone(&b),
            recv_deadline: Mutex::new(None),
        },
        LoopbackConn {
            tx: b,
            rx: a,
            recv_deadline: Mutex::new(None),
        },
    )
}

impl Connection for LoopbackConn {
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx.push(frame.to_vec())
    }

    fn recv_frame(&self) -> Result<Vec<u8>, TransportError> {
        let deadline = *self.recv_deadline.lock();
        self.rx.pop(deadline)
    }

    fn set_deadline(&self, recv: Option<Duration>) -> Result<(), TransportError> {
        *self.recv_deadline.lock() = recv;
        Ok(())
    }

    fn close(&self) {
        self.tx.close();
        self.rx.close();
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// A framed GIOP connection over a TCP socket (loopback in the paper's
/// setup).
pub struct TcpConn {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TcpConn")
    }
}

impl TcpConn {
    /// Wraps a connected stream; disables Nagle for latency fidelity.
    ///
    /// # Errors
    ///
    /// Propagates socket option / clone failures.
    pub fn new(stream: TcpStream) -> Result<TcpConn, TransportError> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(TcpConn {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
        })
    }

    /// Connects to a listening ORB endpoint (5 s connect deadline, no
    /// send/recv deadlines — the historical behaviour).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> Result<TcpConn, TransportError> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        TcpConn::new(stream)
    }

    /// Connects under a [`FaultPolicy`]: honours its connect deadline and
    /// arms the socket's send/recv deadlines, so no later operation on
    /// this connection blocks past the policy's bounds.
    ///
    /// # Errors
    ///
    /// [`TransportError::Deadline`] when the connect deadline elapses;
    /// other connection failures.
    pub fn connect_with(addr: SocketAddr, policy: &FaultPolicy) -> Result<TcpConn, TransportError> {
        let stream = TcpStream::connect_timeout(&addr, policy.connect_timeout)?;
        stream.set_write_timeout(Some(policy.send_timeout))?;
        stream.set_read_timeout(Some(policy.recv_timeout))?;
        TcpConn::new(stream)
    }
}

impl Connection for TcpConn {
    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut w = self.writer.lock();
        w.write_all(frame)?;
        w.flush()?;
        Ok(())
    }

    /// Scatter-gathers the chain's segments straight into the socket
    /// (`writev`), advancing across partial writes.
    fn send_chain(&self, frame: &FrameBuf) -> Result<(), TransportError> {
        let mut w = self.writer.lock();
        write_all_vectored(&mut *w, frame)?;
        w.flush()?;
        Ok(())
    }

    /// Receives one frame. With a recv deadline armed, a timeout returns
    /// [`TransportError::Deadline`]; if it strikes *mid-frame* the stream
    /// position is inside a message, so the connection must be dropped,
    /// not reused — exactly what the retry layers do.
    fn recv_frame(&self) -> Result<Vec<u8>, TransportError> {
        let mut r = self.reader.lock();
        let mut header = [0u8; HEADER_LEN];
        read_exact_or_closed(&mut *r, &mut header)?;
        let body_len = giop::body_size(&header).map_err(TransportError::Protocol)?;
        let mut frame = vec![0u8; HEADER_LEN + body_len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        read_exact_or_closed(&mut *r, &mut frame[HEADER_LEN..])?;
        Ok(frame)
    }

    fn set_deadline(&self, recv: Option<Duration>) -> Result<(), TransportError> {
        // `set_read_timeout(Some(0))` is an invalid argument; treat a zero
        // deadline as "already missed" semantics via the smallest timeout.
        let recv = recv.map(|d| d.max(Duration::from_nanos(1)));
        self.reader.lock().set_read_timeout(recv)?;
        Ok(())
    }

    fn close(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

/// Writes every byte of `frame` via `write_vectored`, rebuilding the
/// `IoSlice` list after partial writes. Falls back to per-slice
/// `write_all` only when the writer reports a zero-length vectored
/// write (a writer that ignores vectoring).
pub(crate) fn write_all_vectored(w: &mut impl Write, frame: &FrameBuf) -> std::io::Result<()> {
    let mut skip = 0usize;
    let total = frame.len();
    while skip < total {
        let rest = frame.slice(skip, total);
        let slices = rest.io_slices();
        let n = w.write_vectored(&slices)?;
        if n == 0 {
            for s in rest.slices() {
                w.write_all(s)?;
            }
            return Ok(());
        }
        skip += n;
    }
    Ok(())
}

fn read_exact_or_closed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), TransportError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(TransportError::Closed),
        Err(e) => Err(e.into()),
    }
}

/// A TCP acceptor bound to an ephemeral loopback port.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpAcceptor({:?})", self.listener.local_addr())
    }
}

impl TcpAcceptor {
    /// Binds to `127.0.0.1` on an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_loopback() -> Result<TcpAcceptor, TransportError> {
        Ok(TcpAcceptor {
            listener: TcpListener::bind(("127.0.0.1", 0))?,
        })
    }

    /// The bound address clients should connect to.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one connection (blocking).
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn accept(&self) -> Result<TcpConn, TransportError> {
        let (stream, _) = self.listener.accept()?;
        TcpConn::new(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::Endian;
    use crate::giop::{decode, Message, RequestMessage};

    fn frame() -> Vec<u8> {
        RequestMessage {
            request_id: 1,
            response_expected: true,
            object_key: b"k".to_vec(),
            operation: "op".to_string(),
            body: vec![5; 100],
            service_context: Vec::new(),
        }
        .encode(Endian::Big)
    }

    #[test]
    fn loopback_roundtrip() {
        let (a, b) = loopback_pair();
        a.send_frame(&frame()).unwrap();
        let got = b.recv_frame().unwrap();
        assert_eq!(got, frame());
        // And back.
        b.send_frame(&frame()).unwrap();
        assert_eq!(a.recv_frame().unwrap(), frame());
    }

    #[test]
    fn loopback_close_unblocks() {
        let (a, b) = loopback_pair();
        let h = std::thread::spawn(move || b.recv_frame());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert!(matches!(h.join().unwrap(), Err(TransportError::Closed)));
        assert!(matches!(
            a.send_frame(&frame()),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn tcp_roundtrip_with_framing() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let incoming = conn.recv_frame().unwrap();
            // Echo it straight back.
            conn.send_frame(&incoming).unwrap();
        });
        let client = TcpConn::connect(addr).unwrap();
        client.send_frame(&frame()).unwrap();
        let reply = client.recv_frame().unwrap();
        match decode(&reply).unwrap() {
            Message::Request(r) => assert_eq!(r.body.len(), 100),
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_close_detected() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            drop(conn); // immediately hang up
        });
        let client = TcpConn::connect(addr).unwrap();
        server.join().unwrap();
        assert!(matches!(client.recv_frame(), Err(TransportError::Closed)));
    }

    #[test]
    fn tcp_send_chain_vectored_roundtrip() {
        use rtplatform::bufchain::SegPool;
        let pool = SegPool::new(8, 64); // frames span several segments
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let a = conn.recv_frame().unwrap();
            let b = conn.recv_frame().unwrap();
            (a, b)
        });
        let client = TcpConn::connect(addr).unwrap();
        let msg = RequestMessage {
            request_id: 1,
            response_expected: true,
            object_key: b"k".to_vec(),
            operation: "op".to_string(),
            body: vec![5; 100],
            service_context: Vec::new(),
        };
        let chain = msg.encode_chain(Endian::Big, &pool);
        assert!(chain.as_single().is_none(), "frame must span segments");
        client.send_chain(&chain).unwrap();
        client.send_chain(&chain).unwrap();
        let (a, b) = server.join().unwrap();
        assert_eq!(a, msg.encode(Endian::Big), "vectored write is exact");
        assert_eq!(b, a, "frame boundaries preserved");
    }

    #[test]
    fn loopback_send_chain_matches_send_frame() {
        use rtplatform::bufchain::SegPool;
        let pool = SegPool::new(8, 32);
        let (a, b) = loopback_pair();
        let msg = RequestMessage {
            request_id: 9,
            response_expected: false,
            object_key: b"key".to_vec(),
            operation: "echo".to_string(),
            body: vec![7; 50],
            service_context: Vec::new(),
        };
        a.send_chain(&msg.encode_chain(Endian::Little, &pool))
            .unwrap();
        assert_eq!(b.recv_frame().unwrap(), msg.encode(Endian::Little));
    }

    #[test]
    fn multiple_frames_preserve_boundaries() {
        let acceptor = TcpAcceptor::bind_loopback().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let mut sizes = Vec::new();
            for _ in 0..3 {
                sizes.push(conn.recv_frame().unwrap().len());
            }
            sizes
        });
        let client = TcpConn::connect(addr).unwrap();
        for _ in 0..3 {
            client.send_frame(&frame()).unwrap();
        }
        let sizes = server.join().unwrap();
        assert_eq!(sizes, vec![frame().len(); 3]);
    }
}
