//! Concurrency and stress tests of the scoped-memory model: multiple
//! threads sharing scopes, pools under contention, and reclamation races.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtmem::{Ctx, MemoryModel, RtmemError, ScopePool, Wedge};

#[test]
fn many_threads_share_one_scope() {
    // RTSJ allows several threads inside one scope as long as each enters
    // with the same parent; the scope reclaims only after the last exit.
    let model = MemoryModel::new();
    let scope = model.create_scoped(1 << 20).unwrap();
    let _w = Wedge::pin_from_base(&model, scope).unwrap();
    let counter = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let model = model.clone();
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            let mut ctx = Ctx::no_heap(&model);
            for _ in 0..200 {
                ctx.enter(scope, |ctx| {
                    let r = ctx.alloc(1u64).unwrap();
                    r.with(ctx, |_| counter.fetch_add(1, Ordering::Relaxed))
                        .unwrap();
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 1600);
    // Wedge still pins: not reclaimed, all 1600 objects accounted.
    let snap = model.snapshot(scope).unwrap();
    assert_eq!(snap.epoch, 0);
    assert_eq!(snap.stats.objects_allocated, 1600);
}

#[test]
fn scope_reclaims_only_after_last_thread() {
    let model = MemoryModel::new();
    let scope = model.create_scoped(1 << 16).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let model = model.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut ctx = Ctx::no_heap(&model);
            ctx.enter(scope, |ctx| {
                let _ = ctx.alloc(7u8).unwrap();
                barrier.wait(); // everyone inside at once
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = model.snapshot(scope).unwrap();
    assert_eq!(
        snap.epoch, 1,
        "exactly one reclamation for the joint occupancy"
    );
    assert_eq!(snap.used, 0);
}

#[test]
fn pool_contention_never_double_leases() {
    let model = MemoryModel::new();
    let pool = Arc::new(ScopePool::new(&model, 1, 8 << 10, 3).unwrap());
    let in_use = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let model = model.clone();
        let pool = Arc::clone(&pool);
        let in_use = Arc::clone(&in_use);
        let peak = Arc::clone(&peak);
        handles.push(std::thread::spawn(move || {
            let mut ctx = Ctx::no_heap(&model);
            let mut acquired = 0;
            while acquired < 100 {
                match pool.acquire() {
                    Ok(lease) => {
                        let now = in_use.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        assert!(now <= 3, "more leases than pooled scopes");
                        ctx.enter(lease.region(), |ctx| {
                            let _ = ctx.alloc_bytes(64).unwrap();
                        })
                        .unwrap();
                        in_use.fetch_sub(1, Ordering::SeqCst);
                        drop(lease);
                        acquired += 1;
                    }
                    Err(RtmemError::PoolExhausted { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(peak.load(Ordering::SeqCst) <= 3);
    assert_eq!(pool.available(), 3, "all scopes returned");
}

#[test]
fn pool_stat_reads_stay_wait_free_under_lease_churn() {
    // `available()` is a single atomic load since the Treiber-stack
    // conversion; it must return promptly no matter how hard other
    // threads churn acquire/release. (Before the conversion it took
    // the same mutex as every acquire.)
    let model = MemoryModel::new();
    let pool = Arc::new(ScopePool::new(&model, 1, 4 << 10, 4).unwrap());
    let stop = Arc::new(AtomicUsize::new(0));
    let churners: Vec<_> = (0..4)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    if let Ok(lease) = pool.acquire() {
                        std::hint::black_box(&lease);
                    }
                }
            })
        })
        .collect();
    let t = std::time::Instant::now();
    let mut reads = 0u64;
    while t.elapsed() < Duration::from_millis(200) {
        let v = pool.available();
        assert!(v <= 4);
        reads += 1;
    }
    let elapsed = t.elapsed();
    stop.store(1, Ordering::SeqCst);
    for c in churners {
        c.join().unwrap();
    }
    // Sanity on rate: wait-free loads do well over 1k reads/ms even on
    // the slowest CI box; a mutex-contended read would collapse.
    assert!(
        reads as f64 / elapsed.as_millis().max(1) as f64 > 100.0,
        "stat reads throttled: {reads} reads in {elapsed:?}"
    );
}

#[test]
fn stale_refs_from_other_threads_fail_safely() {
    let model = MemoryModel::new();
    let scope = model.create_scoped(1 << 16).unwrap();
    // Thread A creates an object and leaks the reference out.
    let leaked = {
        let mut ctx = Ctx::no_heap(&model);
        ctx.enter(scope, |ctx| ctx.alloc(String::from("transient")).unwrap())
            .unwrap()
    };
    // The scope has been reclaimed; any thread using the ref gets a
    // clean error, never garbage.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let model = model.clone();
        let leaked = leaked.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = Ctx::no_heap(&model);
            assert!(matches!(
                leaked.with(&ctx, |s| s.len()),
                Err(RtmemError::StaleReference { .. })
            ));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn sibling_isolation_under_concurrency() {
    // Two threads in sibling scopes can only share through the parent.
    let model = MemoryModel::new();
    let parent = model.create_scoped(1 << 18).unwrap();
    let left = model.create_scoped(1 << 14).unwrap();
    let right = model.create_scoped(1 << 14).unwrap();
    let _wp = Wedge::pin_from_base(&model, parent).unwrap();
    let _wl = Wedge::pin_under(&model, left, parent).unwrap();
    let _wr = Wedge::pin_under(&model, right, parent).unwrap();

    let mut seed_ctx = Ctx::no_heap(&model);
    let mailbox = seed_ctx
        .enter(parent, |ctx| ctx.alloc(Vec::<u32>::new()).unwrap())
        .unwrap();

    let mut handles = Vec::new();
    for (scope, base) in [(left, 0u32), (right, 1_000u32)] {
        let model = model.clone();
        let mailbox = mailbox.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = Ctx::no_heap(&model);
            ctx.enter(parent, |ctx| {
                ctx.enter(scope, |ctx| {
                    // Private allocation in my own scope…
                    let private = ctx.alloc(base).unwrap();
                    assert_eq!(private.get_clone(ctx).unwrap(), base);
                    // …and communication through the parent mailbox only.
                    for i in 0..50 {
                        mailbox.with_mut(ctx, |v| v.push(base + i)).unwrap();
                    }
                })
                .unwrap();
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut ctx = Ctx::no_heap(&model);
    ctx.enter(parent, |ctx| {
        mailbox
            .with(ctx, |v| {
                assert_eq!(v.len(), 100);
                assert_eq!(v.iter().filter(|&&x| x < 1_000).count(), 50);
            })
            .unwrap();
    })
    .unwrap();
}

#[test]
fn wedge_drop_race_with_enter() {
    // Repeatedly: one thread holds a wedge and drops it while another
    // enters/exits; the region must end in a consistent state each round.
    let model = MemoryModel::new();
    for _ in 0..50 {
        let scope = model.create_scoped(4 << 10).unwrap();
        let wedge = Wedge::pin_from_base(&model, scope).unwrap();
        let model2 = model.clone();
        let t = std::thread::spawn(move || {
            let mut ctx = Ctx::no_heap(&model2);
            // May race with the wedge drop; entering after reclamation
            // re-parents the fresh epoch, which is legal.
            let _ = ctx.enter(scope, |ctx| {
                let _ = ctx.alloc(1u8);
            });
        });
        std::thread::sleep(Duration::from_micros(50));
        drop(wedge);
        t.join().unwrap();
        let snap = model.snapshot(scope).unwrap();
        assert_eq!(snap.entered, 0);
        assert_eq!(snap.pins, 0);
        assert_eq!(snap.used, 0, "fully reclaimed after both parties left");
        model.destroy_scoped(scope).unwrap();
    }
}

#[test]
fn vt_memory_grows_lazily_and_reclaims() {
    // VTMemory: constant-time creation (no eager zeroing), geometric
    // growth under allocation, same reclamation semantics.
    let model = MemoryModel::new();
    let vt = model.create_scoped_vt(1 << 20).unwrap();
    let mut ctx = Ctx::no_heap(&model);
    ctx.enter(vt, |ctx| {
        let mut refs = Vec::new();
        for i in 0..100 {
            let b = ctx.alloc_bytes(1024).unwrap();
            b.copy_from_slice(ctx, &[i as u8; 16]).unwrap();
            refs.push(b);
        }
        assert_eq!(refs[0].to_vec(ctx).unwrap()[..16], [0u8; 16]);
        assert_eq!(refs[99].to_vec(ctx).unwrap()[..16], [99u8; 16]);
    })
    .unwrap();
    let snap = model.snapshot(vt).unwrap();
    assert!(snap.kind.is_scoped());
    assert_eq!(snap.used, 0, "VT scope reclaimed on exit too");
    assert_eq!(snap.epoch, 1);
    model.destroy_scoped(vt).unwrap();
}

#[test]
fn vt_memory_respects_budget() {
    let model = MemoryModel::new();
    let vt = model.create_scoped_vt(4096).unwrap();
    let mut ctx = Ctx::no_heap(&model);
    ctx.enter(vt, |ctx| {
        ctx.alloc_bytes(4000).unwrap();
        assert!(matches!(
            ctx.alloc_bytes(200),
            Err(RtmemError::OutOfMemory { .. })
        ));
    })
    .unwrap();
    model.destroy_scoped(vt).unwrap();
}

#[test]
fn all_snapshots_inventories_live_regions() {
    let model = MemoryModel::new();
    let a = model.create_scoped(1 << 12).unwrap();
    let b = model.create_scoped_vt(1 << 12).unwrap();
    let snaps = model.all_snapshots();
    assert_eq!(snaps.len(), 4, "heap + immortal + 2 scoped");
    assert!(snaps.iter().any(|s| s.id == a));
    assert!(snaps.iter().any(|s| s.id == b));
    model.destroy_scoped(a).unwrap();
    let snaps = model.all_snapshots();
    assert_eq!(snaps.len(), 3);
    assert!(!snaps.iter().any(|s| s.id == a));
}
