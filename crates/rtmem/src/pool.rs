//! Scope pools: pre-created scoped regions reused across component
//! instantiations.
//!
//! The CCL `RTSJAttributes/ScopedPool` element configures, per scope level,
//! a pool of `LTMemory` areas created once (paying the linear-time zeroing
//! up front) and recycled at runtime (paper Section 2.2). Ablation A3
//! measures the win over fresh creation.
//!
//! Since the lock-free conversion (DESIGN.md §5e) the free list is a
//! Treiber stack over the pool's preallocated slot indices: `acquire`
//! and lease drop are CAS loops that never block, and
//! [`ScopePool::available`] is a single atomic load. The stack head
//! packs a 32-bit ABA tag next to the 32-bit slot index — slot indices
//! are preallocated and recycled forever, so an untagged head could see
//! A→B→A between a reader's load and its CAS.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{Result, RtmemError};
use crate::model::MemoryModel;
use crate::region::RegionId;

/// Sentinel slot index: empty stack / end of list.
const NIL: u32 = u32::MAX;

/// Lock-free LIFO of slot indices (Treiber stack with ABA tag).
struct FreeStack {
    /// `tag << 32 | index`; the tag increments on every successful CAS.
    head: AtomicU64,
    /// Per-slot next pointer (slot index or [`NIL`]). A slot's next is
    /// only written by the thread that currently owns the slot (it is
    /// either freshly popped or being pushed), so plain stores suffice.
    next: Box<[AtomicU32]>,
    /// Number of slots currently in the stack. Maintained with
    /// wait-free `fetch_add`/`fetch_sub` beside the CAS loops; it may
    /// momentarily lag the structure by one during a push/pop, which is
    /// fine for a statistics read.
    len: AtomicUsize,
}

fn pack(tag: u32, index: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(index)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl FreeStack {
    /// Builds a stack holding every slot in `0..slots`.
    fn full(slots: usize) -> FreeStack {
        let next: Box<[AtomicU32]> = (0..slots)
            .map(|i| {
                // Slot i links to i+1; the last links to NIL.
                AtomicU32::new(if i + 1 < slots { (i + 1) as u32 } else { NIL })
            })
            .collect();
        FreeStack {
            head: AtomicU64::new(pack(0, if slots == 0 { NIL } else { 0 })),
            next,
            len: AtomicUsize::new(slots),
        }
    }

    fn pop(&self) -> Option<u32> {
        loop {
            let cur = self.head.load(Ordering::SeqCst);
            let (tag, idx) = unpack(cur);
            if idx == NIL {
                return None;
            }
            let nxt = self.next[idx as usize].load(Ordering::SeqCst);
            rtplatform::chk::yield_point("freestack.pop.loaded");
            if self
                .head
                .compare_exchange(
                    cur,
                    pack(tag.wrapping_add(1), nxt),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(idx);
            }
            std::hint::spin_loop();
        }
    }

    fn push(&self, idx: u32) {
        loop {
            let cur = self.head.load(Ordering::SeqCst);
            let (tag, top) = unpack(cur);
            self.next[idx as usize].store(top, Ordering::SeqCst);
            rtplatform::chk::yield_point("freestack.push.staged");
            if self
                .head
                .compare_exchange(
                    cur,
                    pack(tag.wrapping_add(1), idx),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                self.len.fetch_add(1, Ordering::SeqCst);
                return;
            }
            std::hint::spin_loop();
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }
}

/// A pool of same-sized scoped regions for one scope level.
///
/// # Examples
///
/// ```
/// use rtmem::{MemoryModel, ScopePool, Ctx};
///
/// let model = MemoryModel::new();
/// let pool = ScopePool::new(&model, 1, 4096, 2)?;
/// let lease = pool.acquire()?;
/// let mut ctx = Ctx::immortal(&model);
/// ctx.enter(lease.region(), |ctx| { let _ = ctx.alloc(3u8); })?;
/// drop(lease); // region returns to the pool, reclaimed and reusable
/// # Ok::<(), rtmem::RtmemError>(())
/// ```
pub struct ScopePool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    model: MemoryModel,
    level: u32,
    scope_size: usize,
    /// The pooled regions, fixed at construction; the free stack and
    /// leases refer to them by slot index.
    slots: Box<[RegionId]>,
    free: FreeStack,
    capacity: usize,
    /// Observer hook, resolved at pool construction when the model
    /// already carries an observer: (entity id, leased-scopes gauge).
    obs: Option<(u32, rtobs::GaugeId)>,
}

impl PoolInner {
    fn record_lease_change(&self, kind: rtobs::EventKind, leased: u64) {
        if let (Some((entity, gauge)), Some(o)) = (self.obs, self.model.inner.obs()) {
            match kind {
                rtobs::EventKind::PoolAcquire => o.obs.gauge_add(gauge, 1),
                _ => o.obs.gauge_sub(gauge, 1),
            }
            o.obs.record(kind, entity, leased);
        }
    }
}

impl std::fmt::Debug for ScopePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopePool")
            .field("level", &self.inner.level)
            .field("scope_size", &self.inner.scope_size)
            .field("capacity", &self.inner.capacity)
            .field("free", &self.inner.free.len())
            .finish()
    }
}

impl ScopePool {
    /// Creates a pool of `pool_size` scoped regions of `scope_size` bytes
    /// each, for scope level `level`. All backing stores are allocated and
    /// zeroed here, up front.
    pub fn new(
        model: &MemoryModel,
        level: u32,
        scope_size: usize,
        pool_size: usize,
    ) -> Result<ScopePool> {
        let slots: Box<[RegionId]> = (0..pool_size)
            .map(|_| model.create_pooled(scope_size))
            .collect();
        let obs = model.inner.obs().map(|o| {
            (
                o.obs.register_entity(&format!("scope-pool:L{level}")),
                o.obs.gauge(&format!("rtmem_scope_pool_l{level}_leased")),
            )
        });
        Ok(ScopePool {
            inner: Arc::new(PoolInner {
                model: model.clone(),
                level,
                scope_size,
                free: FreeStack::full(slots.len()),
                slots,
                capacity: pool_size,
                obs,
            }),
        })
    }

    /// The scope level this pool serves (CCL `ScopeLevel`).
    pub fn level(&self) -> u32 {
        self.inner.level
    }

    /// Byte budget of each pooled scope (CCL `ScopeSize`).
    pub fn scope_size(&self) -> usize {
        self.inner.scope_size
    }

    /// Total number of pooled scopes (CCL `PoolSize`).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of scopes currently available. A single atomic load —
    /// never blocks, even while other threads acquire or release.
    pub fn available(&self) -> usize {
        self.inner.free.len()
    }

    /// Takes a scope from the pool. Lock-free: a CAS loop against the
    /// free stack, no mutex anywhere on the path.
    ///
    /// # Errors
    ///
    /// [`RtmemError::PoolExhausted`] when every pooled scope is leased out.
    pub fn acquire(&self) -> Result<ScopeLease> {
        // Skip any scope that is somehow still pinned (e.g. a lease was
        // dropped while a wedge remained) by setting it aside and
        // pushing it back when done. Bounded by capacity pops.
        let mut deferred: [u32; 8] = [NIL; 8];
        let mut deferred_n = 0usize;
        let mut got = None;
        for _ in 0..self.inner.capacity {
            let Some(slot) = self.inner.free.pop() else {
                break;
            };
            let id = self.inner.slots[slot as usize];
            match self.inner.model.snapshot(id) {
                Ok(s) if s.entered == 0 && s.pins == 0 && s.parent.is_none() => {
                    got = Some(slot);
                    break;
                }
                Ok(_) => {
                    if deferred_n < deferred.len() {
                        deferred[deferred_n] = slot;
                        deferred_n += 1;
                    } else {
                        // Pathological pin pile-up: return it now and
                        // stop scanning rather than grow a buffer.
                        self.inner.free.push(slot);
                        break;
                    }
                }
                Err(_) => { /* destroyed externally; drop it from the pool */ }
            }
        }
        for &slot in &deferred[..deferred_n] {
            self.inner.free.push(slot);
        }
        match got {
            Some(slot) => {
                let leased = (self.inner.capacity - self.inner.free.len()) as u64;
                self.inner
                    .record_lease_change(rtobs::EventKind::PoolAcquire, leased);
                Ok(ScopeLease {
                    pool: Arc::clone(&self.inner),
                    slot,
                })
            }
            None => Err(RtmemError::PoolExhausted {
                level: self.inner.level,
            }),
        }
    }
}

impl Clone for ScopePool {
    fn clone(&self) -> Self {
        ScopePool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        // No leases can be outstanding (each holds an Arc to us), so
        // everything still pooled is in the free stack.
        while let Some(slot) = self.free.pop() {
            let _ = self.model.destroy_pooled(self.slots[slot as usize]);
        }
    }
}

/// A leased pooled scope; returns to the pool on drop.
///
/// The lease shares ownership of the pool, so it may be stored in
/// long-lived structures (the Compadres SMM keeps one per live child
/// component). Dropping the lease does not force reclamation — if contexts
/// or wedges still pin the region it is reclaimed when the last one
/// leaves, and the pool skips it until then.
pub struct ScopeLease {
    pool: Arc<PoolInner>,
    slot: u32,
}

impl std::fmt::Debug for ScopeLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScopeLease({:?})", self.region())
    }
}

impl ScopeLease {
    /// The leased region.
    pub fn region(&self) -> RegionId {
        self.pool.slots[self.slot as usize]
    }
}

impl Drop for ScopeLease {
    fn drop(&mut self) {
        self.pool.free.push(self.slot);
        let leased = (self.pool.capacity - self.pool.free.len()) as u64;
        self.pool
            .record_lease_change(rtobs::EventKind::PoolRelease, leased);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn acquire_release_cycle() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 1024, 2).unwrap();
        assert_eq!(pool.available(), 2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a.region(), b.region());
        assert!(matches!(
            pool.acquire(),
            Err(RtmemError::PoolExhausted { level: 1 })
        ));
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.acquire().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pooled_scope_reclaims_between_uses() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 1024, 1).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let first_region;
        {
            let lease = pool.acquire().unwrap();
            first_region = lease.region();
            ctx.enter(lease.region(), |ctx| {
                ctx.alloc(0xAAu8).unwrap();
            })
            .unwrap();
        }
        let lease = pool.acquire().unwrap();
        assert_eq!(lease.region(), first_region, "same region object reused");
        let snap = m.snapshot(lease.region()).unwrap();
        assert_eq!(snap.used, 0, "contents reclaimed between leases");
        assert_eq!(snap.epoch, 1);
    }

    #[test]
    fn still_pinned_scope_skipped_until_free() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 2, 1024, 2).unwrap();
        let lease = pool.acquire().unwrap();
        let wedge = crate::wedge::Wedge::pin_from_base(&m, lease.region()).unwrap();
        let pinned = lease.region();
        drop(lease); // back in pool but still pinned
        let other = pool.acquire().unwrap();
        assert_ne!(other.region(), pinned, "pinned scope must be skipped");
        drop(other);
        drop(wedge);
        // Now both are acquirable again.
        let x = pool.acquire().unwrap();
        let y = pool.acquire().unwrap();
        assert_ne!(x.region(), y.region());
    }

    #[test]
    fn pooled_scopes_not_client_destroyable() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 256, 1).unwrap();
        let lease = pool.acquire().unwrap();
        assert!(m.destroy_scoped(lease.region()).is_err());
    }

    #[test]
    fn free_stack_is_lifo_and_tagged() {
        let s = FreeStack::full(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
        s.push(0);
        assert_eq!(s.pop(), Some(0), "LIFO reuse");
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
        assert_eq!(s.len(), 0);
        let (tag, _) = unpack(s.head.load(Ordering::SeqCst));
        // 4 pops + 1 push succeeded; the empty pop never CASes.
        assert_eq!(tag, 5, "every successful CAS bumps the ABA tag");
    }

    #[test]
    fn concurrent_acquire_release_never_double_leases() {
        use std::sync::atomic::AtomicBool;
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 512, 4).unwrap();
        let in_use: Arc<[AtomicBool]> = (0..4).map(|_| AtomicBool::new(false)).collect();
        let iters = if cfg!(miri) { 50 } else { 20_000 };
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let in_use = Arc::clone(&in_use);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        if let Ok(lease) = pool.acquire() {
                            let slot = lease.slot as usize;
                            assert!(
                                !in_use[slot].swap(true, Ordering::SeqCst),
                                "slot {slot} leased twice"
                            );
                            in_use[slot].store(false, Ordering::SeqCst);
                            drop(lease);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.available(), 4, "all scopes returned");
    }
}
