//! Scope pools: pre-created scoped regions reused across component
//! instantiations.
//!
//! The CCL `RTSJAttributes/ScopedPool` element configures, per scope level,
//! a pool of `LTMemory` areas created once (paying the linear-time zeroing
//! up front) and recycled at runtime (paper Section 2.2). Ablation A3
//! measures the win over fresh creation.

use std::sync::Arc;

use rtplatform::sync::Mutex;

use crate::error::{Result, RtmemError};
use crate::model::MemoryModel;
use crate::region::RegionId;

/// A pool of same-sized scoped regions for one scope level.
///
/// # Examples
///
/// ```
/// use rtmem::{MemoryModel, ScopePool, Ctx};
///
/// let model = MemoryModel::new();
/// let pool = ScopePool::new(&model, 1, 4096, 2)?;
/// let lease = pool.acquire()?;
/// let mut ctx = Ctx::immortal(&model);
/// ctx.enter(lease.region(), |ctx| { let _ = ctx.alloc(3u8); })?;
/// drop(lease); // region returns to the pool, reclaimed and reusable
/// # Ok::<(), rtmem::RtmemError>(())
/// ```
pub struct ScopePool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    model: MemoryModel,
    level: u32,
    scope_size: usize,
    free: Mutex<Vec<RegionId>>,
    capacity: usize,
    /// Observer hook, resolved at pool construction when the model
    /// already carries an observer: (entity id, leased-scopes gauge).
    obs: Option<(u32, rtobs::GaugeId)>,
}

impl PoolInner {
    fn record_lease_change(&self, kind: rtobs::EventKind, leased: u64) {
        if let (Some((entity, gauge)), Some(o)) = (self.obs, self.model.inner.obs()) {
            match kind {
                rtobs::EventKind::PoolAcquire => o.obs.gauge_add(gauge, 1),
                _ => o.obs.gauge_sub(gauge, 1),
            }
            o.obs.record(kind, entity, leased);
        }
    }
}

impl std::fmt::Debug for ScopePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopePool")
            .field("level", &self.inner.level)
            .field("scope_size", &self.inner.scope_size)
            .field("capacity", &self.inner.capacity)
            .field("free", &self.inner.free.lock().len())
            .finish()
    }
}

impl ScopePool {
    /// Creates a pool of `pool_size` scoped regions of `scope_size` bytes
    /// each, for scope level `level`. All backing stores are allocated and
    /// zeroed here, up front.
    pub fn new(
        model: &MemoryModel,
        level: u32,
        scope_size: usize,
        pool_size: usize,
    ) -> Result<ScopePool> {
        let mut free = Vec::with_capacity(pool_size);
        for _ in 0..pool_size {
            free.push(model.create_pooled(scope_size));
        }
        let obs = model.inner.obs().map(|o| {
            (
                o.obs.register_entity(&format!("scope-pool:L{level}")),
                o.obs.gauge(&format!("rtmem_scope_pool_l{level}_leased")),
            )
        });
        Ok(ScopePool {
            inner: Arc::new(PoolInner {
                model: model.clone(),
                level,
                scope_size,
                free: Mutex::new(free),
                capacity: pool_size,
                obs,
            }),
        })
    }

    /// The scope level this pool serves (CCL `ScopeLevel`).
    pub fn level(&self) -> u32 {
        self.inner.level
    }

    /// Byte budget of each pooled scope (CCL `ScopeSize`).
    pub fn scope_size(&self) -> usize {
        self.inner.scope_size
    }

    /// Total number of pooled scopes (CCL `PoolSize`).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of scopes currently available.
    pub fn available(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Takes a scope from the pool.
    ///
    /// # Errors
    ///
    /// [`RtmemError::PoolExhausted`] when every pooled scope is leased out.
    pub fn acquire(&self) -> Result<ScopeLease> {
        let mut free = self.inner.free.lock();
        // Skip any scope that is somehow still pinned (e.g. a lease was
        // dropped while a wedge remained); rotate it to the back.
        for _ in 0..free.len() {
            let id = free.remove(0);
            match self.inner.model.snapshot(id) {
                Ok(s) if s.entered == 0 && s.pins == 0 && s.parent.is_none() => {
                    let leased = (self.inner.capacity - free.len()) as u64;
                    drop(free);
                    self.inner
                        .record_lease_change(rtobs::EventKind::PoolAcquire, leased);
                    return Ok(ScopeLease {
                        pool: Arc::clone(&self.inner),
                        region: id,
                    });
                }
                Ok(_) => free.push(id),
                Err(_) => { /* destroyed externally; drop it from the pool */ }
            }
        }
        Err(RtmemError::PoolExhausted {
            level: self.inner.level,
        })
    }
}

impl Clone for ScopePool {
    fn clone(&self) -> Self {
        ScopePool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        for id in self.free.lock().drain(..) {
            let _ = self.model.destroy_pooled(id);
        }
    }
}

/// A leased pooled scope; returns to the pool on drop.
///
/// The lease shares ownership of the pool, so it may be stored in
/// long-lived structures (the Compadres SMM keeps one per live child
/// component). Dropping the lease does not force reclamation — if contexts
/// or wedges still pin the region it is reclaimed when the last one
/// leaves, and the pool skips it until then.
pub struct ScopeLease {
    pool: Arc<PoolInner>,
    region: RegionId,
}

impl std::fmt::Debug for ScopeLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScopeLease({:?})", self.region)
    }
}

impl ScopeLease {
    /// The leased region.
    pub fn region(&self) -> RegionId {
        self.region
    }
}

impl Drop for ScopeLease {
    fn drop(&mut self) {
        let leased = {
            let mut free = self.pool.free.lock();
            free.push(self.region);
            (self.pool.capacity - free.len()) as u64
        };
        self.pool
            .record_lease_change(rtobs::EventKind::PoolRelease, leased);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn acquire_release_cycle() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 1024, 2).unwrap();
        assert_eq!(pool.available(), 2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a.region(), b.region());
        assert!(matches!(
            pool.acquire(),
            Err(RtmemError::PoolExhausted { level: 1 })
        ));
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.acquire().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pooled_scope_reclaims_between_uses() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 1024, 1).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let first_region;
        {
            let lease = pool.acquire().unwrap();
            first_region = lease.region();
            ctx.enter(lease.region(), |ctx| {
                ctx.alloc(0xAAu8).unwrap();
            })
            .unwrap();
        }
        let lease = pool.acquire().unwrap();
        assert_eq!(lease.region(), first_region, "same region object reused");
        let snap = m.snapshot(lease.region()).unwrap();
        assert_eq!(snap.used, 0, "contents reclaimed between leases");
        assert_eq!(snap.epoch, 1);
    }

    #[test]
    fn still_pinned_scope_skipped_until_free() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 2, 1024, 2).unwrap();
        let lease = pool.acquire().unwrap();
        let wedge = crate::wedge::Wedge::pin_from_base(&m, lease.region()).unwrap();
        let pinned = lease.region();
        drop(lease); // back in pool but still pinned
        let other = pool.acquire().unwrap();
        assert_ne!(other.region(), pinned, "pinned scope must be skipped");
        drop(other);
        drop(wedge);
        // Now both are acquirable again.
        let x = pool.acquire().unwrap();
        let y = pool.acquire().unwrap();
        assert_ne!(x.region(), y.region());
    }

    #[test]
    fn pooled_scopes_not_client_destroyable() {
        let m = MemoryModel::new();
        let pool = ScopePool::new(&m, 1, 256, 1).unwrap();
        let lease = pool.acquire().unwrap();
        assert!(m.destroy_scoped(lease.region()).is_err());
    }
}
