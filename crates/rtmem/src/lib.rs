//! # rtmem — an RTSJ-style scoped-memory model in safe Rust
//!
//! This crate reproduces the memory substrate that the Compadres component
//! framework (Hu et al., MIDDLEWARE 2007) builds on: the Real-Time
//! Specification for Java memory model with **heap**, **immortal** and
//! **linear-time scoped** regions.
//!
//! The observable semantics implemented here are the ones the paper relies
//! on (Section 2.2):
//!
//! * a region **tree** built by threads entering scopes, with the
//!   **single parent rule** enforced ([`RtmemError::ScopedCycle`]);
//! * the **Table 1 access rules** — an object may only reference objects
//!   that provably live at least as long as it
//!   ([`MemoryModel::may_reference`], [`RRef::check_store_in`]);
//! * **reclamation** of a scope when the last pin (entered context,
//!   [`Wedge`], or child scope) leaves, dropping objects in reverse
//!   allocation order and invalidating outstanding references by epoch;
//! * **linear-time creation**: a scope's backing store is allocated and
//!   zeroed eagerly, so [`ScopePool`]s of pre-created scopes pay that cost
//!   once and recycle areas at runtime;
//! * the **wedge pattern** to keep a child scope alive without a resident
//!   thread ([`Wedge`]).
//!
//! # Example
//!
//! ```
//! use rtmem::{MemoryModel, Ctx};
//!
//! let model = MemoryModel::new();
//! let parent = model.create_scoped(8192)?;
//! let child = model.create_scoped(4096)?;
//!
//! let mut ctx = Ctx::no_heap(&model); // a no-heap real-time thread
//! ctx.enter(parent, |ctx| {
//!     let shared = ctx.alloc(vec![0u8; 32])?; // lives in `parent`
//!     ctx.enter(child, |ctx| {
//!         // The child may reference the parent (ancestor) …
//!         shared.with(ctx, |v| assert_eq!(v.len(), 32))?;
//!         // … but an object in the parent may not point into the child.
//!         let inner = ctx.alloc(1u8)?;
//!         assert!(inner.check_store_in(parent).is_err());
//!         Ok::<_, rtmem::RtmemError>(())
//!     })??;
//!     Ok::<_, rtmem::RtmemError>(())
//! })??;
//! # Ok::<(), rtmem::RtmemError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ctx;
mod error;
mod model;
mod pool;
mod region;
mod rref;
mod wedge;

pub use ctx::Ctx;
pub use error::{Result, RtmemError};
pub use model::{MemoryModel, DEFAULT_AREA_SIZE};
pub use pool::{ScopeLease, ScopePool};
pub use region::{RegionId, RegionKind, RegionSnapshot, RegionStats};
pub use rref::{RBytes, RRef};
pub use wedge::Wedge;
