//! Wedge handles: keep a scoped region alive without a thread inside it.
//!
//! The RTSJ idiom is the *wedge thread pattern* (paper Section 2.2): a
//! dedicated thread parks inside a scope so its reference count never drops
//! to zero. [`Wedge`] captures the same effect as an RAII pin; the
//! Compadres SMM hands these out from `connect()` and releases them in
//! `disconnect()`.

use std::sync::Arc;

use crate::ctx::Ctx;
use crate::error::Result;
use crate::model::{MemoryModel, ModelInner};
use crate::region::RegionId;

/// An RAII pin on a scoped region.
///
/// While a `Wedge` is alive the region cannot be reclaimed. Dropping the
/// wedge (or calling [`Wedge::disconnect`]) releases the pin; if it was the
/// last pin the region is reclaimed immediately.
///
/// # Examples
///
/// ```
/// use rtmem::{MemoryModel, Ctx, Wedge};
///
/// let model = MemoryModel::new();
/// let scope = model.create_scoped(1024)?;
/// let mut ctx = Ctx::immortal(&model);
/// let keepalive = ctx.enter(scope, |ctx| {
///     let r = ctx.alloc(9u32)?;
///     Ok::<_, rtmem::RtmemError>((Wedge::pin(ctx, scope)?, r))
/// })??;
/// // The scope survived the exit because the wedge pins it.
/// assert!(keepalive.1.is_live());
/// keepalive.0.disconnect();
/// assert!(!keepalive.1.is_live());
/// # Ok::<(), rtmem::RtmemError>(())
/// ```
pub struct Wedge {
    model: Arc<ModelInner>,
    region: RegionId,
    released: bool,
    /// Observer timestamp at pin time, for the wedge-lifetime histogram.
    born_ns: u64,
}

fn birth_stamp(model: &ModelInner) -> u64 {
    model.obs().map_or(0, |o| o.obs.now_ns())
}

impl std::fmt::Debug for Wedge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Wedge({:?}{})",
            self.region,
            if self.released { ", released" } else { "" }
        )
    }
}

impl Wedge {
    /// Pins `region` from the given context. If the region is unparented,
    /// its parent becomes the context's current allocation context (single
    /// parent rule), exactly as a wedge thread entering it would do.
    ///
    /// # Errors
    ///
    /// [`crate::RtmemError::ScopedCycle`] if the region is parented under a
    /// different region than the context's current one.
    pub fn pin(ctx: &Ctx, region: RegionId) -> Result<Wedge> {
        if ctx.stack().contains(&region) {
            // Pinning a scope we are inside: the wedge thread is already in
            // the region, no parent binding needed.
            ctx.model.pin_in_place(region)?;
        } else {
            ctx.model.bind_and_pin(region, ctx.current(), false)?;
        }
        let born_ns = birth_stamp(&ctx.model);
        Ok(Wedge {
            model: Arc::clone(&ctx.model),
            region,
            released: false,
            born_ns,
        })
    }

    /// Pins `region` parenting it (if unparented) directly under immortal
    /// memory — the shape of a level-1 component scope.
    pub fn pin_from_base(model: &MemoryModel, region: RegionId) -> Result<Wedge> {
        Self::pin_under(model, region, model.immortal())
    }

    /// Pins `region` parenting it (if unparented) under `parent`, without
    /// requiring a context positioned there. This is what a framework's
    /// scoped-memory manager does when it materializes a child component
    /// scope on behalf of a parent (paper §2.2).
    ///
    /// # Errors
    ///
    /// [`crate::RtmemError::ScopedCycle`] if the region is already parented
    /// under a different region.
    pub fn pin_under(model: &MemoryModel, region: RegionId, parent: RegionId) -> Result<Wedge> {
        model.inner.bind_and_pin(region, parent, false)?;
        let born_ns = birth_stamp(&model.inner);
        Ok(Wedge {
            model: Arc::clone(&model.inner),
            region,
            released: false,
            born_ns,
        })
    }

    /// The pinned region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Releases the pin explicitly (equivalent to dropping the wedge).
    pub fn disconnect(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if !self.released {
            self.released = true;
            if let Some(o) = self.model.obs() {
                o.obs
                    .observe(o.wedge_life, o.obs.now_ns().saturating_sub(self.born_ns));
            }
            self.model.unpin(self.region, false);
        }
    }
}

impl Drop for Wedge {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryModel;

    #[test]
    fn wedge_keeps_scope_alive_across_exits() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let (wedge, r) = ctx
            .enter(s, |ctx| {
                let r = ctx.alloc(1u8).unwrap();
                (Wedge::pin(ctx, s).unwrap(), r)
            })
            .unwrap();
        assert!(r.is_live());
        assert_eq!(m.snapshot(s).unwrap().epoch, 0);
        drop(wedge);
        assert!(!r.is_live());
        assert_eq!(m.snapshot(s).unwrap().epoch, 1);
    }

    #[test]
    fn double_wedge_requires_both_released() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let w1 = Wedge::pin_from_base(&m, s).unwrap();
        let w2 = Wedge::pin_from_base(&m, s).unwrap();
        drop(w1);
        assert_eq!(m.snapshot(s).unwrap().epoch, 0);
        w2.disconnect();
        assert_eq!(m.snapshot(s).unwrap().epoch, 1);
    }

    #[test]
    fn wedge_from_wrong_parent_rejected() {
        let m = MemoryModel::new();
        let a = m.create_scoped(1024).unwrap();
        let s = m.create_scoped(1024).unwrap();
        let _w = Wedge::pin_from_base(&m, s).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(a, |ctx| {
            assert!(Wedge::pin(ctx, s).is_err());
        })
        .unwrap();
    }

    #[test]
    fn wedge_pins_cascade_parent() {
        // A wedged child keeps its parent alive even with no threads inside.
        let m = MemoryModel::new();
        let parent = m.create_scoped(1024).unwrap();
        let child = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let w = ctx
            .enter(parent, |ctx| {
                ctx.enter(child, |ctx| Wedge::pin(ctx, child).unwrap())
                    .unwrap()
            })
            .unwrap();
        // Parent has no entered threads but is pinned by the child link.
        let psnap = m.snapshot(parent).unwrap();
        assert_eq!(psnap.entered, 0);
        assert_eq!(psnap.epoch, 0, "parent not reclaimed while child lives");
        drop(w);
        assert_eq!(m.snapshot(child).unwrap().epoch, 1);
        assert_eq!(
            m.snapshot(parent).unwrap().epoch,
            1,
            "cascade reclaimed parent"
        );
    }
}
