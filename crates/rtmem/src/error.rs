//! Error types mirroring the RTSJ memory-model failure modes.
//!
//! The RTSJ signals scope misuse with runtime exceptions
//! (`MemoryAccessError`, `IllegalAssignmentError`, `ScopedCycleException`,
//! `OutOfMemoryError`). This module provides the Rust analog: a single
//! [`RtmemError`] enum returned by every fallible operation in the crate.

use std::error::Error;
use std::fmt;

use crate::region::RegionId;

/// Errors produced by the scoped-memory model.
///
/// Each variant corresponds to a failure mode of the RTSJ memory model as
/// described in Section 2.2 of the Compadres paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtmemError {
    /// The referenced region slot has been destroyed (the `RegionId`
    /// generation no longer matches).
    InvalidRegion(RegionId),
    /// A reference outlived the scope contents it pointed into: the region
    /// was reclaimed (and possibly reused) since the reference was created.
    ///
    /// Analog of dereferencing a dangling scoped reference, which the RTSJ
    /// prevents via `IllegalAssignmentError`; here it is detected at use.
    StaleReference {
        /// The reclaimed (and possibly reused) region.
        region: RegionId,
        /// Epoch the reference was created in.
        expected_epoch: u64,
        /// Epoch the region is in now.
        actual_epoch: u64,
    },
    /// The current execution context may not access the target region: the
    /// region is not on the context's scope stack and is not immortal/heap.
    ///
    /// Analog of the RTSJ `MemoryAccessError`.
    Inaccessible {
        /// The inaccessible region.
        region: RegionId,
    },
    /// Storing a reference in `holder` pointing at `target` would violate
    /// the scope access rules of paper Table 1 (the holder must not outlive
    /// the target).
    ///
    /// Analog of the RTSJ `IllegalAssignmentError`.
    IllegalAssignment {
        /// Region of the object that would hold the reference.
        holder: RegionId,
        /// Region the reference points into.
        target: RegionId,
    },
    /// Entering the region would give it a second parent, violating the
    /// *single parent rule* (paper Section 2.2).
    ///
    /// Analog of the RTSJ `ScopedCycleException`.
    ScopedCycle {
        /// The region being entered.
        region: RegionId,
        /// Its current parent.
        parent: RegionId,
        /// The allocation context the enter was attempted from.
        attempted: RegionId,
    },
    /// The region's fixed memory budget is exhausted.
    OutOfMemory {
        /// The exhausted region.
        region: RegionId,
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// An `RRef<T>` was used with the wrong `T`.
    TypeMismatch {
        /// Region holding the object.
        region: RegionId,
    },
    /// The operation requires the region to be entered by the calling
    /// context (e.g. exiting a region that was never entered).
    NotEntered(RegionId),
    /// A no-heap context attempted to touch the heap (RTSJ
    /// `NoHeapRealtimeThread` restriction, see paper Table 1 note).
    HeapFromNoHeap,
    /// The region is still pinned (entered threads, wedges or child scopes)
    /// and cannot be destroyed.
    StillPinned {
        /// The pinned region.
        region: RegionId,
        /// Wedge and child pins.
        pins: usize,
        /// Contexts currently inside.
        entered: usize,
    },
    /// A pool `acquire` found no free pooled scope.
    PoolExhausted {
        /// Scope level of the exhausted pool.
        level: u32,
    },
}

impl fmt::Display for RtmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtmemError::InvalidRegion(id) => write!(f, "region {id:?} no longer exists"),
            RtmemError::StaleReference { region, expected_epoch, actual_epoch } => write!(
                f,
                "stale reference into region {region:?}: created in epoch {expected_epoch}, region is now in epoch {actual_epoch}"
            ),
            RtmemError::Inaccessible { region } => {
                write!(f, "region {region:?} is not accessible from the current scope stack")
            }
            RtmemError::IllegalAssignment { holder, target } => write!(
                f,
                "object in region {holder:?} may not hold a reference into region {target:?}"
            ),
            RtmemError::ScopedCycle { region, parent, attempted } => write!(
                f,
                "single parent rule violated: region {region:?} is parented to {parent:?}, cannot be entered from {attempted:?}"
            ),
            RtmemError::OutOfMemory { region, requested, available } => write!(
                f,
                "region {region:?} out of memory: requested {requested} bytes, {available} available"
            ),
            RtmemError::TypeMismatch { region } => {
                write!(f, "typed reference into region {region:?} used with the wrong type")
            }
            RtmemError::NotEntered(id) => write!(f, "region {id:?} was not entered by this context"),
            RtmemError::HeapFromNoHeap => write!(f, "no-heap context attempted to access the heap"),
            RtmemError::StillPinned { region, pins, entered } => write!(
                f,
                "region {region:?} is still pinned ({pins} pins, {entered} entered threads)"
            ),
            RtmemError::PoolExhausted { level } => {
                write!(f, "scope pool for level {level} is exhausted")
            }
        }
    }
}

impl Error for RtmemError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RtmemError>;
