//! Execution contexts: the per-thread scope stack.
//!
//! An RTSJ thread carries a *scope stack* recording the memory areas it has
//! entered; the top of the stack is its current allocation context. [`Ctx`]
//! is the explicit Rust analog. Framework worker threads each own one.

use std::sync::Arc;

use crate::error::{Result, RtmemError};
use crate::model::{MemoryModel, ModelInner};
use crate::region::{RegionId, RegionKind};
use crate::rref::{RBytes, RRef};

/// A per-thread execution context holding a scope stack.
///
/// The stack base is heap (ordinary thread), or immortal for real-time
/// threads; no-heap real-time threads additionally may never access the
/// heap (paper Table 1 note).
///
/// # Examples
///
/// ```
/// use rtmem::{MemoryModel, Ctx};
///
/// let model = MemoryModel::new();
/// let scope = model.create_scoped(1024)?;
/// let mut ctx = Ctx::no_heap(&model);
/// ctx.enter(scope, |ctx| {
///     assert_eq!(ctx.current(), scope);
/// })?;
/// # Ok::<(), rtmem::RtmemError>(())
/// ```
pub struct Ctx {
    pub(crate) model: Arc<ModelInner>,
    stack: Vec<RegionId>,
    no_heap: bool,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("stack", &self.stack)
            .field("no_heap", &self.no_heap)
            .finish()
    }
}

impl Ctx {
    /// A conventional (heap-based) thread context.
    pub fn heap_based(model: &MemoryModel) -> Ctx {
        Ctx {
            model: Arc::clone(&model.inner),
            stack: vec![model.heap()],
            no_heap: false,
        }
    }

    /// A real-time thread context based in immortal memory, still allowed
    /// to read the heap.
    pub fn immortal(model: &MemoryModel) -> Ctx {
        Ctx {
            model: Arc::clone(&model.inner),
            stack: vec![model.immortal()],
            no_heap: false,
        }
    }

    /// A no-heap real-time thread context: based in immortal memory and
    /// forbidden from touching the heap.
    pub fn no_heap(model: &MemoryModel) -> Ctx {
        Ctx {
            model: Arc::clone(&model.inner),
            stack: vec![model.immortal()],
            no_heap: true,
        }
    }

    /// The current allocation context (top of the scope stack).
    pub fn current(&self) -> RegionId {
        *self.stack.last().expect("scope stack never empty")
    }

    /// The scope stack, base first.
    pub fn stack(&self) -> &[RegionId] {
        &self.stack
    }

    /// Whether this context forbids heap access.
    pub fn is_no_heap(&self) -> bool {
        self.no_heap
    }

    /// Whether `region` is readable from this context: on the scope stack,
    /// or immortal, or heap (unless no-heap).
    pub fn may_access(&self, region: RegionId) -> bool {
        let Ok(slot) = self.model.slot(region) else {
            return false;
        };
        let kind = slot.lock().kind;
        match kind {
            RegionKind::Heap => !self.no_heap,
            RegionKind::Immortal => true,
            RegionKind::Scoped | RegionKind::ScopedVt => self.stack.contains(&region),
        }
    }

    /// Enters `region`, runs `f` with the region as the current allocation
    /// context, then exits. Exiting the last pin of a scoped region
    /// reclaims it.
    ///
    /// # Errors
    ///
    /// * [`RtmemError::ScopedCycle`] — the region is already parented
    ///   elsewhere (single parent rule).
    /// * [`RtmemError::HeapFromNoHeap`] — a no-heap context entering heap.
    /// * [`RtmemError::InvalidRegion`] — the region was destroyed.
    pub fn enter<R>(&mut self, region: RegionId, f: impl FnOnce(&mut Ctx) -> R) -> Result<R> {
        {
            let slot = self.model.slot(region)?;
            let kind = slot.lock().kind;
            if kind == RegionKind::Heap && self.no_heap {
                return Err(RtmemError::HeapFromNoHeap);
            }
        }
        let from = self.current();
        self.model.bind_and_pin(region, from, true)?;
        self.stack.push(region);
        // Ensure we exit even if `f` unwinds.
        struct ExitGuard<'a>(&'a mut Ctx, RegionId);
        impl Drop for ExitGuard<'_> {
            fn drop(&mut self) {
                let popped = self.0.stack.pop();
                debug_assert_eq!(popped, Some(self.1));
                self.0.model.unpin(self.1, true);
            }
        }
        let guard = ExitGuard(self, region);
        let out = f(guard.0);
        drop(guard);
        Ok(out)
    }

    /// Allocates `value` in the current allocation context.
    ///
    /// # Errors
    ///
    /// [`RtmemError::OutOfMemory`] when the region budget is exhausted.
    pub fn alloc<T: Send + 'static>(&self, value: T) -> Result<RRef<T>> {
        self.alloc_in(self.current(), value)
    }

    /// Allocates `value` in `region`, which must be accessible from this
    /// context (`executeInArea` analog).
    pub fn alloc_in<T: Send + 'static>(&self, region: RegionId, value: T) -> Result<RRef<T>> {
        if !self.may_access(region) {
            return Err(RtmemError::Inaccessible { region });
        }
        RRef::allocate(&self.model, region, value)
    }

    /// Allocates `len` raw bytes in the current allocation context from the
    /// region's bump store.
    pub fn alloc_bytes(&self, len: usize) -> Result<RBytes> {
        self.alloc_bytes_in(self.current(), len)
    }

    /// Allocates `len` raw bytes in `region`.
    pub fn alloc_bytes_in(&self, region: RegionId, len: usize) -> Result<RBytes> {
        if !self.may_access(region) {
            return Err(RtmemError::Inaccessible { region });
        }
        RBytes::allocate(&self.model, region, len)
    }

    /// Runs `f` with the allocation context temporarily switched to
    /// `region`, which must already be on this context's scope stack (or be
    /// heap/immortal) — the RTSJ `MemoryArea.executeInArea` analog.
    ///
    /// While `f` runs the scope stack is truncated to end at `region`, so
    /// scopes entered *after* it are not accessible from within `f` (they
    /// remain entered and are not reclaimed). This is the mechanism behind
    /// the *handoff pattern* (paper Section 2.2): a thread deep in one
    /// branch jumps to a common ancestor to reach a sibling scope.
    ///
    /// # Errors
    ///
    /// [`RtmemError::NotEntered`] if `region` is not on the stack,
    /// [`RtmemError::HeapFromNoHeap`] for heap from a no-heap context.
    pub fn execute_in<R>(&mut self, region: RegionId, f: impl FnOnce(&mut Ctx) -> R) -> Result<R> {
        {
            let slot = self.model.slot(region)?;
            let kind = slot.lock().kind;
            match kind {
                RegionKind::Heap if self.no_heap => return Err(RtmemError::HeapFromNoHeap),
                RegionKind::Heap | RegionKind::Immortal => {
                    // Heap/immortal are always enterable; treat as a
                    // truncation to the base plus that area.
                }
                RegionKind::Scoped | RegionKind::ScopedVt => {
                    if !self.stack.contains(&region) {
                        return Err(RtmemError::NotEntered(region));
                    }
                }
            }
        }
        let (keep, pushed) = match self.stack.iter().rposition(|&r| r == region) {
            Some(idx) => (idx + 1, false),
            None => {
                // Heap or immortal, not on the stack: push it as the new
                // temporary context on top of the base.
                self.stack.push(region);
                (self.stack.len(), true)
            }
        };
        let tail: Vec<RegionId> = self.stack.split_off(keep);
        struct Restore<'a> {
            ctx: &'a mut Ctx,
            tail: Vec<RegionId>,
            keep: usize,
            pushed: bool,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.ctx.stack.truncate(self.keep);
                if self.pushed {
                    self.ctx.stack.pop();
                }
                self.ctx.stack.append(&mut self.tail);
            }
        }
        let restore = Restore {
            ctx: self,
            tail,
            keep,
            pushed,
        };
        let out = f(restore.ctx);
        drop(restore);
        Ok(out)
    }

    /// Enters every region in `chain` in order (outermost first) and runs
    /// `f` innermost. An empty chain runs `f` directly.
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`Ctx::enter`].
    pub fn enter_chain<R>(
        &mut self,
        chain: &[RegionId],
        f: impl FnOnce(&mut Ctx) -> R,
    ) -> Result<R> {
        match chain.split_first() {
            None => Ok(f(self)),
            Some((&head, rest)) => {
                // Skip regions we are already inside (e.g. the immortal base).
                if self.current() == head {
                    self.enter_chain(rest, f)
                } else {
                    self.enter(head, |ctx| ctx.enter_chain(rest, f))?
                }
            }
        }
    }

    /// Creates a sibling context rooted at the same base region, for
    /// handing to another thread. The clone starts with an empty stack
    /// (base only); scope entries are not inherited, matching RTSJ thread
    /// start semantics where the new thread re-enters areas explicitly.
    pub fn fork_base(&self) -> Ctx {
        Ctx {
            model: Arc::clone(&self.model),
            stack: vec![self.stack[0]],
            no_heap: self.no_heap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryModel;

    #[test]
    fn enter_exit_reclaims() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let r = ctx.enter(s, |ctx| ctx.alloc(5u64).unwrap()).unwrap();
        // Region reclaimed after exit: reference is stale.
        assert!(matches!(
            r.with(&Ctx::immortal(&m), |v| *v),
            Err(RtmemError::StaleReference { .. })
        ));
        let snap = m.snapshot(s).unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.used, 0);
        assert_eq!(snap.parent, None);
    }

    #[test]
    fn nested_enter_builds_scope_stack() {
        let m = MemoryModel::new();
        let a = m.create_scoped(1024).unwrap();
        let b = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(a, |ctx| {
            ctx.enter(b, |ctx| {
                assert_eq!(ctx.stack().len(), 3);
                assert_eq!(ctx.current(), b);
                assert!(ctx.may_access(a));
                assert_eq!(m.parent_of(b).unwrap(), Some(a));
            })
            .unwrap();
        })
        .unwrap();
    }

    #[test]
    fn single_parent_rule_enforced() {
        let m = MemoryModel::new();
        let a = m.create_scoped(1024).unwrap();
        let b = m.create_scoped(1024).unwrap();
        let shared = m.create_scoped(1024).unwrap();
        // Pin a and shared-under-a so parentage persists.
        let mut ctx = Ctx::immortal(&m);
        let w_a = crate::wedge::Wedge::pin_from_base(&m, a).unwrap();
        let w_shared = ctx
            .enter(a, |ctx| crate::wedge::Wedge::pin(ctx, shared).unwrap())
            .unwrap();
        let mut ctx2 = Ctx::immortal(&m);
        let err = ctx2
            .enter(b, |ctx| ctx.enter(shared, |_| {}))
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, RtmemError::ScopedCycle { .. }));
        drop(w_shared);
        drop(w_a);
    }

    #[test]
    fn no_heap_cannot_enter_heap() {
        let m = MemoryModel::new();
        let mut ctx = Ctx::no_heap(&m);
        assert!(matches!(
            ctx.enter(m.heap(), |_| {}),
            Err(RtmemError::HeapFromNoHeap)
        ));
        assert!(!ctx.may_access(m.heap()));
        let mut rt = Ctx::immortal(&m);
        rt.enter(m.heap(), |ctx| assert_eq!(ctx.current(), m.heap()))
            .unwrap();
    }

    #[test]
    fn panic_in_enter_still_exits() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = Ctx::immortal(&m);
            let _ = ctx.enter(s, |_| panic!("boom"));
        }));
        assert!(result.is_err());
        let snap = m.snapshot(s).unwrap();
        assert_eq!(snap.entered, 0);
        assert_eq!(snap.epoch, 1, "region reclaimed despite the panic");
    }

    #[test]
    fn alloc_in_inaccessible_region_fails() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let ctx = Ctx::immortal(&m);
        assert!(matches!(
            ctx.alloc_in(s, 1u8),
            Err(RtmemError::Inaccessible { .. })
        ));
    }

    #[test]
    fn execute_in_reaches_sibling_scope() {
        // The handoff pattern: a thread in scope B jumps to the common
        // ancestor A to enter sibling C.
        let m = MemoryModel::new();
        let a = m.create_scoped(4096).unwrap();
        let b = m.create_scoped(1024).unwrap();
        let c = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(a, |ctx| {
            let _wc = crate::wedge::Wedge::pin(ctx, c).unwrap();
            ctx.enter(b, |ctx| {
                // Direct entry of the sibling is illegal…
                assert!(matches!(
                    ctx.enter(c, |_| {}),
                    Err(RtmemError::ScopedCycle { .. })
                ));
                // …but via executeInArea on the common ancestor it works.
                ctx.execute_in(a, |ctx| {
                    assert_eq!(ctx.current(), a);
                    assert!(!ctx.may_access(b), "scopes above the ancestor are hidden");
                    ctx.enter(c, |ctx| {
                        assert_eq!(ctx.current(), c);
                        assert!(ctx.may_access(a));
                        assert!(!ctx.may_access(b));
                    })
                    .unwrap();
                })
                .unwrap();
                // Stack restored afterwards.
                assert_eq!(ctx.current(), b);
                assert!(ctx.may_access(b));
            })
            .unwrap();
        })
        .unwrap();
    }

    #[test]
    fn execute_in_immortal_from_scope() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(s, |ctx| {
            ctx.execute_in(m.immortal(), |ctx| {
                assert_eq!(ctx.current(), m.immortal());
            })
            .unwrap();
            assert_eq!(ctx.current(), s);
        })
        .unwrap();
    }

    #[test]
    fn execute_in_not_entered_region_fails() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let _w = crate::wedge::Wedge::pin_from_base(&m, s).unwrap();
        let mut ctx = Ctx::immortal(&m);
        assert!(matches!(
            ctx.execute_in(s, |_| {}),
            Err(RtmemError::NotEntered(_))
        ));
    }

    #[test]
    fn enter_chain_runs_innermost() {
        let m = MemoryModel::new();
        let a = m.create_scoped(1024).unwrap();
        let b = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let depth = ctx
            .enter_chain(&[m.immortal(), a, b], |ctx| {
                assert_eq!(ctx.current(), b);
                ctx.stack().len()
            })
            .unwrap();
        assert_eq!(depth, 3); // immortal base skipped, a, b entered
                              // Empty chain runs in place.
        let cur = ctx.enter_chain(&[], |ctx| ctx.current()).unwrap();
        assert_eq!(cur, m.immortal());
    }

    #[test]
    fn fork_base_starts_fresh() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::no_heap(&m);
        ctx.enter(s, |ctx| {
            let forked = ctx.fork_base();
            assert_eq!(forked.stack().len(), 1);
            assert!(forked.is_no_heap());
        })
        .unwrap();
    }
}
