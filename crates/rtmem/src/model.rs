//! The memory model: a tree of regions with RTSJ scope semantics.
//!
//! A [`MemoryModel`] owns one heap region, one immortal region and any
//! number of scoped regions. Scoped regions acquire their parent on first
//! entry (the *single parent rule*), are pinned by entered contexts, wedge
//! handles and child scopes, and are reclaimed — objects dropped in reverse
//! allocation order, bump pointer reset, epoch bumped — when the last pin
//! disappears. This reproduces the lifecycle that the Compadres framework
//! layers components on top of (paper Section 2.2).

use std::sync::{Arc, OnceLock};

use rtobs::{CounterId, EventKind, GaugeId, HistId, Observer};
use rtplatform::sync::{Mutex, RwLock};

use crate::error::{Result, RtmemError};
use crate::region::{RegionId, RegionInner, RegionKind, RegionSnapshot, RegionStats, SlotState};

pub(crate) struct Slot {
    pub generation: u32,
    pub inner: Arc<Mutex<RegionInner>>,
}

/// The model's hook into an [`Observer`]: the observer plus the metric
/// ids it registered, resolved once so the hot paths never look names up.
pub(crate) struct MemObs {
    pub obs: Arc<Observer>,
    pub enters: CounterId,
    pub exits: CounterId,
    pub reclaims: CounterId,
    pub regions_live: GaugeId,
    pub wedge_life: HistId,
}

pub(crate) struct ModelInner {
    slots: RwLock<Vec<Slot>>,
    free_indices: Mutex<Vec<u32>>,
    heap: RegionId,
    immortal: RegionId,
    obs: OnceLock<MemObs>,
}

impl ModelInner {
    #[inline]
    pub(crate) fn obs(&self) -> Option<&MemObs> {
        self.obs.get()
    }
}

/// A complete RTSJ-style memory model: heap + immortal + scoped regions.
///
/// Cloning is cheap and shares the underlying model, like the single JVM-wide
/// memory system the paper's applications run in.
///
/// # Examples
///
/// ```
/// use rtmem::{MemoryModel, Ctx};
///
/// let model = MemoryModel::with_sizes(1 << 16, 1 << 16);
/// let scope = model.create_scoped(4096)?;
/// let mut ctx = Ctx::immortal(&model);
/// let n = ctx.enter(scope, |ctx| {
///     let r = ctx.alloc(41i32)?;
///     r.with(ctx, |v| v + 1)
/// })??;
/// assert_eq!(n, 42);
/// # Ok::<(), rtmem::RtmemError>(())
/// ```
#[derive(Clone)]
pub struct MemoryModel {
    pub(crate) inner: Arc<ModelInner>,
}

impl std::fmt::Debug for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryModel")
            .field("regions", &self.inner.slots.read().len())
            .finish()
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Default byte budget for heap and immortal when using [`MemoryModel::new`].
pub const DEFAULT_AREA_SIZE: usize = 4 << 20;

impl MemoryModel {
    /// Creates a model with heap and immortal regions of
    /// [`DEFAULT_AREA_SIZE`] each.
    pub fn new() -> Self {
        Self::with_sizes(DEFAULT_AREA_SIZE, DEFAULT_AREA_SIZE)
    }

    /// Creates a model with explicit heap and immortal byte budgets
    /// (the CCL `RTSJAttributes/ImmortalSize` knob).
    pub fn with_sizes(heap_size: usize, immortal_size: usize) -> Self {
        let heap_inner = RegionInner::new(RegionKind::Heap, heap_size);
        let immortal_inner = RegionInner::new(RegionKind::Immortal, immortal_size);
        let slots = vec![
            Slot {
                generation: 0,
                inner: Arc::new(Mutex::new(heap_inner)),
            },
            Slot {
                generation: 0,
                inner: Arc::new(Mutex::new(immortal_inner)),
            },
        ];
        MemoryModel {
            inner: Arc::new(ModelInner {
                slots: RwLock::new(slots),
                free_indices: Mutex::new(Vec::new()),
                heap: RegionId {
                    index: 0,
                    generation: 0,
                },
                immortal: RegionId {
                    index: 1,
                    generation: 0,
                },
                obs: OnceLock::new(),
            }),
        }
    }

    /// Attaches an observer (idempotent; the first caller wins). Scope
    /// enter/exit/reclaim events, the live-region gauge, and wedge
    /// lifetime histograms flow into it from then on. Metric ids are
    /// resolved here, once — the instrumented paths only touch atomics.
    pub fn set_observer(&self, obs: &Arc<Observer>) {
        let live = self.live_regions() as u64;
        let _ = self.inner.obs.set(MemObs {
            obs: Arc::clone(obs),
            enters: obs.counter("rtmem_scope_enters_total"),
            exits: obs.counter("rtmem_scope_exits_total"),
            reclaims: obs.counter("rtmem_scope_reclaims_total"),
            regions_live: obs.gauge("rtmem_regions_live"),
            wedge_life: obs.histogram("rtmem_wedge_lifetime_ns"),
        });
        if let Some(o) = self.inner.obs() {
            o.obs.gauge_set(o.regions_live, live);
        }
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<Arc<Observer>> {
        self.inner.obs().map(|o| Arc::clone(&o.obs))
    }

    /// The heap region.
    pub fn heap(&self) -> RegionId {
        self.inner.heap
    }

    /// The immortal region.
    pub fn immortal(&self) -> RegionId {
        self.inner.immortal
    }

    /// Creates a new scoped region with the given byte budget.
    ///
    /// Mirrors `LTMemory`: the backing store is allocated and zeroed here,
    /// so creation cost is linear in `size` — the cost that scope pools
    /// (paper Section 2.2, ablation A3) exist to avoid.
    pub fn create_scoped(&self, size: usize) -> Result<RegionId> {
        Ok(self.inner.create(RegionKind::Scoped, size, false))
    }

    /// Creates a new **variable-time** scoped region (`VTMemory`):
    /// constant-time creation, lazily grown backing store, allocation
    /// times that vary — the alternative the paper rejects for
    /// predictability (§2.2). Provided for the LT-vs-VT ablation.
    pub fn create_scoped_vt(&self, size: usize) -> Result<RegionId> {
        Ok(self.inner.create(RegionKind::ScopedVt, size, false))
    }

    pub(crate) fn create_pooled(&self, size: usize) -> RegionId {
        self.inner.create(RegionKind::Scoped, size, true)
    }

    /// Destroys a scoped region, freeing its slot for reuse.
    ///
    /// # Errors
    ///
    /// Fails with [`RtmemError::StillPinned`] if any context is inside the
    /// region or it is pinned by wedges or children, and with
    /// [`RtmemError::InvalidRegion`] for heap/immortal or unknown ids.
    pub fn destroy_scoped(&self, id: RegionId) -> Result<()> {
        self.inner.destroy(id, false)
    }

    pub(crate) fn destroy_pooled(&self, id: RegionId) -> Result<()> {
        self.inner.destroy(id, true)
    }

    /// Takes a point-in-time snapshot of a region's public state.
    pub fn snapshot(&self, id: RegionId) -> Result<RegionSnapshot> {
        let slot = self.inner.slot(id)?;
        let g = slot.lock();
        Ok(RegionSnapshot {
            id,
            kind: g.kind,
            size: g.size,
            used: g.used,
            epoch: g.epoch,
            parent: g.parent,
            entered: g.entered,
            pins: g.pins,
            live_objects: g.objects.iter().filter(|o| o.is_some()).count(),
            stats: g.stats,
        })
    }

    /// Lifetime statistics for a region.
    pub fn region_stats(&self, id: RegionId) -> Result<RegionStats> {
        Ok(self.snapshot(id)?.stats)
    }

    /// The current parent of a scoped region, if it has been entered.
    pub fn parent_of(&self, id: RegionId) -> Result<Option<RegionId>> {
        Ok(self.snapshot(id)?.parent)
    }

    /// Ancestor chain of `id`, nearest first, ending at the region whose
    /// parent is unassigned (or at immortal/heap which have none).
    pub fn ancestors(&self, id: RegionId) -> Result<Vec<RegionId>> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(id)?;
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_of(p)?;
        }
        Ok(out)
    }

    /// Implements the scope access rules of paper Table 1: may an object
    /// living in `holder` hold a reference to an object living in `target`?
    ///
    /// Allowed when `target` is heap or immortal, when the regions are the
    /// same, or when `target` is an ancestor of `holder` — i.e. the target
    /// provably lives at least as long as the holder.
    pub fn may_reference(&self, holder: RegionId, target: RegionId) -> Result<bool> {
        let target_kind = {
            let slot = self.inner.slot(target)?;
            let g = slot.lock();
            g.kind
        };
        // Validate holder exists too.
        let _ = self.inner.slot(holder)?;
        if matches!(target_kind, RegionKind::Heap | RegionKind::Immortal) {
            return Ok(true);
        }
        if holder == target {
            return Ok(true);
        }
        Ok(self.ancestors(holder)?.contains(&target))
    }

    /// Like [`MemoryModel::may_reference`] but returns
    /// [`RtmemError::IllegalAssignment`] when the store is forbidden —
    /// the analog of the RTSJ `IllegalAssignmentError`.
    pub fn check_assignment(&self, holder: RegionId, target: RegionId) -> Result<()> {
        if self.may_reference(holder, target)? {
            Ok(())
        } else {
            Err(RtmemError::IllegalAssignment { holder, target })
        }
    }

    /// Number of live (non-destroyed) regions, including heap and immortal.
    pub fn live_regions(&self) -> usize {
        let slots = self.inner.slots.read();
        slots
            .iter()
            .filter(|s| s.inner.lock().state == SlotState::Active)
            .count()
    }

    /// Snapshots of every live region, in slot order — the raw material
    /// for memory dashboards and leak hunting.
    pub fn all_snapshots(&self) -> Vec<RegionSnapshot> {
        let slots: Vec<(u32, u32, Arc<Mutex<RegionInner>>)> = {
            let guard = self.inner.slots.read();
            guard
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, s.generation, Arc::clone(&s.inner)))
                .collect()
        };
        let mut out = Vec::new();
        for (index, generation, inner) in slots {
            let g = inner.lock();
            if g.state != SlotState::Active {
                continue;
            }
            out.push(RegionSnapshot {
                id: RegionId { index, generation },
                kind: g.kind,
                size: g.size,
                used: g.used,
                epoch: g.epoch,
                parent: g.parent,
                entered: g.entered,
                pins: g.pins,
                live_objects: g.objects.iter().filter(|o| o.is_some()).count(),
                stats: g.stats,
            });
        }
        out
    }
}

impl ModelInner {
    pub(crate) fn slot(&self, id: RegionId) -> Result<Arc<Mutex<RegionInner>>> {
        let slots = self.slots.read();
        let slot = slots
            .get(id.index as usize)
            .ok_or(RtmemError::InvalidRegion(id))?;
        if slot.generation != id.generation {
            return Err(RtmemError::InvalidRegion(id));
        }
        let arc = Arc::clone(&slot.inner);
        drop(slots);
        if arc.lock().state != SlotState::Active {
            return Err(RtmemError::InvalidRegion(id));
        }
        Ok(arc)
    }

    fn create(&self, kind: RegionKind, size: usize, pooled: bool) -> RegionId {
        if let Some(o) = self.obs() {
            o.obs.gauge_add(o.regions_live, 1);
        }
        let mut inner = RegionInner::new(kind, size);
        inner.pooled = pooled;
        let reuse = self.free_indices.lock().pop();
        match reuse {
            Some(index) => {
                // Slot reuse bumps the generation so stale ids are detected.
                let mut slots = self.slots.write();
                let slot = &mut slots[index as usize];
                slot.generation = slot.generation.wrapping_add(1);
                slot.inner = Arc::new(Mutex::new(inner));
                RegionId {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let mut slots = self.slots.write();
                let index = slots.len() as u32;
                slots.push(Slot {
                    generation: 0,
                    inner: Arc::new(Mutex::new(inner)),
                });
                RegionId {
                    index,
                    generation: 0,
                }
            }
        }
    }

    fn destroy(&self, id: RegionId, allow_pooled: bool) -> Result<()> {
        let slot = self.slot(id)?;
        let (detach, freed) = {
            let mut g = slot.lock();
            if !g.kind.is_scoped() {
                return Err(RtmemError::InvalidRegion(id));
            }
            if g.pooled && !allow_pooled {
                return Err(RtmemError::InvalidRegion(id));
            }
            if g.entered > 0 || g.pins > 0 {
                return Err(RtmemError::StillPinned {
                    region: id,
                    pins: g.pins,
                    entered: g.entered,
                });
            }
            let freed = g.used;
            Self::reclaim_locked(&mut g);
            g.state = SlotState::Free;
            g.objects = Vec::new();
            g.backing = Box::new([]);
            (g.parent.take(), freed)
        };
        if let Some(o) = self.obs() {
            o.obs.inc(o.reclaims);
            o.obs.gauge_sub(o.regions_live, 1);
            o.obs
                .record(EventKind::ScopeReclaim, id.index, freed as u64);
        }
        if let Some(parent) = detach {
            self.detach_child(parent, id);
        }
        self.free_indices.lock().push(id.index);
        Ok(())
    }

    /// Binds `region`'s parent (single parent rule) and registers a pin or
    /// an entry, depending on `as_entry`. `from` is the entering context's
    /// current allocation context.
    pub(crate) fn bind_and_pin(
        &self,
        region: RegionId,
        from: RegionId,
        as_entry: bool,
    ) -> Result<()> {
        let slot = self.slot(region)?;
        let need_attach = {
            let mut g = slot.lock();
            match g.kind {
                RegionKind::Heap | RegionKind::Immortal => {
                    if as_entry {
                        g.entered += 1;
                        g.stats.enters += 1;
                    } else {
                        g.pins += 1;
                    }
                    drop(g);
                    if as_entry {
                        if let Some(o) = self.obs() {
                            o.obs.inc(o.enters);
                            o.obs.record_verbose(EventKind::ScopeEnter, region.index, 0);
                        }
                    }
                    return Ok(());
                }
                RegionKind::Scoped | RegionKind::ScopedVt => {}
            }
            match g.parent {
                None => {
                    g.parent = Some(from);
                    if as_entry {
                        g.entered += 1;
                        g.stats.enters += 1;
                    } else {
                        g.pins += 1;
                    }
                    true
                }
                Some(p) if p == from => {
                    if as_entry {
                        g.entered += 1;
                        g.stats.enters += 1;
                    } else {
                        g.pins += 1;
                    }
                    false
                }
                Some(p) => {
                    return Err(RtmemError::ScopedCycle {
                        region,
                        parent: p,
                        attempted: from,
                    });
                }
            }
        };
        if need_attach {
            // Child pins its parent for as long as it stays parented.
            if let Ok(pslot) = self.slot(from) {
                let mut pg = pslot.lock();
                pg.children.push(region);
                pg.pins += 1;
            }
        }
        if as_entry {
            if let Some(o) = self.obs() {
                o.obs.inc(o.enters);
                o.obs.record_verbose(EventKind::ScopeEnter, region.index, 0);
            }
        }
        Ok(())
    }

    /// Adds a pin to a region the caller is already inside (no parent
    /// binding required).
    pub(crate) fn pin_in_place(&self, region: RegionId) -> Result<()> {
        let slot = self.slot(region)?;
        slot.lock().pins += 1;
        Ok(())
    }

    /// Releases an entry or a pin; reclaims the region if it became free.
    pub(crate) fn unpin(&self, region: RegionId, was_entry: bool) {
        let Ok(slot) = self.slot(region) else { return };
        let (detach, reclaimed) = {
            let mut g = slot.lock();
            if was_entry {
                debug_assert!(g.entered > 0, "unbalanced exit from {region:?}");
                g.entered = g.entered.saturating_sub(1);
            } else {
                debug_assert!(g.pins > 0, "unbalanced unpin of {region:?}");
                g.pins = g.pins.saturating_sub(1);
            }
            if g.kind.is_scoped() && g.entered == 0 && g.pins == 0 {
                let freed = g.used;
                Self::reclaim_locked(&mut g);
                (g.parent.take(), Some(freed))
            } else {
                (None, None)
            }
        };
        if let Some(o) = self.obs() {
            if was_entry {
                o.obs.inc(o.exits);
                o.obs.record_verbose(EventKind::ScopeExit, region.index, 0);
            }
            if let Some(freed) = reclaimed {
                o.obs.inc(o.reclaims);
                // Steady-state reclaims happen once per message pass, so
                // the timestamped journal entry is detail-level; the
                // counter above stays truthful either way. (Destroy-path
                // reclaims are cold and always journaled.)
                o.obs
                    .record_verbose(EventKind::ScopeReclaim, region.index, freed as u64);
            }
        }
        if let Some(parent) = detach {
            self.detach_child(parent, region);
        }
    }

    /// Removes `child` from `parent`'s child list and releases the pin the
    /// child held on it; may cascade reclamation up the tree.
    fn detach_child(&self, parent: RegionId, child: RegionId) {
        let is_scoped = {
            let Ok(pslot) = self.slot(parent) else { return };
            let mut pg = pslot.lock();
            pg.children.retain(|&c| c != child);
            pg.kind == RegionKind::Scoped
        };
        if is_scoped {
            self.unpin(parent, false);
        } else {
            // Heap/immortal track the pin count but never reclaim.
            let Ok(pslot) = self.slot(parent) else { return };
            let mut pg = pslot.lock();
            pg.pins = pg.pins.saturating_sub(1);
        }
    }

    /// Reclaims region contents: drops objects in reverse allocation order
    /// (the finalizer analog), resets the bump pointer and accounting, and
    /// bumps the epoch so outstanding references turn stale.
    fn reclaim_locked(g: &mut RegionInner) {
        while let Some(obj) = g.objects.pop() {
            drop(obj);
        }
        g.bump = 0;
        g.used = 0;
        g.epoch += 1;
        g.stats.reclaims += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn heap_and_immortal_exist() {
        let m = MemoryModel::new();
        assert_eq!(m.snapshot(m.heap()).unwrap().kind, RegionKind::Heap);
        assert_eq!(m.snapshot(m.immortal()).unwrap().kind, RegionKind::Immortal);
        assert_eq!(m.live_regions(), 2);
    }

    #[test]
    fn create_and_destroy_scoped() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        assert_eq!(m.live_regions(), 3);
        m.destroy_scoped(s).unwrap();
        assert_eq!(m.live_regions(), 2);
        assert!(matches!(m.snapshot(s), Err(RtmemError::InvalidRegion(_))));
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let m = MemoryModel::new();
        let a = m.create_scoped(64).unwrap();
        m.destroy_scoped(a).unwrap();
        let b = m.create_scoped(64).unwrap();
        assert_eq!(a.index, b.index);
        assert_ne!(a.generation, b.generation);
        assert!(m.snapshot(a).is_err());
        assert!(m.snapshot(b).is_ok());
    }

    #[test]
    fn cannot_destroy_entered_region() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(s, |_| {
            assert!(matches!(
                m.destroy_scoped(s),
                Err(RtmemError::StillPinned { .. })
            ));
        })
        .unwrap();
        m.destroy_scoped(s).unwrap();
    }

    #[test]
    fn heap_immortal_cannot_be_destroyed() {
        let m = MemoryModel::new();
        assert!(m.destroy_scoped(m.heap()).is_err());
        assert!(m.destroy_scoped(m.immortal()).is_err());
    }

    #[test]
    fn assignment_rules_match_table_1() {
        // Reconstructs the scope structure of paper Fig. 3: A at level 1,
        // B and C siblings inside A.
        let m = MemoryModel::new();
        let a = m.create_scoped(4096).unwrap();
        let b = m.create_scoped(4096).unwrap();
        let c = m.create_scoped(4096).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(a, |ctx| {
            // Pin B under A so it stays parented while we probe from C.
            let _wedge_b = crate::wedge::Wedge::pin(ctx, b).unwrap();
            ctx.enter(c, |ctx| {
                // Keep everything parented while we probe the matrix.
                let heap = m.heap();
                let imm = m.immortal();
                let yes = |f, t| {
                    assert!(
                        m.may_reference(f, t).unwrap(),
                        "{f:?}->{t:?} should be allowed"
                    )
                };
                let no = |f, t| {
                    assert!(
                        !m.may_reference(f, t).unwrap(),
                        "{f:?}->{t:?} should be denied"
                    )
                };
                yes(heap, heap);
                yes(heap, imm);
                no(heap, a);
                no(heap, b);
                no(heap, c);
                yes(imm, heap);
                yes(imm, imm);
                no(imm, a);
                no(imm, b);
                no(imm, c);
                yes(a, heap);
                yes(a, imm);
                yes(a, a);
                no(a, b);
                no(a, c);
                yes(b, heap);
                yes(b, imm);
                yes(b, a);
                yes(b, b);
                no(b, c);
                yes(c, heap);
                yes(c, imm);
                yes(c, a);
                no(c, b);
                yes(c, c);
                assert!(matches!(
                    m.check_assignment(a, c),
                    Err(RtmemError::IllegalAssignment { .. })
                ));
                let _ = ctx;
            })
            .unwrap();
        })
        .unwrap();
    }
}
