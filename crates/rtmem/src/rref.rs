//! Checked cross-region references.
//!
//! [`RRef<T>`] is the analog of a Java reference under the RTSJ: using it is
//! validated at runtime against the referenced region's lifetime (epoch) and
//! the accessing thread's scope stack, and *storing* it inside another
//! region is validated against the Table-1 assignment rules via
//! [`RRef::check_store_in`].

use std::marker::PhantomData;
use std::sync::Arc;

use crate::ctx::Ctx;
use crate::error::{Result, RtmemError};
use crate::model::ModelInner;
use crate::region::{ObjectSlot, RegionId};

/// A typed, runtime-checked reference to an object allocated in a region.
///
/// Cloning an `RRef` is cheap and does not extend the object's lifetime:
/// when the region is reclaimed, every outstanding `RRef` into it becomes
/// stale and its accessors return [`RtmemError::StaleReference`].
pub struct RRef<T> {
    model: Arc<ModelInner>,
    region: RegionId,
    epoch: u64,
    slot: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for RRef<T> {
    fn clone(&self) -> Self {
        RRef {
            model: Arc::clone(&self.model),
            region: self.region,
            epoch: self.epoch,
            slot: self.slot,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for RRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RRef<{}>({:?}@{} #{})",
            std::any::type_name::<T>(),
            self.region,
            self.epoch,
            self.slot
        )
    }
}

impl<T: Send + 'static> RRef<T> {
    pub(crate) fn allocate(model: &Arc<ModelInner>, region: RegionId, value: T) -> Result<RRef<T>> {
        let slot_arc = model.slot(region)?;
        let mut g = slot_arc.lock();
        let cost = object_cost::<T>();
        if cost > g.available() {
            return Err(RtmemError::OutOfMemory {
                region,
                requested: cost,
                available: g.available(),
            });
        }
        g.used += cost;
        g.stats.objects_allocated += 1;
        g.stats.bytes_requested += cost as u64;
        let slot_index = g.objects.len();
        let boxed: Box<dyn std::any::Any + Send> = Box::new(value);
        g.objects
            .push(Some(Arc::new(rtplatform::sync::Mutex::new(boxed))));
        Ok(RRef {
            model: Arc::clone(model),
            region,
            epoch: g.epoch,
            slot: slot_index,
            _marker: PhantomData,
        })
    }

    fn resolve(&self, ctx: &Ctx) -> Result<ObjectSlot> {
        let slot_arc = self.model.slot(self.region)?;
        // Staleness is reported before inaccessibility: a reclaimed region
        // is dead no matter who asks. The region lock must be released
        // before the access check (which locks the region itself).
        let obj = {
            let g = slot_arc.lock();
            if g.epoch != self.epoch {
                return Err(RtmemError::StaleReference {
                    region: self.region,
                    expected_epoch: self.epoch,
                    actual_epoch: g.epoch,
                });
            }
            g.objects
                .get(self.slot)
                .and_then(|o| o.as_ref())
                .cloned()
                .ok_or(RtmemError::StaleReference {
                    region: self.region,
                    expected_epoch: self.epoch,
                    actual_epoch: g.epoch,
                })?
        };
        if !ctx.may_access(self.region) {
            return Err(RtmemError::Inaccessible {
                region: self.region,
            });
        }
        Ok(obj)
    }

    /// Runs `f` with a shared view of the referenced object.
    ///
    /// # Errors
    ///
    /// * [`RtmemError::StaleReference`] — the region was reclaimed.
    /// * [`RtmemError::Inaccessible`] — the region is not on `ctx`'s stack.
    /// * [`RtmemError::TypeMismatch`] — wrong `T` for the slot.
    pub fn with<R>(&self, ctx: &Ctx, f: impl FnOnce(&T) -> R) -> Result<R> {
        let obj = self.resolve(ctx)?;
        let g = obj.lock();
        let val = g.downcast_ref::<T>().ok_or(RtmemError::TypeMismatch {
            region: self.region,
        })?;
        Ok(f(val))
    }

    /// Runs `f` with an exclusive view of the referenced object.
    ///
    /// # Errors
    ///
    /// Same as [`RRef::with`].
    pub fn with_mut<R>(&self, ctx: &Ctx, f: impl FnOnce(&mut T) -> R) -> Result<R> {
        let obj = self.resolve(ctx)?;
        let mut g = obj.lock();
        let val = g.downcast_mut::<T>().ok_or(RtmemError::TypeMismatch {
            region: self.region,
        })?;
        Ok(f(val))
    }

    /// Copies the value out (requires `T: Clone`).
    pub fn get_clone(&self, ctx: &Ctx) -> Result<T>
    where
        T: Clone,
    {
        self.with(ctx, T::clone)
    }
}

impl<T> RRef<T> {
    /// The region this reference points into.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Whether the referenced object is still live (region not reclaimed).
    pub fn is_live(&self) -> bool {
        match self.model.slot(self.region) {
            Ok(slot) => slot.lock().epoch == self.epoch,
            Err(_) => false,
        }
    }

    /// Validates storing this reference inside an object living in
    /// `holder`: the Table-1 assignment rule (the holder must not outlive
    /// the target region).
    ///
    /// # Errors
    ///
    /// [`RtmemError::IllegalAssignment`] when forbidden.
    pub fn check_store_in(&self, holder: RegionId) -> Result<()> {
        let model = crate::model::MemoryModel {
            inner: Arc::clone(&self.model),
        };
        model.check_assignment(holder, self.region)
    }
}

/// Accounting cost of an object of type `T`: its size plus a small header,
/// mirroring JVM object headers.
pub(crate) fn object_cost<T>() -> usize {
    std::mem::size_of::<T>() + 16
}

/// A raw byte allocation carved from a region's bump store.
///
/// This is how message payloads travel in the framework: allocation is a
/// bump-pointer increment (constant time), and the whole store is recycled
/// when the region is reclaimed — the `LTMemory` cost model.
#[derive(Clone)]
pub struct RBytes {
    model: Arc<ModelInner>,
    region: RegionId,
    epoch: u64,
    offset: usize,
    len: usize,
}

impl std::fmt::Debug for RBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RBytes({:?}@{} +{}..{})",
            self.region,
            self.epoch,
            self.offset,
            self.offset + self.len
        )
    }
}

impl RBytes {
    pub(crate) fn allocate(
        model: &Arc<ModelInner>,
        region: RegionId,
        len: usize,
    ) -> Result<RBytes> {
        let slot_arc = model.slot(region)?;
        let mut g = slot_arc.lock();
        let aligned = (len + 7) & !7;
        if aligned > g.available() {
            return Err(RtmemError::OutOfMemory {
                region,
                requested: aligned,
                available: g.available(),
            });
        }
        if g.bump + aligned > g.backing.len() {
            if g.kind == crate::region::RegionKind::ScopedVt {
                // Variable-time memory: grow the backing store on demand
                // (geometric growth capped at the budget) — this is the
                // unpredictable allocation-time behavior VTMemory trades
                // for constant-time creation.
                let new_len = (g.backing.len().max(64) * 2)
                    .max(g.bump + aligned)
                    .min(g.size);
                let mut grown = vec![0u8; new_len].into_boxed_slice();
                grown[..g.backing.len()].copy_from_slice(&g.backing);
                g.backing = grown;
            } else {
                return Err(RtmemError::OutOfMemory {
                    region,
                    requested: aligned,
                    available: g.backing.len() - g.bump,
                });
            }
        }
        let offset = g.bump;
        g.bump += aligned;
        g.used += aligned;
        g.stats.byte_allocs += 1;
        g.stats.bytes_requested += aligned as u64;
        Ok(RBytes {
            model: Arc::clone(model),
            region,
            epoch: g.epoch,
            offset,
            len,
        })
    }

    /// Length of the allocation in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The region the bytes live in.
    pub fn region(&self) -> RegionId {
        self.region
    }

    fn check(&self, ctx: &Ctx) -> Result<Arc<rtplatform::sync::Mutex<crate::region::RegionInner>>> {
        let slot = self.model.slot(self.region)?;
        {
            let g = slot.lock();
            if g.epoch != self.epoch {
                return Err(RtmemError::StaleReference {
                    region: self.region,
                    expected_epoch: self.epoch,
                    actual_epoch: g.epoch,
                });
            }
        }
        if !ctx.may_access(self.region) {
            return Err(RtmemError::Inaccessible {
                region: self.region,
            });
        }
        Ok(slot)
    }

    /// Runs `f` over a shared view of the bytes.
    ///
    /// The region lock is held while `f` runs; do not allocate in the same
    /// region from inside `f` (it would deadlock).
    pub fn with_bytes<R>(&self, ctx: &Ctx, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let slot = self.check(ctx)?;
        let g = slot.lock();
        Ok(f(&g.backing[self.offset..self.offset + self.len]))
    }

    /// Runs `f` over an exclusive view of the bytes. Same locking caveat as
    /// [`RBytes::with_bytes`].
    pub fn with_bytes_mut<R>(&self, ctx: &Ctx, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let slot = self.check(ctx)?;
        let mut g = slot.lock();
        let off = self.offset;
        let len = self.len;
        Ok(f(&mut g.backing[off..off + len]))
    }

    /// Copies `src` into the allocation (must fit exactly or be shorter).
    pub fn copy_from_slice(&self, ctx: &Ctx, src: &[u8]) -> Result<()> {
        assert!(src.len() <= self.len, "source longer than allocation");
        self.with_bytes_mut(ctx, |dst| dst[..src.len()].copy_from_slice(src))
    }

    /// Copies the bytes out into a fresh `Vec`.
    pub fn to_vec(&self, ctx: &Ctx) -> Result<Vec<u8>> {
        self.with_bytes(ctx, |b| b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryModel;

    #[test]
    fn alloc_and_read_back() {
        let m = MemoryModel::new();
        let ctx = Ctx::immortal(&m);
        let r = ctx.alloc(String::from("hello")).unwrap();
        assert_eq!(r.with(&ctx, |s| s.len()).unwrap(), 5);
        r.with_mut(&ctx, |s| s.push('!')).unwrap();
        assert_eq!(r.get_clone(&ctx).unwrap(), "hello!");
        assert!(r.is_live());
    }

    #[test]
    fn type_mismatch_detected() {
        let m = MemoryModel::new();
        let ctx = Ctx::immortal(&m);
        let r = ctx.alloc(7u32).unwrap();
        // Forge a wrongly-typed reference by transmuting via raw parts is
        // not possible safely; instead check that downcast works and a
        // cloned ref of the right type succeeds.
        assert_eq!(r.get_clone(&ctx).unwrap(), 7);
        let r2 = r.clone();
        assert_eq!(r2.get_clone(&ctx).unwrap(), 7);
    }

    #[test]
    fn out_of_memory_reported() {
        let m = MemoryModel::new();
        let s = m.create_scoped(64).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(s, |ctx| {
            // Each u64 costs 8 + 16 header = 24 bytes; third one exceeds 64.
            ctx.alloc(1u64).unwrap();
            ctx.alloc(2u64).unwrap();
            let err = ctx.alloc(3u64).unwrap_err();
            assert!(matches!(err, RtmemError::OutOfMemory { .. }));
        })
        .unwrap();
    }

    #[test]
    fn bytes_roundtrip_and_staleness() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        let bytes = ctx
            .enter(s, |ctx| {
                let b = ctx.alloc_bytes(16).unwrap();
                b.copy_from_slice(ctx, &[1, 2, 3, 4]).unwrap();
                assert_eq!(&b.to_vec(ctx).unwrap()[..4], &[1, 2, 3, 4]);
                b
            })
            .unwrap();
        let ctx2 = Ctx::immortal(&m);
        assert!(matches!(
            bytes.to_vec(&ctx2),
            Err(RtmemError::StaleReference { .. })
        ));
    }

    #[test]
    fn bytes_alignment_is_eight() {
        let m = MemoryModel::new();
        let ctx = Ctx::immortal(&m);
        let a = ctx.alloc_bytes(3).unwrap();
        let b = ctx.alloc_bytes(3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        // Offsets differ by the aligned size (8), observable via usage.
        let snap = m.snapshot(m.immortal()).unwrap();
        assert_eq!(snap.used, 16);
    }

    #[test]
    fn check_store_in_applies_table1() {
        let m = MemoryModel::new();
        let s = m.create_scoped(1024).unwrap();
        let mut ctx = Ctx::immortal(&m);
        ctx.enter(s, |ctx| {
            let in_scope = ctx.alloc(1u8).unwrap();
            let in_immortal = ctx.alloc_in(m.immortal(), 2u8).unwrap();
            // Immortal object may not hold a scoped reference…
            assert!(in_scope.check_store_in(m.immortal()).is_err());
            // …but a scoped object may hold an immortal reference.
            assert!(in_immortal.check_store_in(s).is_ok());
        })
        .unwrap();
    }
}
