//! Region identity and per-region storage.
//!
//! A *region* is the Rust analog of an RTSJ `MemoryArea`: a container with a
//! fixed byte budget in which objects are allocated and which is reclaimed
//! as a unit. Three kinds exist, mirroring the RTSJ (paper Section 2.2):
//! heap, immortal and (linear-time) scoped memory.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use rtplatform::sync::Mutex;

/// Identifies a region within a [`MemoryModel`](crate::MemoryModel).
///
/// Ids are generational: destroying a region and reusing its slot bumps the
/// generation, so stale ids are detected rather than silently aliased.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.{}", self.index, self.generation)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The kind of a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Garbage-collected heap. Never reclaimed as a unit; inaccessible from
    /// no-heap contexts. GC interference itself is modeled by `rtplatform`.
    Heap,
    /// Fixed-size area living as long as the model (RTSJ `ImmortalMemory`).
    Immortal,
    /// `LTMemory`-style scoped region: creation cost linear in its size
    /// (the backing store is allocated and zeroed eagerly), reclaimed when
    /// the last pin (thread, wedge or child) leaves. This is the only kind
    /// Compadres uses, because its creation time is predictable (§2.2).
    Scoped,
    /// `VTMemory`-style scoped region: the backing store grows lazily, so
    /// creation is constant-time but allocation cost varies — the
    /// trade-off that makes the paper choose linear-time memory.
    ScopedVt,
}

impl RegionKind {
    /// Whether this kind participates in scope-stack reclamation.
    pub fn is_scoped(self) -> bool {
        matches!(self, RegionKind::Scoped | RegionKind::ScopedVt)
    }
}

/// One allocated object slot. The object lock is separate from the region
/// lock so user closures run without holding the region-wide mutex.
pub(crate) type ObjectSlot = Arc<Mutex<Box<dyn Any + Send>>>;

/// Lifecycle state of a region slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// Slot holds a live region.
    Active,
    /// Slot was destroyed and may be reused by a later `create_scoped`.
    Free,
}

/// Per-region bookkeeping. Held behind a `Mutex` in the model; the object
/// payloads themselves live behind their own per-object locks.
pub(crate) struct RegionInner {
    pub kind: RegionKind,
    pub state: SlotState,
    /// Byte budget for this region.
    pub size: usize,
    /// Bytes consumed by objects and raw allocations in the current epoch.
    pub used: usize,
    /// Incremented on every reclamation; validates `RRef` staleness.
    pub epoch: u64,
    /// Parent region, fixed by the first `enter` (single parent rule);
    /// cleared again when the region is reclaimed.
    pub parent: Option<RegionId>,
    /// Live child scoped regions (each pins this region).
    pub children: Vec<RegionId>,
    /// Number of execution contexts currently inside the region.
    pub entered: usize,
    /// Non-thread pins: wedge handles plus live children.
    pub pins: usize,
    /// Allocated objects, in allocation order; dropped in reverse order at
    /// reclamation (finalizer analog).
    pub objects: Vec<Option<ObjectSlot>>,
    /// Backing store for raw byte allocations; bump-allocated. `LTMemory`
    /// semantics: the buffer is allocated and zeroed eagerly at creation so
    /// the creation cost is linear in `size`.
    pub backing: Box<[u8]>,
    pub bump: usize,
    /// Lifetime counters (survive reclamation; reset on destroy).
    pub stats: RegionStats,
    /// True when the region belongs to a [`ScopePool`](crate::pool::ScopePool)
    /// and must not be destroyed by clients.
    pub pooled: bool,
}

impl RegionInner {
    pub(crate) fn new(kind: RegionKind, size: usize) -> Self {
        let backing = match kind {
            // Heap and immortal store raw bytes lazily-sized as well, but
            // they are allocated once and never reset, so eager zeroing is
            // only semantically required for scoped (LT) regions.
            RegionKind::Scoped | RegionKind::Heap | RegionKind::Immortal => {
                vec![0u8; size].into_boxed_slice()
            }
            // Variable-time memory starts empty and grows on demand.
            RegionKind::ScopedVt => Box::new([]),
        };
        RegionInner {
            kind,
            state: SlotState::Active,
            size,
            used: 0,
            epoch: 0,
            parent: None,
            children: Vec::new(),
            entered: 0,
            pins: 0,
            objects: Vec::new(),
            backing,
            bump: 0,
            stats: RegionStats::default(),
            pooled: false,
        }
    }

    /// Remaining byte budget.
    pub(crate) fn available(&self) -> usize {
        self.size.saturating_sub(self.used)
    }
}

/// Usage statistics for a region, exposed by
/// [`MemoryModel::region_stats`](crate::MemoryModel::region_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Objects allocated over the region's lifetime (across epochs).
    pub objects_allocated: u64,
    /// Raw byte allocations over the region's lifetime.
    pub byte_allocs: u64,
    /// Total bytes ever requested.
    pub bytes_requested: u64,
    /// Times the region was entered.
    pub enters: u64,
    /// Times the region contents were reclaimed.
    pub reclaims: u64,
}

/// A point-in-time snapshot of a region's public state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSnapshot {
    /// The region this snapshot describes.
    pub id: RegionId,
    /// Kind of the region.
    pub kind: RegionKind,
    /// Configured byte budget.
    pub size: usize,
    /// Bytes currently in use.
    pub used: usize,
    /// Current epoch (bumped at each reclamation).
    pub epoch: u64,
    /// Current parent, if the region has been entered.
    pub parent: Option<RegionId>,
    /// Number of contexts currently inside.
    pub entered: usize,
    /// Wedge + child pins.
    pub pins: usize,
    /// Live objects in the current epoch.
    pub live_objects: usize,
    /// Lifetime counters.
    pub stats: RegionStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_debug_is_compact() {
        let id = RegionId {
            index: 3,
            generation: 7,
        };
        assert_eq!(format!("{id:?}"), "R3.7");
        assert_eq!(id.to_string(), "R3.7");
    }

    #[test]
    fn new_scoped_region_is_zeroed_and_empty() {
        let r = RegionInner::new(RegionKind::Scoped, 128);
        assert_eq!(r.backing.len(), 128);
        assert!(r.backing.iter().all(|&b| b == 0));
        assert_eq!(r.used, 0);
        assert_eq!(r.available(), 128);
        assert_eq!(r.epoch, 0);
        assert!(r.parent.is_none());
    }

    #[test]
    fn kind_predicates() {
        assert!(RegionKind::Scoped.is_scoped());
        assert!(!RegionKind::Heap.is_scoped());
        assert!(!RegionKind::Immortal.is_scoped());
    }
}
