//! Graphviz (DOT) rendering of a validated composition.
//!
//! The paper's future work includes "developing a graphical user interface
//! for connecting components" (§5); this module provides the
//! machine-readable half: a DOT graph of the component hierarchy (clusters
//! = scope nesting) and the port connections (edges labeled with message
//! types, styled by link kind).

use std::fmt::Write;

use compadres_core::{Ccl, Cdl, ComponentKind, InstanceId, LinkKind, Result, ValidatedApp};

/// Validates the composition and renders it as a Graphviz `digraph`.
///
/// # Errors
///
/// Propagates validation failures.
pub fn render_dot(cdl: &Cdl, ccl: &Ccl) -> Result<String> {
    let app = compadres_core::validate(cdl, ccl)?;
    Ok(render_dot_validated(&app))
}

/// Renders an already-validated application as DOT.
pub fn render_dot_validated(app: &ValidatedApp) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", app.name);
    out.push_str("  rankdir=LR;\n  compound=true;\n  node [shape=box, fontname=\"monospace\"];\n");

    // Hierarchy as nested clusters.
    let roots: Vec<InstanceId> = app
        .instances
        .iter()
        .filter(|i| i.parent.is_none())
        .map(|i| i.id)
        .collect();
    for root in roots {
        render_instance(app, root, &mut out, 1);
    }

    // Connections as edges.
    for conn in &app.connections {
        let from = &app.instances[conn.from.0 .0];
        let to = &app.instances[conn.to.0 .0];
        let style = match conn.kind {
            LinkKind::Internal => "solid",
            LinkKind::External => "bold",
            LinkKind::Shadow => "dashed",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}.{} → {} : {}\", style={style}];",
            from.name, to.name, from.name, conn.from.1, conn.to.1, conn.message_type
        );
    }
    out.push_str("}\n");
    out
}

fn render_instance(app: &ValidatedApp, id: InstanceId, out: &mut String, depth: usize) {
    let inst = &app.instances[id.0];
    let pad = "  ".repeat(depth);
    let children = app.children(id);
    let kind_label = match inst.kind {
        ComponentKind::Immortal => "immortal".to_string(),
        ComponentKind::Scoped { level } => format!("scope L{level}"),
    };
    if children.is_empty() {
        let _ = writeln!(
            out,
            "{pad}\"{}\" [label=\"{}\\n{} [{kind_label}]\"];",
            inst.name, inst.name, inst.class
        );
    } else {
        let _ = writeln!(out, "{pad}subgraph \"cluster_{}\" {{", inst.name);
        let _ = writeln!(
            out,
            "{pad}  label=\"{} : {} [{kind_label}]\";",
            inst.name, inst.class
        );
        let _ = writeln!(
            out,
            "{pad}  \"{}\" [label=\"{}\\n{}\", style=filled, fillcolor=lightgray];",
            inst.name, inst.name, inst.class
        );
        for child in children {
            render_instance(app, child, out, depth + 1);
        }
        let _ = writeln!(out, "{pad}}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_renders_clusters_and_edges() {
        let cdl = compadres_core::parse_cdl(
            r#"<Components>
            <Component><ComponentName>A</ComponentName>
              <Port><PortName>O</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
              <Port><PortName>I</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
            </Components>"#,
        )
        .unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Dot</ApplicationName>
            <Component><InstanceName>Root</InstanceName><ClassName>A</ClassName><ComponentType>Immortal</ComponentType>
              <Component><InstanceName>L</InstanceName><ClassName>A</ClassName><ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
                <Connection><Port><PortName>O</PortName>
                  <Link><ToComponent>R</ToComponent><ToPort>I</ToPort></Link>
                </Port></Connection>
              </Component>
              <Component><InstanceName>R</InstanceName><ClassName>A</ClassName><ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel></Component>
            </Component>
            </Application>"#,
        )
        .unwrap();
        let dot = render_dot(&cdl, &ccl).unwrap();
        assert!(dot.starts_with("digraph \"Dot\""));
        assert!(dot.contains("subgraph \"cluster_Root\""));
        assert!(dot.contains("\"L\" [label=\"L\\nA [scope L1]\"]"));
        assert!(dot.contains("\"L\" -> \"R\""));
        assert!(
            dot.contains("style=bold"),
            "external links are bold:\n{dot}"
        );
        assert!(dot.ends_with("}\n"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dot_rejects_invalid_composition() {
        let cdl =
            compadres_core::parse_cdl("<Component><ComponentName>A</ComponentName></Component>")
                .unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Bad</ApplicationName>
            <Component><InstanceName>X</InstanceName><ClassName>Nope</ClassName><ComponentType>Immortal</ComponentType></Component>
            </Application>"#,
        )
        .unwrap();
        assert!(render_dot(&cdl, &ccl).is_err());
    }
}
