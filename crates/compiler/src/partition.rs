//! Multi-node partitioning — the deployment phase of the Compadres
//! compiler.
//!
//! The paper's compiler generates glue for one address space; its §5
//! future work ("transparently handling remote communication over a
//! network") is realized here: `node="..."` placement attributes in the
//! CCL split one assembly into per-node sub-assemblies. Links whose
//! endpoints land on the same node stay in-process exactly as before;
//! links that cross nodes are *lowered* into an exporter on the
//! receiving node and a remote-port reference on the sending node, with
//! compiler-assigned logical endpoint names resolved through the naming
//! service at runtime. Instances may also name `replicas="..."` nodes:
//! those nodes receive a standby copy of the subtree, and every export
//! of the subtree lists the replica endpoints senders fail over to.
//!
//! The output is a [`Deployment`]: one validated [`NodePlan`] per node
//! plus the cross-node link table ([`render_deployment`] prints the
//! whole thing as a topology manifest).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

use compadres_core::{validate, Ccl, Cdl, CompadresError, InstanceDecl, Result};

/// Node assigned to instances that carry no `node` attribute anywhere
/// in their ancestry.
pub const DEFAULT_NODE: &str = "default";

/// The compiler-assigned logical name of an exported in-port:
/// `"{app}/{node}/{instance}.{port}"`. Senders resolve it through the
/// (sharded) naming service; the failover path rebinds it.
pub fn endpoint_name(app: &str, node: &str, instance: &str, port: &str) -> String {
    format!("{app}/{node}/{instance}.{port}")
}

/// The logical name a node's heartbeat responder registers under.
pub fn heartbeat_endpoint(app: &str, node: &str) -> String {
    format!("{app}/{node}/#hb")
}

/// An in-port a node must export to the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Receiving instance (lives on this node).
    pub instance: String,
    /// Receiving in-port.
    pub port: String,
    /// Message type crossing the wire.
    pub message_type: String,
    /// Logical endpoint name the exporter binds in the naming service.
    pub endpoint: String,
    /// Replica endpoint names (standby copies on other nodes) senders
    /// fail over to, in declaration order.
    pub replicas: Vec<String>,
    /// When this export is itself a standby copy: the primary endpoint
    /// it covers. Standby exporters bind their own endpoint name and
    /// take over the primary name on failover.
    pub standby_for: Option<String>,
}

/// An out-port whose target lives on another node: the sending side of
/// a lowered cross-node link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRef {
    /// Sending instance (lives on this node).
    pub instance: String,
    /// Sending out-port.
    pub port: String,
    /// Message type crossing the wire.
    pub message_type: String,
    /// Primary target endpoint name.
    pub endpoint: String,
    /// Failover endpoints (the target subtree's replicas), in order.
    pub failover: Vec<String>,
}

/// Everything one node runs: its sub-assembly plus the lowered link
/// endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePlan {
    /// Node name.
    pub node: String,
    /// The per-node sub-assembly (validates against the original CDL).
    pub ccl: Ccl,
    /// In-ports this node exports (primary and standby).
    pub exports: Vec<Export>,
    /// Remote targets this node's out-ports send to.
    pub remotes: Vec<RemoteRef>,
}

/// One lowered cross-node link, for the topology manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossLink {
    /// Sending node.
    pub from_node: String,
    /// Sending (instance, out-port).
    pub from: (String, String),
    /// Receiving node.
    pub to_node: String,
    /// Receiving (instance, in-port).
    pub to: (String, String),
    /// Message type crossing the wire.
    pub message_type: String,
    /// Endpoint name the link is carried over.
    pub endpoint: String,
}

/// A partitioned assembly: per-node plans plus the cross-node topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// Application name from the CCL.
    pub app: String,
    /// Per-node plans, sorted by node name.
    pub nodes: Vec<NodePlan>,
    /// Lowered cross-node links, in connection order.
    pub cross_links: Vec<CrossLink>,
}

impl Deployment {
    /// The plan for one node.
    pub fn node(&self, name: &str) -> Option<&NodePlan> {
        self.nodes.iter().find(|n| n.node == name)
    }
}

/// One primary subtree: the cut root's replicas and every instance
/// inside the subtree (used to resolve which replicas cover an export).
struct Subtree {
    node: String,
    replicas: Vec<String>,
    members: BTreeSet<String>,
    /// The pruned clone (shared by the primary plan and every replica).
    clone: InstanceDecl,
}

/// Partitions a placed assembly into per-node deployment plans.
///
/// Instances inherit their parent's node; unplaced instances land on
/// [`DEFAULT_NODE`]. Every per-node sub-assembly is re-validated
/// against the CDL before being returned.
///
/// # Errors
///
/// Validation failures of the input assembly, or of a generated
/// per-node sub-assembly (a compiler invariant violation).
pub fn partition(cdl: &Cdl, ccl: &Ccl) -> Result<Deployment> {
    let app = validate(cdl, ccl)?;
    let node_of: BTreeMap<&str, String> = app
        .instances
        .iter()
        .map(|i| {
            (
                i.name.as_str(),
                i.node.clone().unwrap_or_else(|| DEFAULT_NODE.to_string()),
            )
        })
        .collect();

    // Cut the instance tree into per-node subtrees. A cut happens at
    // every root and wherever an instance's effective node differs from
    // its parent's; the clone keeps same-node children and drops the
    // cut ones (they become roots of their own node's plan).
    let mut subtrees: Vec<Subtree> = Vec::new();
    fn cut(
        decl: &InstanceDecl,
        parent_node: Option<&str>,
        node_of: &BTreeMap<&str, String>,
        subtrees: &mut Vec<Subtree>,
    ) -> Option<InstanceDecl> {
        let node = node_of[decl.instance_name.as_str()].clone();
        let mut clone = decl.clone();
        clone.children = decl
            .children
            .iter()
            .filter_map(|c| cut(c, Some(&node), node_of, subtrees))
            .collect();
        if parent_node == Some(node.as_str()) {
            return Some(clone);
        }
        let mut members = BTreeSet::new();
        fn collect(d: &InstanceDecl, members: &mut BTreeSet<String>) {
            members.insert(d.instance_name.clone());
            for c in &d.children {
                collect(c, members);
            }
        }
        collect(&clone, &mut members);
        subtrees.push(Subtree {
            node,
            replicas: decl.replicas.clone(),
            members,
            clone,
        });
        None
    }
    for root in &ccl.roots {
        cut(root, None, &node_of, &mut subtrees);
    }

    // Cross-node links from the validated connection list.
    let mut cross_links = Vec::new();
    for c in &app.connections {
        let (from_i, to_i) = (&app.instances[c.from.0 .0], &app.instances[c.to.0 .0]);
        let from_node = &node_of[from_i.name.as_str()];
        let to_node = &node_of[to_i.name.as_str()];
        if from_node != to_node {
            cross_links.push(CrossLink {
                from_node: from_node.clone(),
                from: (from_i.name.clone(), c.from.1.clone()),
                to_node: to_node.clone(),
                to: (to_i.name.clone(), c.to.1.clone()),
                message_type: c.message_type.clone(),
                endpoint: endpoint_name(&app.name, to_node, &to_i.name, &c.to.1),
            });
        }
    }

    // Assemble per-node plans. Replica nodes receive a standby copy of
    // the subtree with its placement rewritten to the hosting node.
    let mut roots_by_node: BTreeMap<String, Vec<InstanceDecl>> = BTreeMap::new();
    let mut exports_by_node: BTreeMap<String, Vec<Export>> = BTreeMap::new();
    let mut remotes_by_node: BTreeMap<String, Vec<RemoteRef>> = BTreeMap::new();
    let member_nodes: BTreeMap<&str, &str> = subtrees
        .iter()
        .flat_map(|s| s.members.iter().map(move |m| (m.as_str(), s.node.as_str())))
        .collect();
    let subtree_of = |name: &str| -> &Subtree {
        subtrees
            .iter()
            .find(|s| s.members.contains(name))
            .expect("every instance belongs to a subtree")
    };

    for s in &subtrees {
        roots_by_node
            .entry(s.node.clone())
            .or_default()
            .push(s.clone.clone());
        for r in &s.replicas {
            // The standby copy is re-homed wholesale: descendants drop
            // their explicit placement (it restated the primary node)
            // and inherit the replica root's.
            let mut standby = s.clone.clone();
            fn clear_placement(d: &mut InstanceDecl) {
                d.node = None;
                d.replicas = Vec::new();
                for c in &mut d.children {
                    clear_placement(c);
                }
            }
            clear_placement(&mut standby);
            standby.node = Some(r.clone());
            roots_by_node.entry(r.clone()).or_default().push(standby);
        }
    }
    // Links may only stay where both endpoints landed on the node: two
    // same-node subtrees keep their links in-process, everything else
    // was lowered to the exporter/remote pair. Replica copies likewise
    // drop links to instances absent from their hosting node.
    for roots in roots_by_node.values_mut() {
        let present: BTreeSet<String> = roots
            .iter()
            .flat_map(|r| {
                let mut names = BTreeSet::new();
                fn collect(d: &InstanceDecl, names: &mut BTreeSet<String>) {
                    names.insert(d.instance_name.clone());
                    for c in &d.children {
                        collect(c, names);
                    }
                }
                collect(r, &mut names);
                names
            })
            .collect();
        for r in roots.iter_mut() {
            *r = strip_foreign_links(r, &present);
        }
    }
    // Root order within a node is subtree discovery order — pre-order on
    // the original tree — so the output is deterministic for one input.

    for link in &cross_links {
        let receiver = subtree_of(&link.to.0);
        let replica_endpoints: Vec<String> = receiver
            .replicas
            .iter()
            .map(|r| endpoint_name(&app.name, r, &link.to.0, &link.to.1))
            .collect();
        let exports = exports_by_node.entry(link.to_node.clone()).or_default();
        if !exports.iter().any(|e| e.endpoint == link.endpoint) {
            exports.push(Export {
                instance: link.to.0.clone(),
                port: link.to.1.clone(),
                message_type: link.message_type.clone(),
                endpoint: link.endpoint.clone(),
                replicas: replica_endpoints.clone(),
                standby_for: None,
            });
        }
        for (r, rep_ep) in receiver.replicas.iter().zip(&replica_endpoints) {
            let rep_exports = exports_by_node.entry(r.clone()).or_default();
            if !rep_exports.iter().any(|e| &e.endpoint == rep_ep) {
                rep_exports.push(Export {
                    instance: link.to.0.clone(),
                    port: link.to.1.clone(),
                    message_type: link.message_type.clone(),
                    endpoint: rep_ep.clone(),
                    replicas: Vec::new(),
                    standby_for: Some(link.endpoint.clone()),
                });
            }
        }
        remotes_by_node
            .entry(link.from_node.clone())
            .or_default()
            .push(RemoteRef {
                instance: link.from.0.clone(),
                port: link.from.1.clone(),
                message_type: link.message_type.clone(),
                endpoint: link.endpoint.clone(),
                failover: replica_endpoints,
            });
    }
    debug_assert!(member_nodes.len() == app.instances.len());

    let mut nodes = Vec::new();
    for (node, roots) in roots_by_node {
        let node_ccl = Ccl {
            application_name: app.name.clone(),
            roots,
            rtsj: ccl.rtsj.clone(),
        };
        validate(cdl, &node_ccl).map_err(|e| {
            CompadresError::Validation(format!(
                "internal: partitioned plan for node {node:?} fails validation: {e}"
            ))
        })?;
        nodes.push(NodePlan {
            node: node.clone(),
            ccl: node_ccl,
            exports: exports_by_node.remove(&node).unwrap_or_default(),
            remotes: remotes_by_node.remove(&node).unwrap_or_default(),
        });
    }

    Ok(Deployment {
        app: app.name,
        nodes,
        cross_links,
    })
}

/// Drops links whose peer lives outside `members` — those are the
/// lowered cross-node links, carried by exporter/remote pairs instead.
fn strip_foreign_links(decl: &InstanceDecl, members: &BTreeSet<String>) -> InstanceDecl {
    let mut out = decl.clone();
    out.links.retain(|l| members.contains(&l.to_component));
    out.children = decl
        .children
        .iter()
        .map(|c| strip_foreign_links(c, members))
        .collect();
    out
}

/// Renders the topology manifest: one plan per node (instances,
/// exports, remote references) plus the cross-node link table.
pub fn render_deployment(d: &Deployment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Deployment: {} ({} nodes, {} cross-node links)",
        d.app,
        d.nodes.len(),
        d.cross_links.len()
    );
    for n in &d.nodes {
        let _ = writeln!(out, "Node {}:", n.node);
        let _ = writeln!(out, "  heartbeat: {}", heartbeat_endpoint(&d.app, &n.node));
        let _ = writeln!(out, "  instances:");
        for inst in n.ccl.instances() {
            let standby = n
                .exports
                .iter()
                .any(|e| e.standby_for.is_some() && e.instance == inst.instance_name);
            let _ = writeln!(
                out,
                "    {} : {}{}",
                inst.instance_name,
                inst.class_name,
                if standby { " [standby]" } else { "" }
            );
        }
        if !n.exports.is_empty() {
            let _ = writeln!(out, "  exports:");
            for e in &n.exports {
                let mut line = format!(
                    "    {}.{} <- {} [type {}]",
                    e.instance, e.port, e.endpoint, e.message_type
                );
                if !e.replicas.is_empty() {
                    line.push_str(&format!(" replicas: {}", e.replicas.join(", ")));
                }
                if let Some(p) = &e.standby_for {
                    line.push_str(&format!(" (standby for {p})"));
                }
                let _ = writeln!(out, "{line}");
            }
        }
        if !n.remotes.is_empty() {
            let _ = writeln!(out, "  remotes:");
            for r in &n.remotes {
                let mut line = format!(
                    "    {}.{} -> {} [type {}]",
                    r.instance, r.port, r.endpoint, r.message_type
                );
                if !r.failover.is_empty() {
                    line.push_str(&format!(" failover: {}", r.failover.join(", ")));
                }
                let _ = writeln!(out, "{line}");
            }
        }
    }
    if !d.cross_links.is_empty() {
        let _ = writeln!(out, "Cross-node links:");
        for l in &d.cross_links {
            let _ = writeln!(
                out,
                "  {}/{}.{} -> {}/{}.{} [type {}] via {}",
                l.from_node,
                l.from.0,
                l.from.1,
                l.to_node,
                l.to.0,
                l.to.1,
                l.message_type,
                l.endpoint
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CDL: &str = r#"<Components>
      <Component><ComponentName>Sensor</ComponentName>
        <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>Reading</MessageType></Port>
      </Component>
      <Component><ComponentName>Hub</ComponentName>
        <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Reading</MessageType></Port>
        <Port><PortName>Out</PortName><PortType>Out</PortType><MessageType>Reading</MessageType></Port>
      </Component>
      <Component><ComponentName>Sink</ComponentName>
        <Port><PortName>In</PortName><PortType>In</PortType><MessageType>Reading</MessageType></Port>
      </Component>
      </Components>"#;

    const CCL: &str = r#"<Application>
      <ApplicationName>FanIn</ApplicationName>
      <Component node="edge0"><InstanceName>S0</InstanceName><ClassName>Sensor</ClassName><ComponentType>Immortal</ComponentType>
        <Connection><Port><PortName>Out</PortName>
          <Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link>
        </Port></Connection>
      </Component>
      <Component node="edge1"><InstanceName>S1</InstanceName><ClassName>Sensor</ClassName><ComponentType>Immortal</ComponentType>
        <Connection><Port><PortName>Out</PortName>
          <Link><ToComponent>H</ToComponent><ToPort>In</ToPort></Link>
        </Port></Connection>
      </Component>
      <Component node="hub" replicas="standby"><InstanceName>H</InstanceName><ClassName>Hub</ClassName><ComponentType>Immortal</ComponentType>
        <Connection>
          <Port><PortName>In</PortName><PortAttributes><BufferSize>64</BufferSize></PortAttributes></Port>
          <Port><PortName>Out</PortName>
            <Link><ToComponent>K</ToComponent><ToPort>In</ToPort></Link>
          </Port>
        </Connection>
      </Component>
      <Component node="hub"><InstanceName>K</InstanceName><ClassName>Sink</ClassName><ComponentType>Immortal</ComponentType></Component>
      </Application>"#;

    fn fan_in() -> Deployment {
        let cdl = compadres_core::parse_cdl(CDL).unwrap();
        let ccl = compadres_core::parse_ccl(CCL).unwrap();
        partition(&cdl, &ccl).unwrap()
    }

    #[test]
    fn partitions_into_per_node_plans() {
        let d = fan_in();
        let names: Vec<&str> = d.nodes.iter().map(|n| n.node.as_str()).collect();
        assert_eq!(names, vec!["edge0", "edge1", "hub", "standby"]);
        // The hub node keeps H and K in one plan; the H.Out -> K.In link
        // stays local.
        let hub = d.node("hub").unwrap();
        assert_eq!(hub.ccl.instances().len(), 2);
        assert_eq!(hub.ccl.instance("H").unwrap().links.len(), 1);
        // The sensors keep only their sensor; the link to H was lowered.
        let edge = d.node("edge0").unwrap();
        assert_eq!(edge.ccl.instances().len(), 1);
        assert!(edge.ccl.instance("S0").unwrap().links.is_empty());
    }

    #[test]
    fn cross_links_lowered_to_export_and_remote() {
        let d = fan_in();
        assert_eq!(d.cross_links.len(), 2, "both sensor links cross nodes");
        let hub = d.node("hub").unwrap();
        assert_eq!(hub.exports.len(), 1, "one export covers both senders");
        let e = &hub.exports[0];
        assert_eq!(e.endpoint, "FanIn/hub/H.In");
        assert_eq!(e.replicas, vec!["FanIn/standby/H.In"]);
        assert_eq!(e.standby_for, None);
        let edge = d.node("edge0").unwrap();
        assert_eq!(edge.remotes.len(), 1);
        assert_eq!(edge.remotes[0].endpoint, "FanIn/hub/H.In");
        assert_eq!(edge.remotes[0].failover, vec!["FanIn/standby/H.In"]);
    }

    #[test]
    fn replica_node_hosts_standby_copy() {
        let d = fan_in();
        let standby = d.node("standby").unwrap();
        // The whole hub subtree (H only — K is a sibling, not a child)
        // is copied, rewritten to the standby node.
        assert_eq!(
            standby.ccl.instance("H").unwrap().node.as_deref(),
            Some("standby")
        );
        assert_eq!(standby.exports.len(), 1);
        assert_eq!(standby.exports[0].endpoint, "FanIn/standby/H.In");
        assert_eq!(
            standby.exports[0].standby_for.as_deref(),
            Some("FanIn/hub/H.In")
        );
    }

    #[test]
    fn manifest_renders_topology() {
        let d = fan_in();
        let m = render_deployment(&d);
        assert!(m.contains("Deployment: FanIn (4 nodes, 2 cross-node links)"));
        assert!(m.contains("Node hub:"));
        assert!(m.contains("heartbeat: FanIn/hub/#hb"));
        assert!(m.contains("H.In <- FanIn/hub/H.In [type Reading] replicas: FanIn/standby/H.In"));
        assert!(m.contains("S0.Out -> FanIn/hub/H.In [type Reading] failover: FanIn/standby/H.In"));
        assert!(m.contains("(standby for FanIn/hub/H.In)"));
        assert!(m.contains("edge0/S0.Out -> hub/H.In [type Reading] via FanIn/hub/H.In"));
    }

    #[test]
    fn unplaced_assembly_is_one_default_node() {
        let cdl = compadres_core::parse_cdl(CDL).unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Local</ApplicationName>
            <Component><InstanceName>S</InstanceName><ClassName>Sensor</ClassName><ComponentType>Immortal</ComponentType></Component>
            </Application>"#,
        )
        .unwrap();
        let d = partition(&cdl, &ccl).unwrap();
        assert_eq!(d.nodes.len(), 1);
        assert_eq!(d.nodes[0].node, DEFAULT_NODE);
        assert!(d.cross_links.is_empty());
    }

    #[test]
    fn scoped_children_travel_with_their_cut_root() {
        let cdl = compadres_core::parse_cdl(
            r#"<Components>
            <Component><ComponentName>A</ComponentName>
              <Port><PortName>O</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
              <Port><PortName>I</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
            </Components>"#,
        )
        .unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Deep</ApplicationName>
            <Component node="a"><InstanceName>Root</InstanceName><ClassName>A</ClassName><ComponentType>Immortal</ComponentType>
              <Component node="b"><InstanceName>Mid</InstanceName><ClassName>A</ClassName><ComponentType>Immortal</ComponentType>
                <Component><InstanceName>Leaf</InstanceName><ClassName>A</ClassName><ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
                  <Connection><Port><PortName>O</PortName>
                    <Link><ToComponent>Root</ToComponent><ToPort>I</ToPort></Link>
                  </Port></Connection>
                </Component>
              </Component>
            </Component>
            </Application>"#,
        )
        .unwrap();
        let d = partition(&cdl, &ccl).unwrap();
        // Leaf (scoped) inherits Mid's node b; its shadow link to Root
        // crosses the cut and is lowered.
        let b = d.node("b").unwrap();
        assert!(b.ccl.instance("Leaf").is_some());
        assert!(b.ccl.instance("Leaf").unwrap().links.is_empty());
        assert_eq!(d.cross_links.len(), 1);
        assert_eq!(d.cross_links[0].from, ("Leaf".into(), "O".into()));
        assert_eq!(d.cross_links[0].endpoint, "Deep/a/Root.I");
        assert_eq!(b.remotes[0].instance, "Leaf");
    }
}
