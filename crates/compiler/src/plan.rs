//! Assembly-plan reporting — the composition phase of the Compadres
//! compiler (paper §2.2).
//!
//! Where the paper's compiler emits RTSJ glue code, our runtime constructs
//! the equivalent structures directly; this module renders the *plan* —
//! the scoped-memory architecture, connections and pools the glue would
//! create — for inspection, review and golden testing.

use std::fmt::Write;

use compadres_core::{Ccl, Cdl, ComponentKind, LinkKind, Result, ValidatedApp};

/// Validates the composition and renders a human-readable assembly plan.
///
/// # Errors
///
/// Propagates validation failures.
pub fn render_plan(cdl: &Cdl, ccl: &Ccl) -> Result<String> {
    let app = compadres_core::validate(cdl, ccl)?;
    Ok(render_validated(&app))
}

/// Renders an already-validated application.
pub fn render_validated(app: &ValidatedApp) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Application: {}", app.name);
    let _ = writeln!(out, "Instances ({}):", app.instances.len());
    for inst in &app.instances {
        let indent = "  ".repeat(depth_of(app, inst.id.0));
        let kind = match inst.kind {
            ComponentKind::Immortal => "immortal".to_string(),
            ComponentKind::Scoped { level } => format!("scoped level {level}"),
        };
        let _ = writeln!(out, "  {indent}{} : {} [{kind}]", inst.name, inst.class);
        for (port, attrs) in &inst.port_attrs {
            let mode = if attrs.is_synchronous() {
                "synchronous".to_string()
            } else {
                format!(
                    "buffer {} / pool {}..{} ({:?})",
                    attrs.buffer_size, attrs.min_threads, attrs.max_threads, attrs.strategy
                )
            };
            let _ = writeln!(out, "  {indent}  in-port {port}: {mode}");
        }
    }
    let _ = writeln!(out, "Connections ({}):", app.connections.len());
    for c in &app.connections {
        let from = &app.instances[c.from.0 .0];
        let to = &app.instances[c.to.0 .0];
        let kind = match c.kind {
            LinkKind::Internal => "internal",
            LinkKind::External => "external",
            LinkKind::Shadow => "shadow",
        };
        let home = match c.home {
            Some(h) => app.instances[h.0].name.clone(),
            None => "<immortal>".to_string(),
        };
        let _ = writeln!(
            out,
            "  {}.{} -> {}.{} [{kind}] type {} (pool+buffer in {home})",
            from.name, c.from.1, to.name, c.to.1, c.message_type
        );
    }
    let _ = writeln!(out, "Memory:");
    let _ = writeln!(out, "  immortal size: {} bytes", app.rtsj.immortal_size);
    for p in &app.rtsj.scoped_pools {
        let _ = writeln!(
            out,
            "  scope pool level {}: {} x {} bytes",
            p.level, p.pool_size, p.scope_size
        );
    }
    if !app.warnings.is_empty() {
        let _ = writeln!(out, "Warnings ({}):", app.warnings.len());
        for w in &app.warnings {
            let _ = writeln!(out, "  - {w}");
        }
    }
    out
}

fn depth_of(app: &ValidatedApp, idx: usize) -> usize {
    let mut depth = 0;
    let mut cur = app.instances[idx].parent;
    while let Some(p) = cur {
        depth += 1;
        cur = app.instances[p.0].parent;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_renders_hierarchy_and_connections() {
        let cdl = compadres_core::parse_cdl(
            r#"<Components>
            <Component><ComponentName>A</ComponentName>
              <Port><PortName>O</PortName><PortType>Out</PortType><MessageType>T</MessageType></Port>
              <Port><PortName>I</PortName><PortType>In</PortType><MessageType>T</MessageType></Port>
            </Component>
            </Components>"#,
        )
        .unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Demo</ApplicationName>
            <Component><InstanceName>Root</InstanceName><ClassName>A</ClassName><ComponentType>Immortal</ComponentType>
              <Component><InstanceName>L</InstanceName><ClassName>A</ClassName><ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
                <Connection><Port><PortName>O</PortName>
                  <Link><ToComponent>R</ToComponent><ToPort>I</ToPort></Link>
                </Port></Connection>
              </Component>
              <Component><InstanceName>R</InstanceName><ClassName>A</ClassName><ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel></Component>
            </Component>
            <RTSJAttributes><ImmortalSize>1000</ImmortalSize>
              <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>500</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
            </RTSJAttributes>
            </Application>"#,
        )
        .unwrap();
        let plan = render_plan(&cdl, &ccl).unwrap();
        assert!(plan.contains("Application: Demo"));
        assert!(plan.contains("Root : A [immortal]"));
        assert!(plan.contains("L : A [scoped level 1]"));
        assert!(plan.contains("L.O -> R.I [external] type T (pool+buffer in Root)"));
        assert!(plan.contains("scope pool level 1: 2 x 500 bytes"));
        assert!(plan.contains("Warnings"));
    }

    #[test]
    fn plan_rejects_invalid_composition() {
        let cdl =
            compadres_core::parse_cdl("<Component><ComponentName>A</ComponentName></Component>")
                .unwrap();
        let ccl = compadres_core::parse_ccl(
            r#"<Application><ApplicationName>Bad</ApplicationName>
            <Component><InstanceName>X</InstanceName><ClassName>Missing</ClassName><ComponentType>Immortal</ComponentType></Component>
            </Application>"#,
        )
        .unwrap();
        assert!(render_plan(&cdl, &ccl).is_err());
    }
}
