//! # compadres-compiler — the Compadres compiler as a library and CLI
//!
//! The paper's compiler (Fig. 1) has two jobs:
//!
//! 1. **Component definition phase**: compile the CDL into component and
//!    message-handler skeletons → [`generate_skeletons`].
//! 2. **Component composition phase**: validate the CCL against the CDL
//!    (port directions, exact message types, no loops, scope-access
//!    legality) and generate the scoped-memory architecture and glue →
//!    validation lives in [`compadres_core::validate`]; the resulting
//!    architecture is rendered by [`render_plan`] and executed directly by
//!    [`compadres_core::AppBuilder`].
//!
//! The `compadresc` binary exposes both phases on the command line:
//!
//! ```text
//! compadresc skeleton <cdl-file>          # emit Rust skeletons to stdout
//! compadresc plan <cdl-file> <ccl-file>   # validate + print assembly plan
//! compadresc check <cdl-file> <ccl-file>  # validate, print warnings only
//! compadresc graph <cdl-file> <ccl-file>  # emit a Graphviz DOT diagram
//! compadresc deploy <cdl-file> <ccl-file> # partition by node placement
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod graph;
mod partition;
mod plan;
mod skeleton;

pub use graph::{render_dot, render_dot_validated};
pub use partition::{
    endpoint_name, heartbeat_endpoint, partition, render_deployment, CrossLink, Deployment, Export,
    NodePlan, RemoteRef, DEFAULT_NODE,
};
pub use plan::{render_plan, render_validated};
pub use skeleton::{generate_skeletons, rust_type_name, SkeletonOptions};
