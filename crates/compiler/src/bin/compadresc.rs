//! `compadresc` — the Compadres compiler CLI (paper Fig. 1).

use std::process::ExitCode;

use compadres_compiler::{generate_skeletons, render_plan, SkeletonOptions};

const USAGE: &str = "\
compadresc — the Compadres compiler

USAGE:
    compadresc skeleton <cdl-file>          emit Rust component/handler skeletons
    compadresc plan <cdl-file> <ccl-file>   validate and print the assembly plan
    compadresc check <cdl-file> <ccl-file>  validate; print warnings only
    compadresc graph <cdl-file> <ccl-file>  emit a Graphviz DOT diagram
    compadresc deploy <cdl-file> <ccl-file> partition by node placement
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, cdl_path] if cmd == "skeleton" => {
            let cdl_src =
                std::fs::read_to_string(cdl_path).map_err(|e| format!("{cdl_path}: {e}"))?;
            let cdl = compadres_core::parse_cdl(&cdl_src).map_err(|e| e.to_string())?;
            Ok(generate_skeletons(&cdl, &SkeletonOptions::default()))
        }
        [cmd, cdl_path, ccl_path]
            if cmd == "plan" || cmd == "check" || cmd == "graph" || cmd == "deploy" =>
        {
            let cdl_src =
                std::fs::read_to_string(cdl_path).map_err(|e| format!("{cdl_path}: {e}"))?;
            let ccl_src =
                std::fs::read_to_string(ccl_path).map_err(|e| format!("{ccl_path}: {e}"))?;
            let cdl = compadres_core::parse_cdl(&cdl_src).map_err(|e| e.to_string())?;
            let ccl = compadres_core::parse_ccl(&ccl_src).map_err(|e| e.to_string())?;
            if cmd == "plan" {
                render_plan(&cdl, &ccl).map_err(|e| e.to_string())
            } else if cmd == "graph" {
                compadres_compiler::render_dot(&cdl, &ccl).map_err(|e| e.to_string())
            } else if cmd == "deploy" {
                let deployment =
                    compadres_compiler::partition(&cdl, &ccl).map_err(|e| e.to_string())?;
                Ok(compadres_compiler::render_deployment(&deployment))
            } else {
                let app = compadres_core::validate(&cdl, &ccl).map_err(|e| e.to_string())?;
                let mut out = format!(
                    "{}: OK ({} instances, {} connections)\n",
                    app.name,
                    app.instances.len(),
                    app.connections.len()
                );
                for w in &app.warnings {
                    out.push_str(&format!("warning: {w}\n"));
                }
                Ok(out)
            }
        }
        _ => Err("expected a subcommand".to_string()),
    }
}
