//! Golden-file test pinning the compiler's plan and DOT output on a
//! *deep* assembly: three nested scope levels with pools at every
//! level, all three link kinds (internal, external, compiler-detected
//! shadow), per-port attribute overrides, and unconnected boundary
//! ports (the in-port a deployment would export to remote clients via
//! `PortExporter`). The existing goldens only cover shallow graphs;
//! this pins the nested-cluster and scope-annotation formatting.

use compadres_compiler::{render_dot, render_plan};

const CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>Hub</ComponentName>
    <Port><PortName>dispatch</PortName><PortType>Out</PortType><MessageType>Cmd</MessageType></Port>
    <Port><PortName>collect</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>remoteIn</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Stage</ComponentName>
    <Port><PortName>cmdIn</PortName><PortType>In</PortType><MessageType>Cmd</MessageType></Port>
    <Port><PortName>cmdOut</PortName><PortType>Out</PortType><MessageType>Cmd</MessageType></Port>
    <Port><PortName>sampleIn</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>sampleOut</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Probe</ComponentName>
    <Port><PortName>probeIn</PortName><PortType>In</PortType><MessageType>Sample</MessageType></Port>
    <Port><PortName>probeOut</PortName><PortType>Out</PortType><MessageType>Sample</MessageType></Port>
  </Component>
</Components>"#;

const CCL: &str = r#"
<Application>
  <ApplicationName>DeepStation</ApplicationName>
  <Component>
    <InstanceName>station</InstanceName>
    <ClassName>Hub</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port>
        <PortName>dispatch</PortName>
        <Link><PortType>Internal</PortType><ToComponent>pipeline</ToComponent><ToPort>cmdIn</ToPort></Link>
      </Port>
    </Connection>
    <Component>
      <InstanceName>pipeline</InstanceName>
      <ClassName>Stage</ClassName>
      <ComponentType>Scoped</ComponentType>
      <ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port>
          <PortName>cmdIn</PortName>
          <PortAttributes>
            <BufferSize>32</BufferSize>
            <Threadpool>Dedicated</Threadpool>
            <MinThreadpoolSize>2</MinThreadpoolSize>
            <MaxThreadpoolSize>6</MaxThreadpoolSize>
          </PortAttributes>
        </Port>
        <Port>
          <PortName>cmdOut</PortName>
          <Link><PortType>Internal</PortType><ToComponent>filter</ToComponent><ToPort>cmdIn</ToPort></Link>
        </Port>
        <Port>
          <PortName>sampleOut</PortName>
          <Link><PortType>External</PortType><ToComponent>monitor</ToComponent><ToPort>probeIn</ToPort></Link>
        </Port>
      </Connection>
      <Component>
        <InstanceName>filter</InstanceName>
        <ClassName>Stage</ClassName>
        <ComponentType>Scoped</ComponentType>
        <ScopeLevel>2</ScopeLevel>
        <Connection>
          <Port>
            <PortName>cmdIn</PortName>
            <PortAttributes>
              <BufferSize>4</BufferSize>
              <Threadpool>Synchronous</Threadpool>
              <MinThreadpoolSize>0</MinThreadpoolSize>
              <MaxThreadpoolSize>0</MaxThreadpoolSize>
            </PortAttributes>
          </Port>
        </Connection>
        <Component>
          <InstanceName>deep</InstanceName>
          <ClassName>Probe</ClassName>
          <ComponentType>Scoped</ComponentType>
          <ScopeLevel>3</ScopeLevel>
          <Connection>
            <Port>
              <PortName>probeOut</PortName>
              <Link><ToComponent>station</ToComponent><ToPort>collect</ToPort></Link>
            </Port>
          </Connection>
        </Component>
      </Component>
    </Component>
    <Component>
      <InstanceName>monitor</InstanceName>
      <ClassName>Probe</ClassName>
      <ComponentType>Scoped</ComponentType>
      <ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port>
          <PortName>probeIn</PortName>
          <PortAttributes>
            <BufferSize>8</BufferSize>
            <Threadpool>Shared</Threadpool>
            <MinThreadpoolSize>1</MinThreadpoolSize>
            <MaxThreadpoolSize>2</MaxThreadpoolSize>
          </PortAttributes>
        </Port>
      </Connection>
    </Component>
  </Component>
  <RTSJAttributes>
    <ImmortalSize>8388608</ImmortalSize>
    <ScopedPool><ScopeLevel>1</ScopeLevel><ScopeSize>65536</ScopeSize><PoolSize>4</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>2</ScopeLevel><ScopeSize>32768</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
    <ScopedPool><ScopeLevel>3</ScopeLevel><ScopeSize>16384</ScopeSize><PoolSize>2</PoolSize></ScopedPool>
  </RTSJAttributes>
</Application>"#;

fn parse() -> (compadres_core::Cdl, compadres_core::Ccl) {
    (
        compadres_core::parse_cdl(CDL).unwrap(),
        compadres_core::parse_ccl(CCL).unwrap(),
    )
}

fn diff_against(generated: &str, golden: &str, path: &str) {
    if generated == golden {
        return;
    }
    for (i, (g, e)) in generated.lines().zip(golden.lines()).enumerate() {
        if g != e {
            panic!(
                "output drifted at line {}:\n  generated: {g}\n  golden:    {e}\n(update {path} if intentional)",
                i + 1
            );
        }
    }
    panic!(
        "output length drifted: generated {} lines, golden {} lines (update {path} if intentional)",
        generated.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn deep_assembly_plan_matches_golden() {
    let (cdl, ccl) = parse();
    let plan = render_plan(&cdl, &ccl).unwrap();
    diff_against(
        &plan,
        include_str!("golden/deep_station_plan.txt.golden"),
        "crates/compiler/tests/golden/deep_station_plan.txt.golden",
    );
}

#[test]
fn deep_assembly_dot_matches_golden() {
    let (cdl, ccl) = parse();
    let dot = render_dot(&cdl, &ccl).unwrap();
    diff_against(
        &dot,
        include_str!("golden/deep_station_graph.dot.golden"),
        "crates/compiler/tests/golden/deep_station_graph.dot.golden",
    );
}

#[test]
fn deep_assembly_semantic_spot_checks() {
    // Independent of formatting: the assembly exercises what it claims.
    let (cdl, ccl) = parse();
    let app = compadres_core::validate(&cdl, &ccl).unwrap();
    assert_eq!(app.instances.len(), 5);
    assert_eq!(app.connections.len(), 4);
    let kinds: Vec<_> = app.connections.iter().map(|c| c.kind).collect();
    use compadres_core::LinkKind::*;
    assert!(kinds.contains(&Internal));
    assert!(kinds.contains(&External));
    assert!(kinds.contains(&Shadow), "deep->station crosses two levels");
    // The remote-boundary port stays unconnected (a warning, not an error).
    assert!(app
        .warnings
        .iter()
        .any(|w| w.contains("station.remoteIn") && w.contains("no incoming connection")));
    // Every scope level has a pool: no missing-pool warnings.
    assert!(!app.warnings.iter().any(|w| w.contains("no scope pool")));
}
