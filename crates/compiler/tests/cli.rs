//! End-to-end tests of the `compadresc` command-line interface.

use std::io::Write;
use std::process::Command;

fn compadresc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_compadresc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("compadresc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>Pump</ComponentName>
    <Port><PortName>Cmd</PortName><PortType>In</PortType><MessageType>Command</MessageType></Port>
    <Port><PortName>Status</PortName><PortType>Out</PortType><MessageType>Status</MessageType></Port>
  </Component>
  <Component>
    <ComponentName>Controller</ComponentName>
    <Port><PortName>Status</PortName><PortType>In</PortType><MessageType>Status</MessageType></Port>
    <Port><PortName>Cmd</PortName><PortType>Out</PortType><MessageType>Command</MessageType></Port>
  </Component>
</Components>"#;

const CCL: &str = r#"
<Application>
  <ApplicationName>PumpApp</ApplicationName>
  <Component>
    <InstanceName>Ctl</InstanceName>
    <ClassName>Controller</ClassName>
    <ComponentType>Immortal</ComponentType>
    <Connection>
      <Port><PortName>Cmd</PortName>
        <Link><ToComponent>P1</ToComponent><ToPort>Cmd</ToPort></Link>
      </Port>
      <Port><PortName>Status</PortName>
        <PortAttributes><BufferSize>4</BufferSize></PortAttributes>
      </Port>
    </Connection>
    <Component>
      <InstanceName>P1</InstanceName>
      <ClassName>Pump</ClassName>
      <ComponentType>Scoped</ComponentType><ScopeLevel>1</ScopeLevel>
      <Connection>
        <Port><PortName>Cmd</PortName>
          <PortAttributes><MinThreadpoolSize>0</MinThreadpoolSize><MaxThreadpoolSize>0</MaxThreadpoolSize></PortAttributes>
        </Port>
        <Port><PortName>Status</PortName>
          <Link><ToComponent>Ctl</ToComponent><ToPort>Status</ToPort></Link>
        </Port>
      </Connection>
    </Component>
  </Component>
</Application>"#;

#[test]
fn skeleton_subcommand_emits_rust() {
    let cdl = write_temp("pump.cdl", CDL);
    let out = compadresc().arg("skeleton").arg(&cdl).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("pub struct PumpComponent"));
    assert!(text.contains("pub struct ControllerStatusHandler"));
    assert!(text.contains("impl MessageHandler<Command> for PumpCmdHandler"));
    assert!(text.contains(".register_component(\"Pump\""));
}

#[test]
fn plan_subcommand_prints_architecture() {
    let cdl = write_temp("pump2.cdl", CDL);
    let ccl = write_temp("pump2.ccl", CCL);
    let out = compadresc()
        .arg("plan")
        .arg(&cdl)
        .arg(&ccl)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Application: PumpApp"));
    assert!(text.contains("P1 : Pump [scoped level 1]"));
    assert!(text.contains("Ctl.Cmd -> P1.Cmd [internal]"));
    assert!(text.contains("P1.Status -> Ctl.Status [internal]"));
}

#[test]
fn check_subcommand_reports_warnings() {
    let cdl = write_temp("pump3.cdl", CDL);
    let ccl = write_temp("pump3.ccl", CCL);
    let out = compadresc()
        .arg("check")
        .arg(&cdl)
        .arg(&ccl)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("PumpApp: OK (2 instances, 2 connections)"));
    assert!(text.contains("warning: no scope pool configured for level 1"));
}

#[test]
fn invalid_composition_fails_with_message() {
    let cdl = write_temp("pump4.cdl", CDL);
    let bad = CCL.replace("<ToPort>Cmd</ToPort>", "<ToPort>Status</ToPort>");
    let ccl = write_temp("pump4.ccl", &bad);
    let out = compadresc()
        .arg("plan")
        .arg(&cdl)
        .arg(&ccl)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("must join Out with In"), "stderr: {err}");
}

#[test]
fn missing_file_and_bad_usage() {
    let out = compadresc()
        .arg("skeleton")
        .arg("/nonexistent.cdl")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = compadresc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn graph_subcommand_emits_dot() {
    let cdl = write_temp("pump5.cdl", CDL);
    let ccl = write_temp("pump5.ccl", CCL);
    let out = compadresc()
        .arg("graph")
        .arg(&cdl)
        .arg(&ccl)
        .output()
        .unwrap();
    assert!(out.status.success());
    let dot = String::from_utf8(out.stdout).unwrap();
    assert!(dot.starts_with("digraph \"PumpApp\""));
    assert!(dot.contains("\"Ctl\" -> \"P1\""));
    assert!(dot.contains("\"P1\" -> \"Ctl\""));
}
