//! Golden-file test pinning the exact skeleton output format — any
//! intentional codegen change must update the golden file alongside.

use compadres_compiler::{generate_skeletons, SkeletonOptions};

const CDL: &str = r#"
<Components>
  <Component>
    <ComponentName>Server</ComponentName>
    <Port><PortName>DataOut</PortName><PortType>Out</PortType><MessageType>Text</MessageType></Port>
    <Port><PortName>DataIn</PortName><PortType>In</PortType><MessageType>Num</MessageType></Port>
  </Component>
</Components>"#;

#[test]
fn skeleton_output_matches_golden_file() {
    let cdl = compadres_core::parse_cdl(CDL).unwrap();
    let generated = generate_skeletons(&cdl, &SkeletonOptions::default());
    let golden = include_str!("golden/server_skeleton.rs.golden");
    if generated != golden {
        // Print a usable diff hint before failing.
        for (i, (g, e)) in generated.lines().zip(golden.lines()).enumerate() {
            if g != e {
                panic!(
                    "skeleton drifted at line {}:\n  generated: {g}\n  golden:    {e}\n\
                     (update crates/compiler/tests/golden/server_skeleton.rs.golden if intentional)",
                    i + 1
                );
            }
        }
        panic!(
            "skeleton length drifted: generated {} lines, golden {} lines",
            generated.lines().count(),
            golden.lines().count()
        );
    }
}

#[test]
fn golden_skeleton_actually_compiles_shape() {
    // Cheap structural sanity on the golden file itself.
    let golden = include_str!("golden/server_skeleton.rs.golden");
    assert_eq!(golden.matches('{').count(), golden.matches('}').count());
    assert!(golden.contains("pub fn register_all"));
}
