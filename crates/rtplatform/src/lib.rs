//! # rtplatform — simulated execution platforms for the Compadres paper
//!
//! The paper's first experiment (Table 2, Fig. 9) runs the same co-located
//! client–server round trip on three platforms:
//!
//! 1. **TimeSys RI** — the RTSJ reference implementation on a real-time
//!    Linux kernel: small, tightly bounded jitter (55 µs in the paper);
//! 2. **Mackinac** — Sun's RTSJ VM on SunOS 5.10, a *non*-real-time OS:
//!    slightly larger jitter (92 µs) because system threads occasionally
//!    preempt the application;
//! 3. **JDK 1.4** — a plain JVM whose garbage collector stops the world:
//!    very large jitter, because allocation eventually triggers pauses.
//!
//! We cannot run 2007 hardware; what the experiment actually demonstrates
//! is the *relative* predictability of the three runtimes. This crate
//! models each platform as a deterministic **interference injector**: the
//! real workload (the actual Compadres round trip) executes unchanged, and
//! the platform adds the delays its real counterpart would — GC pauses
//! proportional to allocation pressure for the JDK, occasional
//! preemptions for a non-RT OS, and only scheduling noise for the RT
//! kernel. All randomness is seeded, so runs are reproducible. DESIGN.md
//! §5 records this substitution.

#![warn(missing_docs)]
// `deny`, not `forbid`: the modules that need `unsafe` (`ring`, the
// Vyukov MPMC queue, and the C-library FFI in `poll` and `heap`) opt
// back in locally; every other module — and every crate above this
// one — stays unsafe-free.
#![deny(unsafe_code)]

use std::time::Duration;

pub mod atomic;
pub mod bufchain;
pub mod chk;
pub mod fault;
pub mod heap;
pub mod park;
pub mod poll;
pub mod ring;
pub mod rng;
pub mod sync;

use rng::SplitMix64;

/// A simulated execution platform: called around every measured operation
/// to inject the platform's characteristic interference.
pub trait Platform: Send {
    /// Human-readable platform name (used in table output).
    fn name(&self) -> &'static str;

    /// Called once per measured operation, with the number of bytes the
    /// operation (logically) allocated; delays to model interference.
    fn interfere(&mut self, allocated_bytes: usize);

    /// Resets internal state (e.g. the GC's allocation budget).
    fn reset(&mut self);
}

/// Busy-waits for `d` — sleeping is too coarse for microsecond-scale
/// interference, and a really preempted thread burns wall-clock the same
/// way from the measurement's point of view.
fn spin_for(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// TimeSys RTSJ Reference Implementation on TimeSys Linux (real-time OS):
/// only minimal, bounded scheduler noise.
#[derive(Debug)]
pub struct TimesysRi {
    rng: SplitMix64,
}

impl TimesysRi {
    /// Creates the platform with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        TimesysRi {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Default for TimesysRi {
    fn default() -> Self {
        Self::new(42)
    }
}

impl Platform for TimesysRi {
    fn name(&self) -> &'static str {
        "TimeSys RI"
    }

    fn interfere(&mut self, _allocated_bytes: usize) {
        // Bounded scheduling noise: 0–12 µs, heavily skewed toward 0.
        let r = self.rng.next_f64();
        let noise_us = 12.0 * r * r * r;
        spin_for(Duration::from_nanos((noise_us * 1_000.0) as u64));
    }

    fn reset(&mut self) {}
}

/// Sun Mackinac (RTSJ VM) on SunOS 5.10 — a non-real-time OS: mostly
/// quiet, but system threads occasionally preempt the application for
/// tens of microseconds.
#[derive(Debug)]
pub struct Mackinac {
    rng: SplitMix64,
    /// Probability of a system-thread preemption per operation.
    preempt_prob: f64,
}

impl Mackinac {
    /// Creates the platform with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Mackinac {
            rng: SplitMix64::new(seed),
            preempt_prob: 0.005,
        }
    }
}

impl Default for Mackinac {
    fn default() -> Self {
        Self::new(42)
    }
}

impl Platform for Mackinac {
    fn name(&self) -> &'static str {
        "Mackinac"
    }

    fn interfere(&mut self, _allocated_bytes: usize) {
        // Base scheduler noise a bit above the RT kernel's…
        let r = self.rng.next_f64();
        let noise_us = 18.0 * r * r * r;
        spin_for(Duration::from_nanos((noise_us * 1_000.0) as u64));
        // …plus rare preemptions by OS housekeeping threads. Sized well
        // above the measurement host's own scheduling-noise floor
        // (~100 us spikes) so the modeled effect, not the host, sets the
        // worst case.
        if self.rng.next_f64() < self.preempt_prob {
            let preempt_us = self.rng.range_f64(200.0, 400.0);
            spin_for(Duration::from_nanos((preempt_us * 1_000.0) as u64));
        }
    }

    fn reset(&mut self) {}
}

/// Sun JDK 1.4 with the default stop-the-world collector: allocation
/// accumulates until the young generation fills, then the world stops for
/// a pause that dwarfs the operation itself.
#[derive(Debug)]
pub struct Jdk14 {
    rng: SplitMix64,
    heap_budget: usize,
    allocated: usize,
    minor_pause: Duration,
    major_every: u32,
    collections: u32,
}

impl Jdk14 {
    /// Creates the platform with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Jdk14 {
            rng: SplitMix64::new(seed),
            // Young-generation budget: small enough that a message-passing
            // benchmark triggers collections at a realistic cadence.
            heap_budget: 256 << 10,
            allocated: 0,
            minor_pause: Duration::from_micros(2_000),
            major_every: 24,
            collections: 0,
        }
    }

    /// Number of collections triggered so far.
    pub fn collections(&self) -> u32 {
        self.collections
    }
}

impl Default for Jdk14 {
    fn default() -> Self {
        Self::new(42)
    }
}

impl Platform for Jdk14 {
    fn name(&self) -> &'static str {
        "JDK 1.4"
    }

    fn interfere(&mut self, allocated_bytes: usize) {
        // A JVM allocates even when the application "doesn't": boxing,
        // iterator garbage, and so on.
        self.allocated += allocated_bytes + 256;
        // Ordinary JIT/OS noise.
        let r = self.rng.next_f64();
        spin_for(Duration::from_nanos((15_000.0 * r * r * r) as u64));
        if self.allocated >= self.heap_budget {
            self.allocated = 0;
            self.collections += 1;
            // Minor collection pause with variance; periodically a major
            // collection several times longer.
            let jitter = self.rng.range_f64(0.7, 1.6);
            let mut pause = self.minor_pause.mul_f64(jitter);
            if self.collections.is_multiple_of(self.major_every) {
                pause = pause.mul_f64(4.0);
            }
            spin_for(pause);
        }
    }

    fn reset(&mut self) {
        self.allocated = 0;
        self.collections = 0;
    }
}

/// The three platforms of the paper's Table 2, in its row order.
pub fn paper_platforms(seed: u64) -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(Mackinac::new(seed)),
        Box::new(TimesysRi::new(seed)),
        Box::new(Jdk14::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Measures interference over `ops` operations. The "max" returned
    /// is the *minimum of per-window maxima* over five equal windows:
    /// the platform's modeled worst case recurs in every window, while
    /// a preemption of the measurement host itself hits at most a few,
    /// so this statistic sees the model rather than the host.
    fn measure(platform: &mut dyn Platform, ops: usize, alloc: usize) -> (Duration, Duration) {
        const WINDOWS: usize = 5;
        let mut min = Duration::MAX;
        let mut robust_max = Duration::MAX;
        for _ in 0..WINDOWS {
            let mut window_max = Duration::ZERO;
            for _ in 0..ops / WINDOWS {
                let t = Instant::now();
                platform.interfere(alloc);
                let d = t.elapsed();
                min = min.min(d);
                window_max = window_max.max(d);
            }
            robust_max = robust_max.min(window_max);
        }
        (min, robust_max)
    }

    #[test]
    fn rt_platform_has_bounded_noise() {
        let mut p = TimesysRi::new(1);
        let (_, max) = measure(&mut p, 2_000, 512);
        assert!(
            max < Duration::from_micros(500),
            "RT noise stays small, got {max:?}"
        );
    }

    #[test]
    fn jdk_pauses_dominate() {
        let mut jdk = Jdk14::new(1);
        let (_, jdk_max) = measure(&mut jdk, 3_000, 512);
        let mut ri = TimesysRi::new(1);
        let (_, ri_max) = measure(&mut ri, 3_000, 512);
        assert!(
            jdk_max > ri_max * 4,
            "GC pauses must dwarf RT noise: jdk {jdk_max:?} vs ri {ri_max:?}"
        );
        assert!(jdk_max >= Duration::from_micros(400), "observed a GC pause");
    }

    #[test]
    fn mackinac_between_the_two() {
        let mut mac = Mackinac::new(7);
        let (_, mac_max) = measure(&mut mac, 5_000, 512);
        let mut jdk = Jdk14::new(7);
        let (_, jdk_max) = measure(&mut jdk, 5_000, 512);
        assert!(
            mac_max < jdk_max,
            "mackinac {mac_max:?} must be below jdk {jdk_max:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        // Same seed ⇒ same collection schedule.
        let mut a = Jdk14::new(99);
        let mut b = Jdk14::new(99);
        for _ in 0..1_000 {
            a.interfere(128);
            b.interfere(128);
        }
        assert_eq!(a.collections, b.collections);
        assert_eq!(a.allocated, b.allocated);
    }

    #[test]
    fn reset_clears_gc_state() {
        let mut jdk = Jdk14::new(5);
        for _ in 0..500 {
            jdk.interfere(1024);
        }
        jdk.reset();
        assert_eq!(jdk.allocated, 0);
        assert_eq!(jdk.collections, 0);
    }

    #[test]
    fn paper_platforms_ordering() {
        let platforms = paper_platforms(1);
        let names: Vec<_> = platforms.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Mackinac", "TimeSys RI", "JDK 1.4"]);
    }
}
