//! Small atomics helpers shared by the lock-free hot-path structures:
//! exponential spin backoff and cache-line padding.
//!
//! These are deliberately tiny, dependency-free re-derivations of the
//! idioms `crossbeam-utils` popularized; the offline build cannot pull
//! the real crate in.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads and aligns a value to a 64-byte cache line so two frequently
/// updated atomics (e.g. a ring's head and tail) never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Tunable spin/yield budgets for a [`Backoff`] — how long a waiter
/// burns cycles before it should fall back to a blocking park.
///
/// The defaults (spin 4, yield 8) are the values the contended dispatch
/// bench settled on for general-purpose queues, but the right trade is
/// workload-specific: a latency-critical consumer on a dedicated core
/// wants a longer spin budget (parking costs a syscall pair plus a
/// wakeup on the producer side — that is where the contended 4p/4w
/// dispatch *tail* comes from), while an oversubscribed box wants to
/// park almost immediately. Exposed through `rtsched`'s queue/pool
/// constructors and `compadres_core::AppBuilder::park_policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkPolicy {
    /// Steps of pure spinning (each step `1 << n` spin hints, capped by
    /// the step index) before the backoff starts yielding.
    pub spin_limit: u32,
    /// Steps of `yield_now` after the spin phase before
    /// [`Backoff::is_completed`] reports the waiter should park.
    pub yield_limit: u32,
}

impl ParkPolicy {
    /// The default budgets (spin 4, yield 8).
    pub const fn balanced() -> ParkPolicy {
        ParkPolicy {
            spin_limit: 4,
            yield_limit: 8,
        }
    }

    /// A tail-taming preset for contended queues with dedicated
    /// consumers: a deeper spin/yield budget keeps waiters out of the
    /// kernel across short producer gaps, trading CPU for the p99.
    pub const fn spin_longer() -> ParkPolicy {
        ParkPolicy {
            spin_limit: 6,
            yield_limit: 16,
        }
    }

    /// An oversubscription preset: park almost immediately, donating
    /// the timeslice to whichever thread will publish the awaited
    /// state.
    pub const fn park_eagerly() -> ParkPolicy {
        ParkPolicy {
            spin_limit: 1,
            yield_limit: 2,
        }
    }
}

impl Default for ParkPolicy {
    fn default() -> ParkPolicy {
        ParkPolicy::balanced()
    }
}

/// Exponential backoff for optimistic concurrency loops.
///
/// Retried CAS failures spin briefly (doubling each time); once the
/// backoff [`is_completed`](Backoff::is_completed) the caller should
/// stop burning cycles and park on a real blocking primitive instead —
/// on a single-core box (the CI runner has one) long spins only steal
/// the timeslice from the thread that would make progress. The budgets
/// are per-instance ([`ParkPolicy`]); [`Backoff::new`] uses the
/// defaults.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    policy: ParkPolicy,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff with the default [`ParkPolicy`].
    pub const fn new() -> Backoff {
        Backoff::with_policy(ParkPolicy::balanced())
    }

    /// Creates a fresh backoff with explicit spin/yield budgets.
    pub const fn with_policy(policy: ParkPolicy) -> Backoff {
        Backoff { step: 0, policy }
    }

    /// Backs off after a failed CAS in a lock-free loop: pure spinning,
    /// never yields. Use inside loops that are guaranteed to complete
    /// (another thread mid-operation will finish in a bounded number of
    /// instructions).
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(self.policy.spin_limit).min(16) {
            std::hint::spin_loop();
        }
        // Cap below the park threshold: a pure CAS-retry loop must
        // never look park-worthy to `is_completed`.
        if self.step < self.policy.spin_limit {
            self.step += 1;
        }
    }

    /// Backs off while waiting for an external event (a producer to
    /// arrive, a consumer to make room): spins first, then yields the
    /// thread.
    pub fn snooze(&mut self) {
        if self.step <= self.policy.spin_limit {
            for _ in 0..1u32 << self.step.min(16) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= self.policy.yield_limit {
            self.step += 1;
        }
    }

    /// Whether the spin/yield budget is exhausted and the caller should
    /// park on a blocking primitive.
    ///
    /// The yield phase is kept even on a single-core host: yielding
    /// there donates the timeslice to whichever thread will publish the
    /// awaited state (measured on the contended dispatch bench, parking
    /// right after the spin phase costs ~3x throughput on one core).
    pub fn is_completed(&self) -> bool {
        self.step > self.policy.yield_limit
    }

    /// Whether the pure-spin phase is over (the backoff is yielding).
    /// Callers with evidence that the wait will be long (e.g. a queue
    /// that was idle on its last wait) can park at this point instead
    /// of burning the yield budget.
    pub fn spin_phase_complete(&self) -> bool {
        self.step >= self.policy.spin_limit
    }

    /// Resets the backoff to the cheap-spin phase.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

thread_local! {
    static THREAD_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static GLOBAL_THREAD_IDS: AtomicUsize = AtomicUsize::new(0);

/// The calling thread's shard in `0..shards`, used by per-producer
/// sharded pools to spread threads across shards.
///
/// Each thread gets one dense process-global index on first use (and
/// keeps it for its lifetime), reduced modulo `shards` per call site.
pub fn current_shard(shards: usize) -> usize {
    debug_assert!(shards > 0);
    THREAD_SHARD.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = GLOBAL_THREAD_IDS.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id % shards
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_progresses_to_completion() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        let mut b = Backoff::new();
        for _ in 0..64 {
            b.spin();
        }
        assert!(!b.is_completed(), "pure CAS backoff never asks to park");
    }

    #[test]
    fn park_policy_scales_the_budget() {
        let mut eager = Backoff::with_policy(ParkPolicy::park_eagerly());
        let mut patient = Backoff::with_policy(ParkPolicy::spin_longer());
        let mut eager_steps = 0;
        while !eager.is_completed() {
            eager.snooze();
            eager_steps += 1;
        }
        let mut patient_steps = 0;
        while !patient.is_completed() {
            patient.snooze();
            patient_steps += 1;
        }
        assert!(
            eager_steps < patient_steps,
            "eager ({eager_steps}) parks before patient ({patient_steps})"
        );
        // The spin phase tracks the policy too.
        let mut b = Backoff::with_policy(ParkPolicy {
            spin_limit: 2,
            yield_limit: 4,
        });
        b.snooze();
        b.snooze();
        assert!(b.spin_phase_complete());
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = CachePadded::new(7u8);
        assert_eq!(std::mem::align_of_val(&v), 64);
        assert_eq!(*v, 7);
    }

    #[test]
    fn shard_index_is_stable_per_thread() {
        let a = current_shard(4);
        let b = current_shard(4);
        assert_eq!(a, b);
        assert!(a < 4);
    }

    #[test]
    fn shard_indices_spread_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || current_shard(1 << 30)));
        }
        let mut seen: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "each thread gets a distinct raw id");
    }
}
