//! Futex-style spin-then-park gate for the blocking slow paths of the
//! lock-free queues.
//!
//! The lock-free structures (`MpmcRing`-based buffers and priority
//! queues) never block on their hot path; when a *blocking* API needs
//! to wait (consumer on empty, producer on full), it spins briefly and
//! then parks here. The gate's contract avoids lost wakeups with the
//! classic Dekker-style handshake:
//!
//! * the waiter registers itself (SeqCst RMW on the waiter count)
//!   **before** re-checking the queue state, and re-checks again under
//!   the gate mutex before sleeping;
//! * the producer publishes its element (release store) and then runs
//!   a SeqCst fence before loading the waiter count, so either it sees
//!   the waiter (and notifies under the mutex) or the waiter's
//!   re-check sees the element.
//!
//! The uncontended producer path is a fence plus one relaxed load — it
//! never touches the mutex unless someone is actually parked.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::sync::{Condvar, Mutex};

/// One parking spot: waiter count + mutex/condvar, plus a counter of
/// park transitions for observability.
#[derive(Debug, Default)]
pub struct Gate {
    lock: Mutex<()>,
    cond: Condvar,
    waiters: AtomicUsize,
    parks: AtomicU64,
}

/// Why [`Gate::wait`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// `ready` became true (possibly without ever sleeping).
    Ready,
    /// The deadline passed first.
    TimedOut,
}

impl Gate {
    /// Creates a gate.
    pub const fn new() -> Gate {
        Gate {
            lock: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
        }
    }

    /// Parks the calling thread until `ready()` returns true or the
    /// deadline passes. `ready` is polled under the gate mutex, so it
    /// should be cheap (an atomic probe); the caller performs the real
    /// state transition after `wait` returns.
    pub fn wait(&self, deadline: Option<Instant>, mut ready: impl FnMut() -> bool) -> WaitOutcome {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        crate::chk::yield_point("gate.wait.registered");
        self.parks.fetch_add(1, Ordering::Relaxed);
        let mut g = self.lock.lock();
        let outcome = loop {
            if ready() {
                break WaitOutcome::Ready;
            }
            match deadline {
                None => self.cond.wait(&mut g),
                Some(d) => {
                    if Instant::now() >= d || self.cond.wait_until(&mut g, d).timed_out() {
                        break if ready() {
                            WaitOutcome::Ready
                        } else {
                            WaitOutcome::TimedOut
                        };
                    }
                }
            }
        };
        drop(g);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        outcome
    }

    /// Wakes one parked thread if any thread is (or is about to be)
    /// parked. Call after publishing the state change the waiter polls.
    pub fn notify_one(&self) {
        fence(Ordering::SeqCst);
        crate::chk::yield_point("gate.notify.fenced");
        if self.waiters.load(Ordering::Relaxed) > 0 {
            // Empty critical section: a waiter between its `ready`
            // check and `cond.wait` holds the mutex, so acquiring it
            // here orders this notify after that waiter sleeps.
            drop(self.lock.lock());
            self.cond.notify_one();
        }
    }

    /// Wakes every parked thread (shutdown/close paths).
    pub fn notify_all(&self) {
        drop(self.lock.lock());
        self.cond.notify_all();
    }

    /// Number of times any thread parked on this gate.
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wakes_parked_waiter() {
        let gate = Arc::new(Gate::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (g2, f2) = (Arc::clone(&gate), Arc::clone(&flag));
        let h = std::thread::spawn(move || g2.wait(None, || f2.load(Ordering::SeqCst)));
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        gate.notify_one();
        assert_eq!(h.join().unwrap(), WaitOutcome::Ready);
        assert!(gate.park_count() >= 1);
    }

    #[test]
    fn times_out() {
        let gate = Gate::new();
        let deadline = Instant::now() + Duration::from_millis(20);
        assert_eq!(gate.wait(Some(deadline), || false), WaitOutcome::TimedOut);
    }

    #[test]
    fn notify_without_waiters_is_cheap_noop() {
        let gate = Gate::new();
        gate.notify_one();
        gate.notify_all();
        assert_eq!(gate.park_count(), 0);
    }

    #[test]
    fn no_lost_wakeup_under_races() {
        // Hammer the handshake: a waiter waits for a token, a producer
        // publishes it and notifies. Any lost wakeup deadlocks (and
        // trips the test harness timeout).
        let rounds = if cfg!(miri) { 10 } else { 500 };
        for _ in 0..rounds {
            let gate = Arc::new(Gate::new());
            let flag = Arc::new(AtomicBool::new(false));
            let (g2, f2) = (Arc::clone(&gate), Arc::clone(&flag));
            let h = std::thread::spawn(move || g2.wait(None, || f2.load(Ordering::SeqCst)));
            flag.store(true, Ordering::SeqCst);
            gate.notify_one();
            assert_eq!(h.join().unwrap(), WaitOutcome::Ready);
        }
    }
}
