//! Test-only yield hooks for deterministic interleaving exploration.
//!
//! The lock-free primitives ([`crate::park::Gate`], the Treiber free
//! list in `rtmem`) have narrow race windows — between a waiter
//! registering itself and re-checking state, between loading a stack
//! head and CASing it — that stress tests hit only probabilistically.
//! `rtcheck`'s interleaving driver explores them *deterministically* by
//! stalling threads at named instrumentation points according to an
//! enumerated schedule.
//!
//! Without the `rtcheck-hooks` feature, [`yield_point`] compiles to
//! nothing. With it, each call is one relaxed atomic load unless a hook
//! is installed **and** the calling thread opted in via [`participate`]
//! — so enabling the feature for a whole-workspace test build does not
//! perturb unrelated tests. The hooks sit only on slow paths (park
//! registration, CAS retry windows), never on the fast path.

/// Named instrumentation point. A no-op unless the `rtcheck-hooks`
/// feature is enabled, a hook is installed, and the calling thread has
/// opted in with [`participate`].
#[cfg(not(feature = "rtcheck-hooks"))]
#[inline(always)]
pub fn yield_point(_site: &'static str) {}

#[cfg(feature = "rtcheck-hooks")]
pub use active::{install, participate, uninstall, yield_point};

#[cfg(feature = "rtcheck-hooks")]
mod active {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, RwLock};

    /// The installed hook, called with the site name at each yield point.
    type Hook = Arc<dyn Fn(&'static str) + Send + Sync>;

    static INSTALLED: AtomicBool = AtomicBool::new(false);
    static HOOK: RwLock<Option<Hook>> = RwLock::new(None);

    thread_local! {
        static PARTICIPANT: Cell<bool> = const { Cell::new(false) };
    }

    /// Installs `hook` as the global yield-point callback. Only threads
    /// that called [`participate`]`(true)` will invoke it.
    pub fn install(hook: Arc<dyn Fn(&'static str) + Send + Sync>) {
        *HOOK.write().unwrap() = Some(hook);
        INSTALLED.store(true, Ordering::SeqCst);
    }

    /// Removes the installed hook; yield points revert to (almost) free.
    pub fn uninstall() {
        INSTALLED.store(false, Ordering::SeqCst);
        *HOOK.write().unwrap() = None;
    }

    /// Opts the calling thread in (or out) of yield-point callbacks.
    /// Threads the interleaving driver did not spawn stay unaffected.
    pub fn participate(on: bool) {
        PARTICIPANT.with(|p| p.set(on));
    }

    /// Named instrumentation point: invokes the installed hook if the
    /// calling thread participates. One relaxed load when inactive.
    #[inline]
    pub fn yield_point(site: &'static str) {
        if !INSTALLED.load(Ordering::Relaxed) {
            return;
        }
        if !PARTICIPANT.with(|p| p.get()) {
            return;
        }
        let hook = HOOK.read().unwrap().clone();
        if let Some(hook) = hook {
            hook(site);
        }
    }
}

#[cfg(all(test, feature = "rtcheck-hooks"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn hook_fires_only_for_participants() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        install(Arc::new(move |_| {
            h2.fetch_add(1, Ordering::SeqCst);
        }));
        yield_point("site.a"); // not a participant yet
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        participate(true);
        yield_point("site.a");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        participate(false);
        uninstall();
        yield_point("site.a");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
