//! Fault-tolerance policy primitives shared by the remote layers.
//!
//! The Compadres paper assumes a perfect loopback network; real DRE
//! deployments do not get one. This module centralises the knobs the
//! remote transports (`compadres-core`'s `RemotePort`/`PortExporter` and
//! rtcorba's connections) use to keep real-time threads from wedging on a
//! faulty peer: per-operation deadlines, bounded retries with
//! decorrelated-jitter backoff, and an explicit degradation mode for when
//! the retry budget is exhausted.
//!
//! Everything here is deterministic: backoff jitter is drawn from the
//! seeded [`SplitMix64`] generator, so a failure schedule replays exactly
//! under a fixed seed.

use std::time::Duration;

use crate::rng::SplitMix64;

/// What a sender does with a message once the retry budget for it is
/// exhausted (the link is still down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Surface the failure to the caller. The default: losing data
    /// silently is opt-in.
    #[default]
    Fail,
    /// Shed the message (count it, return success). For periodic
    /// telemetry where the next sample supersedes the lost one.
    Shed,
    /// Queue the message for resend on reconnect, bounded by
    /// [`FaultPolicy::pending_cap`]; when the queue is full the *oldest*
    /// pending message is shed. Sends never block on backoff sleeps in
    /// this mode — staleness is traded away instead of latency.
    DropOldest,
}

/// Deadlines, retry budget and degradation behaviour for one remote link.
///
/// The defaults are conservative for a LAN: see individual fields. All
/// deadlines bound *blocking time of the calling thread*, which is the
/// quantity a real-time system must control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Deadline for establishing a TCP connection (default 2 s).
    pub connect_timeout: Duration,
    /// Deadline for one send (socket write) to make progress (default 1 s).
    pub send_timeout: Duration,
    /// Deadline for a reply / next frame to arrive (default 2 s).
    pub recv_timeout: Duration,
    /// Retry budget per operation *beyond* the first attempt (default 3).
    pub max_retries: u32,
    /// Backoff lower bound, the first retry's minimum delay (default 1 ms).
    pub backoff_base: Duration,
    /// Backoff upper bound; no retry ever waits longer (default 100 ms).
    pub backoff_cap: Duration,
    /// What to do when the retry budget is exhausted (default `Fail`).
    pub degrade: DegradeMode,
    /// Bound on the resend queue in [`DegradeMode::DropOldest`]
    /// (default 64 messages).
    pub pending_cap: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            connect_timeout: Duration::from_secs(2),
            send_timeout: Duration::from_secs(1),
            recv_timeout: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            degrade: DegradeMode::Fail,
            pending_cap: 64,
        }
    }
}

impl FaultPolicy {
    /// A tight policy for tests and low-latency links: 100 ms deadlines,
    /// 2 retries, 1–20 ms backoff.
    pub fn tight() -> FaultPolicy {
        FaultPolicy {
            connect_timeout: Duration::from_millis(100),
            send_timeout: Duration::from_millis(100),
            recv_timeout: Duration::from_millis(100),
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..FaultPolicy::default()
        }
    }

    /// Worst-case wall-clock one send/invoke can block under this policy:
    /// every attempt times out and every backoff draws the cap.
    pub fn worst_case_blocking(&self) -> Duration {
        let attempts = u64::from(self.max_retries) + 1;
        let per_attempt = self.connect_timeout + self.send_timeout + self.recv_timeout;
        per_attempt * (attempts as u32) + self.backoff_cap * self.max_retries
    }
}

/// Per-priority-band admission control for a bounded queue — the
/// [`DegradeMode::Shed`] idea generalized from remote links to local
/// port queues.
///
/// A queue of capacity `C` admits a message of priority `p` only while
/// its occupancy is below the band's *watermark*:
///
/// * `p >= high_floor` — watermark `C`: high-priority traffic is only
///   refused when the queue is truly full (a hard `BufferFull`, never a
///   shed);
/// * `mid_floor <= p < high_floor` — watermark `C * mid_permille /
///   1000`;
/// * `p < mid_floor` — watermark `C * low_permille / 1000`.
///
/// Under overload the queue therefore fills *bottom-up*: low-priority
/// producers start shedding while ~half the capacity is still reserved
/// as headroom for the high band, which keeps high-priority deadlines
/// intact past saturation instead of letting a low-priority burst eat
/// the whole buffer. [`AdmissionPolicy::disabled`] (the `Default`)
/// gives every band the full capacity — exactly the pre-admission
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Lowest priority that counts as the high band (watermark = full
    /// capacity).
    pub high_floor: u8,
    /// Lowest priority that counts as the mid band; below it is low.
    pub mid_floor: u8,
    /// Mid-band watermark in thousandths of capacity (e.g. 750 ⇒ mid
    /// traffic is shed once the queue is 75% full).
    pub mid_permille: u16,
    /// Low-band watermark in thousandths of capacity.
    pub low_permille: u16,
}

impl AdmissionPolicy {
    /// No shedding: every band may fill the queue to capacity. The
    /// default, preserving the historical enqueue behaviour.
    pub const fn disabled() -> AdmissionPolicy {
        AdmissionPolicy {
            high_floor: 0,
            mid_floor: 0,
            mid_permille: 1000,
            low_permille: 1000,
        }
    }

    /// The standard banded preset: mid traffic keeps 3/4 of the queue,
    /// low traffic half, high traffic all of it.
    pub const fn banded(mid_floor: u8, high_floor: u8) -> AdmissionPolicy {
        AdmissionPolicy {
            high_floor,
            mid_floor,
            mid_permille: 750,
            low_permille: 500,
        }
    }

    /// The occupancy at which `priority` stops being admitted into a
    /// queue of `capacity`. Clamped to at least 1 so a nonempty queue
    /// never starves a band outright unless its permille is 0.
    pub fn watermark(&self, priority: u8, capacity: usize) -> usize {
        let permille = if priority >= self.high_floor {
            1000
        } else if priority >= self.mid_floor {
            u32::from(self.mid_permille.min(1000))
        } else {
            u32::from(self.low_permille.min(1000))
        };
        if permille >= 1000 {
            return capacity;
        }
        ((capacity as u64) * u64::from(permille) / 1000) as usize
    }

    /// Whether a message of `priority` is admitted when `occupied` of
    /// `capacity` slots are taken.
    pub fn admits(&self, priority: u8, occupied: usize, capacity: usize) -> bool {
        occupied < self.watermark(priority, capacity)
    }
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy::disabled()
    }
}

/// Decorrelated-jitter backoff (the "decorrelated jitter" variant from
/// the AWS Architecture Blog): each delay is drawn uniformly from
/// `[base, prev * 3)` and clamped to `cap`.
///
/// Jitter decorrelates retry storms across many clients; growing the
/// upper bound from the *previous draw* (rather than the attempt number)
/// adapts the spread to how long the outage has actually lasted.
/// Deterministic per seed.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: SplitMix64,
    base_ns: u64,
    cap_ns: u64,
    prev_ns: u64,
}

impl Backoff {
    /// Creates a backoff schedule for `policy`, seeded for determinism.
    pub fn new(policy: &FaultPolicy, seed: u64) -> Backoff {
        let base_ns = policy.backoff_base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap_ns = (policy.backoff_cap.as_nanos().min(u128::from(u64::MAX)) as u64).max(base_ns);
        Backoff {
            rng: SplitMix64::new(seed),
            base_ns,
            cap_ns,
            prev_ns: base_ns,
        }
    }

    /// Draws the next delay: `min(cap, uniform(base, prev * 3))`.
    pub fn next_delay(&mut self) -> Duration {
        let hi = self.prev_ns.saturating_mul(3).max(self.base_ns + 1);
        let span = hi - self.base_ns;
        let ns = (self.base_ns + self.rng.next_u64() % span).min(self.cap_ns);
        self.prev_ns = ns.max(self.base_ns);
        Duration::from_nanos(ns)
    }

    /// Resets the schedule after a success, so the next failure starts
    /// from `base` again.
    pub fn reset(&mut self) {
        self.prev_ns = self.base_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = FaultPolicy::default();
        assert_eq!(p.degrade, DegradeMode::Fail);
        assert!(p.backoff_base < p.backoff_cap);
        assert!(p.worst_case_blocking() >= p.recv_timeout);
    }

    #[test]
    fn admission_disabled_admits_to_capacity() {
        let a = AdmissionPolicy::disabled();
        for p in [0u8, 10, 99] {
            assert_eq!(a.watermark(p, 64), 64);
            assert!(a.admits(p, 63, 64));
            assert!(!a.admits(p, 64, 64));
        }
    }

    #[test]
    fn admission_bands_shed_bottom_up() {
        let a = AdmissionPolicy::banded(20, 50);
        assert_eq!(a.watermark(50, 100), 100, "high band gets it all");
        assert_eq!(a.watermark(99, 100), 100);
        assert_eq!(a.watermark(20, 100), 75, "mid band: 750 permille");
        assert_eq!(a.watermark(49, 100), 75);
        assert_eq!(a.watermark(0, 100), 50, "low band: 500 permille");
        assert_eq!(a.watermark(19, 100), 50);
        // At 60% occupancy: low sheds, mid and high still admitted.
        assert!(!a.admits(0, 60, 100));
        assert!(a.admits(20, 60, 100));
        assert!(a.admits(50, 60, 100));
        // At 80%: only high admitted.
        assert!(!a.admits(20, 80, 100));
        assert!(a.admits(50, 80, 100));
    }

    #[test]
    fn admission_zero_permille_starves_band() {
        let a = AdmissionPolicy {
            high_floor: 50,
            mid_floor: 20,
            mid_permille: 750,
            low_permille: 0,
        };
        assert_eq!(a.watermark(0, 100), 0);
        assert!(!a.admits(0, 0, 100), "zero watermark admits nothing");
        assert!(a.admits(20, 0, 100));
    }

    #[test]
    fn backoff_bounded_by_policy() {
        let p = FaultPolicy::default();
        let mut b = Backoff::new(&p, 7);
        for _ in 0..1_000 {
            let d = b.next_delay();
            assert!(d >= p.backoff_base, "below base: {d:?}");
            assert!(d <= p.backoff_cap, "above cap: {d:?}");
        }
    }

    #[test]
    fn backoff_deterministic_per_seed() {
        let p = FaultPolicy::default();
        let mut a = Backoff::new(&p, 42);
        let mut b = Backoff::new(&p, 42);
        let seq_a: Vec<_> = (0..32).map(|_| a.next_delay()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Backoff::new(&p, 43);
        let seq_c: Vec<_> = (0..32).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn backoff_grows_then_resets() {
        let p = FaultPolicy::default();
        let mut b = Backoff::new(&p, 1);
        // After enough draws the schedule saturates at the cap more often
        // than not; a reset must pull the next draw back near base.
        let mut saw_large = false;
        for _ in 0..64 {
            if b.next_delay() > p.backoff_base * 10 {
                saw_large = true;
            }
        }
        assert!(saw_large, "backoff never grew past 10x base");
        b.reset();
        // First post-reset draw is uniform in [base, 3*base).
        assert!(b.next_delay() < p.backoff_base * 3);
    }

    #[test]
    fn zero_base_does_not_panic() {
        let p = FaultPolicy {
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_millis(5),
            ..FaultPolicy::default()
        };
        let mut b = Backoff::new(&p, 3);
        for _ in 0..100 {
            assert!(b.next_delay() <= p.backoff_cap);
        }
    }
}
