//! Bounded lock-free MPMC ring buffer (Vyukov's algorithm).
//!
//! Each slot carries a sequence stamp; producers and consumers claim
//! slots by CAS on the head/tail counters and publish with a release
//! store of the stamp, so no operation ever takes a lock and a stalled
//! thread can only delay the one slot it claimed. This is the classic
//! design of Dmitry Vyukov's bounded MPMC queue, with the empty/full
//! disambiguation check `crossbeam`'s `ArrayQueue` uses (a stamp one
//! lap behind is only *possibly* full — the head pointer decides).
//!
//! This is the only module in the workspace that contains `unsafe`
//! code; everything above it (`rtsched` buffers and queues, `rtmem`
//! pools, `compadres-core` message pools) builds on this ring and
//! stays `#![forbid(unsafe_code)]`. The CI miri job exercises exactly
//! this module plus its direct consumers.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

use crate::atomic::{Backoff, CachePadded};

struct Slot<T> {
    /// Stamp protocol: a slot at ring index `i` holds stamp `t` where
    /// `t ≡ i (mod capacity)` when empty-and-writable for the push with
    /// ticket `t`, `t+1` right after that push, and `t + capacity` once
    /// the matching pop has emptied it again.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer FIFO.
///
/// Capacity is rounded up to a power of two; [`MpmcRing::capacity`]
/// reports the physical (rounded) size. Callers that need an exact
/// logical bound (such as `rtsched::BoundedBuffer`) gate admission with
/// their own credit counter.
pub struct MpmcRing<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Slot<T>]>,
    mask: usize,
}

// SAFETY: the ring moves owned `T` values between threads exactly once
// each (a value written by one push is read by exactly one pop, with
// release/acquire ordering through the slot stamp), so `T: Send`
// suffices for both handing the ring itself to another thread and
// sharing it.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> MpmcRing<T> {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    ///
    /// The minimum of 2 is load-bearing: with a single slot the stamp
    /// of a just-filled slot (`t + 1`) is indistinguishable from the
    /// empty stamp of the next ticket (`t + capacity`), so a second
    /// push would overwrite the occupied slot. For any capacity ≥ 2
    /// the two readings differ modulo the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MpmcRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            slots,
            mask: cap - 1,
        }
    }

    /// Physical slot count (the requested capacity rounded up to a
    /// power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Attempts to enqueue without blocking; returns the value back
    /// when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                // The slot is free for this ticket: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above transferred exclusive
                        // ownership of this slot for ticket `tail` to
                        // this thread; no other push can claim it until
                        // the stamp advances a full lap, and no pop
                        // will read it before the release store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => {
                        tail = current;
                        backoff.spin();
                    }
                }
            } else if stamp.wrapping_add(self.slots.len()) == tail.wrapping_add(1) {
                // One lap behind: the queue was full at some point —
                // but a concurrent pop may be mid-flight. The head
                // pointer disambiguates.
                fence(Ordering::SeqCst);
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(self.slots.len()) == tail {
                    return Err(value);
                }
                backoff.spin();
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                // Another producer raced us to this ticket; reload.
                backoff.spin();
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue without blocking; returns `None` when the
    /// ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                // The slot holds the value for this ticket: claim it.
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS transferred exclusive
                        // ownership of the initialized value in this
                        // slot to this thread; the acquire load of the
                        // stamp synchronized with the producer's
                        // release store.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp
                            .store(head.wrapping_add(self.slots.len()), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => {
                        head = current;
                        backoff.spin();
                    }
                }
            } else if stamp == head {
                // Stamp from the previous lap: possibly empty — a
                // concurrent push may be mid-flight; the tail decides.
                fence(Ordering::SeqCst);
                let tail = self.tail.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                backoff.spin();
                head = self.head.load(Ordering::Relaxed);
            } else {
                // Another consumer raced us to this ticket; reload.
                backoff.spin();
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements. Exact when no push or
    /// pop is concurrently in flight.
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            // Consistent snapshot: tail unchanged across the head read.
            if self.tail.load(Ordering::SeqCst) == tail {
                return tail.wrapping_sub(head);
            }
        }
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain via the normal pop path: it handles every stamp state
        // without extra unsafe bookkeeping (we hold `&mut self`, so no
        // concurrent operations are possible).
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let r = MpmcRing::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        assert!(r.push(99).is_err(), "full");
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_one_request_gets_two_slots() {
        // Regression: a 1-slot ring's stamps alias and a second push
        // corrupts the occupied slot, wedging every later pop.
        let r = MpmcRing::new(1);
        assert_eq!(r.capacity(), 2);
        r.push(1u8).unwrap();
        r.push(2u8).unwrap();
        assert!(r.push(3u8).is_err());
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let r = MpmcRing::<u8>::new(5);
        assert_eq!(r.capacity(), 8);
        for i in 0..8 {
            r.push(i).unwrap();
        }
        assert!(r.push(9).is_err());
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn wraps_many_laps() {
        let r = MpmcRing::new(2);
        for i in 0..100u32 {
            r.push(i).unwrap();
            assert_eq!(r.pop(), Some(i));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn drop_releases_remaining_values() {
        let v = Arc::new(());
        let r = MpmcRing::new(4);
        for _ in 0..3 {
            r.push(Arc::clone(&v)).unwrap();
        }
        drop(r);
        assert_eq!(Arc::strong_count(&v), 1, "queued Arcs dropped with ring");
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        let per = if cfg!(miri) { 64 } else { 10_000 };
        let r = Arc::new(MpmcRing::new(32));
        let got = Arc::new(std::sync::Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let r = Arc::clone(&r);
                let got = Arc::clone(&got);
                std::thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match r.pop() {
                            Some(v) => {
                                if v == usize::MAX {
                                    break;
                                }
                                local.push(v);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    got.lock().unwrap().extend(local);
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut v = p * per + i;
                        loop {
                            match r.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for _ in 0..CONSUMERS {
            loop {
                match r.push(usize::MAX) {
                    Ok(()) => break,
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
        for c in consumers {
            c.join().unwrap();
        }
        let mut all = got.lock().unwrap().clone();
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * per).collect();
        assert_eq!(all, expect, "every element delivered exactly once");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let per = if cfg!(miri) { 64 } else { 5_000 };
        let r = Arc::new(MpmcRing::new(8));
        let r2 = Arc::clone(&r);
        let producer = std::thread::spawn(move || {
            for i in 0..per {
                let mut v = i;
                while let Err(back) = r2.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut last = None;
        let mut seen = 0;
        while seen < per {
            if let Some(v) = r.pop() {
                if let Some(prev) = last {
                    assert!(v > prev, "single producer order preserved");
                }
                last = Some(v);
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
