//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The interference models and the randomized test suites need seeded,
//! reproducible randomness but nothing cryptographic, so a SplitMix64
//! generator (Steele et al., "Fast splittable pseudorandom number
//! generators") is plenty: one multiply-xorshift pipeline per draw, full
//! 2^64 period, and excellent statistical quality for its size.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`; the range must be nonempty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} suspicious");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1_000 {
            let x = r.range_f64(200.0, 400.0);
            assert!((200.0..400.0).contains(&x));
            let n = r.range_usize(3, 10);
            assert!((3..10).contains(&n));
        }
    }
}
