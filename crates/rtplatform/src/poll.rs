//! Thin readiness-polling wrapper over Linux `epoll`, for the
//! event-driven ORB transport (DESIGN.md §5h).
//!
//! The workspace is dependency-free by design, so instead of `libc` or
//! `mio` this module declares the four syscall wrappers it needs
//! directly against the C library the Rust standard library already
//! links. The surface is deliberately tiny and `mio`-shaped:
//!
//! * [`Poller`] — an epoll instance: register/modify/deregister file
//!   descriptors with a `u64` token and an [`Interest`], then
//!   [`Poller::wait`] for [`PollEvent`]s (level-triggered, so a handler
//!   that drains only part of a socket is re-notified);
//! * [`Waker`] — an `eventfd` registered with the poller, letting worker
//!   threads interrupt a parked `wait` from outside the poll loop;
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE`'s soft limit to the
//!   hard limit, which multi-thousand-connection load benches need.
//!
//! Everything here is Linux-specific (the repo's CI and target
//! platform); the FFI is confined to this module the same way `unsafe`
//! is confined to `ring`.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

type CInt = i32;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (64-bit
/// alignment would pad `data` to offset 8; the kernel expects 4).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct rlimit` for `RLIMIT_NOFILE`.
#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: CInt = 1;
const EPOLL_CTL_DEL: CInt = 2;
const EPOLL_CTL_MOD: CInt = 3;
const EPOLL_CLOEXEC: CInt = 0x80000;

const EFD_CLOEXEC: CInt = 0x80000;
const EFD_NONBLOCK: CInt = 0x800;

const RLIMIT_NOFILE: CInt = 7;

extern "C" {
    fn epoll_create1(flags: CInt) -> CInt;
    fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
    fn epoll_wait(epfd: CInt, events: *mut EpollEvent, maxevents: CInt, timeout: CInt) -> CInt;
    fn eventfd(initval: u32, flags: CInt) -> CInt;
    fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
    fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
    fn close(fd: CInt) -> CInt;
    fn getrlimit(resource: CInt, rlim: *mut RLimit) -> CInt;
    fn setrlimit(resource: CInt, rlim: *const RLimit) -> CInt;
}

fn cvt(ret: CInt) -> io::Result<CInt> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness a registration asks for. Error/hang-up conditions are
/// always reported regardless of interest (epoll semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the fd is readable (or the peer half-closed).
    pub read: bool,
    /// Notify when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.read {
            m |= EPOLLIN;
        }
        if self.write {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// The fd is in an error state, or the peer closed/half-closed; the
    /// owner should read to completion and drop the connection.
    pub closed: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates an epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, if any.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: CInt, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure, if any (e.g. the fd is already
    /// registered).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest (and/or token) of a registered fd.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure, if any.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`. Harmless to call for an fd that was never
    /// registered (the error is swallowed — deregistration is a cleanup
    /// path).
    pub fn deregister(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: `ev` outlives the call (pre-2.6.9 kernels dereference
        // the pointer even for DEL).
        let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = forever), appending into `events` (cleared
    /// first). Returns the number of events delivered; `0` means the
    /// timeout elapsed. A signal-interrupted wait retries internally.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` failure, if any.
    pub fn wait(
        &self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: CInt = match timeout {
            None => -1,
            // Round up so a 100 µs deadline doesn't busy-spin at 0 ms.
            Some(d) => CInt::try_from(d.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(-1),
        };
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries for
            // the duration of the call.
            let rc =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as CInt, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before using.
            let bits = ev.events;
            let token = ev.data;
            events.push(PollEvent {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing the fd we own.
        let _ = unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for a parked [`Poller::wait`]: an `eventfd`
/// registered under a caller-chosen token. [`Waker::wake`] is safe from
/// any thread; the poll loop calls [`Waker::drain`] when the token
/// surfaces, then processes whatever the waking thread published.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under `token`.
    ///
    /// # Errors
    ///
    /// `eventfd` or registration failures.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        if let Err(e) = poller.register(fd, token, Interest::READ) {
            // SAFETY: closing the fd we just created.
            let _ = unsafe { close(fd) };
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Wakes the poll loop. Cheap and coalescing: multiple wakes before
    /// the drain collapse into one readiness event.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a stack value to an owned fd. An
        // EAGAIN (counter saturated) still leaves the fd readable, which
        // is all a wakeup needs.
        let _ = unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Clears pending wakeups so the level-triggered poller stops
    /// reporting the token.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reading 8 bytes into a stack buffer from an owned fd.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing the fd we own.
        let _ = unsafe { close(self.fd) };
    }
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the
/// resulting soft limit. Ten thousand sockets need ~20k descriptors in
/// a single-process client+server bench; default soft limits (1024) are
/// far below that.
///
/// # Errors
///
/// `getrlimit`/`setrlimit` failures.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` outlives both calls; the kernel fills/reads it.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_write() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing yet: times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Level-triggered: still readable until drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 1];
        let mut c = &b;
        c.read_exact(&mut buf).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn peer_close_reports_closed() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.closed));
    }

    #[test]
    fn modify_changes_interest() {
        let (_a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 2, Interest::READ).unwrap();
        // An idle socket with write interest is immediately writable.
        poller.modify(b.as_raw_fd(), 2, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        poller.deregister(b.as_raw_fd());
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn waker_interrupts_wait_and_coalesces() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::new(Waker::new(&poller, u64::MAX).unwrap());
        let w2 = Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Multiple wakes collapse into one readiness report.
            w2.wake();
            w2.wake();
            w2.wake();
        });
        let mut events = Vec::new();
        let t = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(t.elapsed() < Duration::from_secs(5), "woken, not timed out");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, u64::MAX);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained waker stops reporting");
        h.join().unwrap();
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let lim = raise_nofile_limit().unwrap();
        assert!(lim >= 256, "soft nofile limit unexpectedly tiny: {lim}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), lim);
    }
}
