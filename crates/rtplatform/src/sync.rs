//! Thin `std::sync` wrappers with the `parking_lot` calling convention.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `parking_lot`. The rest of the codebase was written against its API —
//! `lock()` without a `Result`, `Condvar::wait(&mut guard)`, and
//! `wait_until(..).timed_out()` — so this module reproduces exactly that
//! surface over `std::sync`. Poisoning is deliberately ignored: a panic in
//! a handler must not wedge every other thread that shares the lock (the
//! runtime already accounts for handler panics separately).

use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily take
/// the `std` guard out (std's condvar consumes and returns guards, while
/// the `parking_lot` convention mutates one in place).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a timed condition-variable wait returned because of a timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(3u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
