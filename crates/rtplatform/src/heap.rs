//! Process-heap tuning for jitter-sensitive workloads.
//!
//! glibc's allocator adaptively returns freed memory to the kernel: when
//! a `free` leaves enough coalesced space at the arena top it calls
//! `brk`/`madvise`, and the *next* allocation touching those pages eats a
//! minor page fault. Under a steady create/destroy cycle of large
//! buffers (the bench harness tears down a whole `MemoryModel` per
//! batch) this turns into a bistable churn: every cycle releases ~1 MiB
//! and re-faults it, charging hundreds of microseconds of kernel time to
//! whatever code happens to allocate next. Real-time allocators (and the
//! RTSJ scoped-memory model this repo reproduces) avoid exactly this by
//! never giving pages back mid-mission.
//!
//! [`retain_freed_memory`] pins the glibc tunables so freed memory stays
//! mapped: the trim threshold is raised to its maximum and the mmap
//! threshold is fixed (disabling its adaptive shrink-back). Like
//! [`crate::poll`], the FFI is declared directly against the C library
//! std already links — no `libc` dependency.
//!
//! # When applications should opt in
//!
//! Call [`retain_freed_memory`] once at startup when the process is
//! **long-running and latency-sensitive**: ORB servers, soak/chaos
//! harnesses, benchmark binaries, and any deployment where a page fault
//! inside a handler is worse than a larger resident set. The zero-copy
//! buffer chains ([`crate::bufchain`]) remove the per-message
//! allocations that used to make this pin load-bearing on the hot path,
//! so for steady-state messaging it is now belt-and-suspenders — but
//! scope pool teardown, reconnect storms, and application allocations
//! still free large blocks, and without the pin glibc may hand their
//! pages back mid-mission.
//!
//! Skip it for short-lived tools (the pages are returned at exit
//! anyway) and for memory-constrained co-tenants where returning freed
//! pages to the kernel matters more than tail latency — the trade is
//! explicitly resident-set-size for jitter.

#![allow(unsafe_code)]

/// `mallopt` parameter: arena trim threshold (glibc `M_TRIM_THRESHOLD`).
const M_TRIM_THRESHOLD: i32 = -1;
/// `mallopt` parameter: mmap threshold (glibc `M_MMAP_THRESHOLD`).
const M_MMAP_THRESHOLD: i32 = -3;

extern "C" {
    fn mallopt(param: i32, value: i32) -> i32;
}

/// Stops the allocator from returning freed memory to the kernel for the
/// remainder of the process: freed blocks are kept mapped and reused, so
/// steady-state allocation never re-faults pages it already owned.
///
/// Call once at startup from latency-measuring binaries. Returns `false`
/// if the C library rejected either tunable (non-glibc platforms); the
/// process is still fully functional then, just subject to default trim
/// behavior.
pub fn retain_freed_memory() -> bool {
    // SAFETY: mallopt only writes allocator tunables; both parameters are
    // documented glibc constants and any value is handled gracefully.
    unsafe {
        let trim = mallopt(M_TRIM_THRESHOLD, i32::MAX);
        let mmap = mallopt(M_MMAP_THRESHOLD, 32 << 20);
        trim == 1 && mmap == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_freed_memory_accepted() {
        // On the glibc targets CI runs, both tunables must be accepted;
        // calling twice must be idempotent.
        assert!(retain_freed_memory());
        assert!(retain_freed_memory());
    }
}
