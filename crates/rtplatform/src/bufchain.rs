//! Arena-backed buffer chains for the zero-copy message path.
//!
//! The ORB used to copy every message at least five times: CDR encode
//! grew a `Vec`, GIOP framing patched a size into it, the socket write
//! copied it into the kernel, reassembly coalesced reads into a
//! per-connection `Vec`, and decode staged the frame into a scope
//! before parsing. This module provides the carrier that removes the
//! user-space copies:
//!
//! * [`SegPool`] — a lock-free pool of fixed-size segments
//!   (pre-allocated once, recycled forever — the RTSJ "never give
//!   pages back" discipline from [`crate::heap`] applied to message
//!   buffers). Exhaustion falls back to the heap instead of blocking,
//!   so the hot path is wait-free and only loses the recycling win.
//! * [`BufChain`] — the write side: a chain of leased segments with
//!   *headroom* reserved in the first segment so a protocol header can
//!   be prepended after the body is encoded (no encode-then-patch, no
//!   `Vec` shuffle). Appends cross segment boundaries transparently.
//! * [`FrameBuf`] — the read side: an immutable, reference-counted
//!   view of (parts of) segments. Cloning bumps refcounts; slicing
//!   shares the underlying segments. This is what flows through the
//!   component relays — a `clone()` per hop costs refcount bumps, not
//!   a frame copy.
//! * [`RecvChain`] — socket-read reassembly without coalescing: reads
//!   land directly in leased segments and complete frames are carved
//!   out as `FrameBuf`s sharing those segments.
//!
//! Alignment rule: a chain knows its logical *body offset*
//! ([`BufChain::body_len`]) independent of segment geometry, so a CDR
//! encoder can maintain natural alignment relative to the body start
//! even when a primitive straddles a segment boundary (the pad bytes
//! simply split across the seam). DESIGN.md §5i records the ownership
//! and alignment model.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::chk;
use crate::ring::MpmcRing;

/// Default segment size: large enough that a typical GIOP frame
/// (header + small body) fits in one segment, small enough that a
/// pool of a few hundred stays cache- and footprint-friendly.
pub const DEFAULT_SEG_SIZE: usize = 4096;

struct PoolInner {
    free: MpmcRing<Box<[u8]>>,
    seg_size: usize,
    leased: AtomicU64,
    released: AtomicU64,
    heap_fallbacks: AtomicU64,
}

/// Cumulative pool counters (monotonic; for observability and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Segments handed out (pooled + heap fallback).
    pub leased: u64,
    /// Segments returned to the pool.
    pub released: u64,
    /// Leases served from the heap because the pool was empty.
    pub heap_fallbacks: u64,
}

/// A lock-free pool of fixed-size buffer segments.
///
/// Cloning the handle shares the pool. [`SegPool::lease`] never blocks
/// and never fails: when the pool is empty it allocates a one-shot
/// heap segment (counted in [`PoolStats::heap_fallbacks`]) that is
/// simply dropped instead of recycled.
#[derive(Clone)]
pub struct SegPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for SegPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SegPool(seg_size={}, free={}, leased={}, released={}, heap={})",
            self.inner.seg_size,
            self.inner.free.len(),
            s.leased,
            s.released,
            s.heap_fallbacks
        )
    }
}

impl SegPool {
    /// Creates a pool of `count` segments of `seg_size` bytes each,
    /// allocated up front.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `seg_size` is zero.
    pub fn new(count: usize, seg_size: usize) -> SegPool {
        assert!(count > 0, "pool needs at least one segment");
        assert!(seg_size > 0, "segments need a positive size");
        let free = MpmcRing::new(count);
        for _ in 0..count {
            // The ring rounds capacity up to a power of two, so all
            // `count` pushes (and every later release) always fit.
            let _ = free.push(vec![0u8; seg_size].into_boxed_slice());
        }
        SegPool {
            inner: Arc::new(PoolInner {
                free,
                seg_size,
                leased: AtomicU64::new(0),
                released: AtomicU64::new(0),
                heap_fallbacks: AtomicU64::new(0),
            }),
        }
    }

    /// The fixed segment size.
    pub fn seg_size(&self) -> usize {
        self.inner.seg_size
    }

    /// Segments currently sitting in the free list.
    pub fn available(&self) -> usize {
        self.inner.free.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            leased: self.inner.leased.load(Ordering::Relaxed),
            released: self.inner.released.load(Ordering::Relaxed),
            heap_fallbacks: self.inner.heap_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Leases a segment from the pool only; `None` when the pool is
    /// empty. This is the operation the linearizability harness
    /// checks (a bounded-resource acquire).
    pub fn try_lease(&self) -> Option<Seg> {
        chk::yield_point("bufchain.lease.pop");
        let buf = self.inner.free.pop()?;
        self.inner.leased.fetch_add(1, Ordering::Relaxed);
        Some(Seg {
            buf,
            pool: Some(Arc::clone(&self.inner)),
        })
    }

    /// Leases a segment, falling back to a fresh heap allocation when
    /// the pool is empty. Never blocks, never fails.
    pub fn lease(&self) -> Seg {
        match self.try_lease() {
            Some(seg) => seg,
            None => {
                self.inner.heap_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.inner.leased.fetch_add(1, Ordering::Relaxed);
                Seg {
                    buf: vec![0u8; self.inner.seg_size].into_boxed_slice(),
                    pool: None,
                }
            }
        }
    }
}

/// An exclusively-owned segment leased from a [`SegPool`] (or the
/// heap, on pool exhaustion). Returns to its pool on drop.
pub struct Seg {
    buf: Box<[u8]>,
    pool: Option<Arc<PoolInner>>,
}

impl std::fmt::Debug for Seg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Seg({} bytes, {})",
            self.buf.len(),
            if self.pool.is_some() {
                "pooled"
            } else {
                "heap"
            }
        )
    }
}

impl Seg {
    /// Stable identity of the underlying buffer (its address) for the
    /// lifetime of the lease — the "slot name" the linearizability
    /// checker uses to pair acquires with releases.
    pub fn id(&self) -> usize {
        self.buf.as_ptr() as usize
    }

    /// Whether this segment recycles into a pool on drop.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// The segment's capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Read access to the whole segment.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write access to the whole segment (exclusive while leased).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for Seg {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            chk::yield_point("bufchain.release.push");
            let buf = std::mem::take(&mut self.buf);
            pool.released.fetch_add(1, Ordering::Relaxed);
            // Cannot fail: the ring was sized for every pool-owned
            // segment and only pool-owned segments come back.
            let _ = pool.free.push(buf);
        }
    }
}

/// One filled region of a frozen (shared, immutable) segment.
#[derive(Clone)]
struct Part {
    seg: Arc<Seg>,
    start: usize,
    end: usize,
}

impl Part {
    fn bytes(&self) -> &[u8] {
        &self.seg.bytes()[self.start..self.end]
    }

    fn len(&self) -> usize {
        self.end - self.start
    }
}

/// The write side of the zero-copy path: a chain of leased segments
/// with headroom reserved for a protocol header.
///
/// Encode the body with [`put`](BufChain::put) / [`pad`](BufChain::pad)
/// (appends cross segment boundaries transparently), then
/// [`prepend`](BufChain::prepend) the header into the headroom once the
/// body size is known, and [`into_frame`](BufChain::into_frame) the
/// result for sending. No byte is ever moved after it is written.
pub struct BufChain {
    pool: SegPool,
    segs: Vec<(Seg, usize)>, // (segment, filled-up-to)
    headroom: usize,
    front: usize, // current start of frame data in segs[0]
    body_len: usize,
}

impl std::fmt::Debug for BufChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BufChain({} segs, headroom {}/{}, body {} bytes)",
            self.segs.len(),
            self.front,
            self.headroom,
            self.body_len
        )
    }
}

impl BufChain {
    /// Starts a chain with `headroom` bytes reserved at the front of
    /// the first segment for a later [`prepend`](BufChain::prepend).
    ///
    /// # Panics
    ///
    /// Panics if `headroom` exceeds the pool's segment size.
    pub fn with_headroom(pool: &SegPool, headroom: usize) -> BufChain {
        assert!(
            headroom <= pool.seg_size(),
            "headroom {} exceeds segment size {}",
            headroom,
            pool.seg_size()
        );
        let first = pool.lease();
        BufChain {
            pool: pool.clone(),
            segs: vec![(first, headroom)],
            headroom,
            front: headroom,
            body_len: 0,
        }
    }

    /// Bytes appended so far (excluding headroom and prepends) — the
    /// logical CDR body offset, and the value a GIOP size field wants.
    pub fn body_len(&self) -> usize {
        self.body_len
    }

    /// Total frame bytes (prepended header + body).
    pub fn frame_len(&self) -> usize {
        (self.headroom - self.front) + self.body_len
    }

    /// Appends `bytes`, crossing segment boundaries as needed.
    pub fn put(&mut self, mut bytes: &[u8]) {
        self.body_len += bytes.len();
        while !bytes.is_empty() {
            let seg_size = self.pool.seg_size();
            let (seg, filled) = self.segs.last_mut().expect("chain has a tail");
            let room = seg_size - *filled;
            if room == 0 {
                let fresh = self.pool.lease();
                self.segs.push((fresh, 0));
                continue;
            }
            let n = room.min(bytes.len());
            seg.bytes_mut()[*filled..*filled + n].copy_from_slice(&bytes[..n]);
            *filled += n;
            bytes = &bytes[n..];
        }
    }

    /// Appends `n` zero bytes (CDR alignment padding).
    pub fn pad(&mut self, n: usize) {
        const ZEROS: [u8; 8] = [0; 8];
        let mut left = n;
        while left > 0 {
            let step = left.min(ZEROS.len());
            self.put(&ZEROS[..step]);
            left -= step;
        }
    }

    /// Writes `header` immediately before the already-encoded body,
    /// consuming headroom. Multiple prepends stack front-to-back (the
    /// last prepend ends up first on the wire).
    ///
    /// # Panics
    ///
    /// Panics if the remaining headroom is too small.
    pub fn prepend(&mut self, header: &[u8]) {
        assert!(
            header.len() <= self.front,
            "prepend of {} bytes exceeds remaining headroom {}",
            header.len(),
            self.front
        );
        let start = self.front - header.len();
        self.segs[0].0.bytes_mut()[start..self.front].copy_from_slice(header);
        self.front = start;
    }

    /// Copies the whole frame (header + body) into one `Vec` — the
    /// compatibility path for transports without scatter-gather.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.frame_len());
        for (i, (seg, filled)) in self.segs.iter().enumerate() {
            let start = if i == 0 { self.front } else { 0 };
            out.extend_from_slice(&seg.bytes()[start..*filled]);
        }
        out
    }

    /// Freezes the chain into an immutable, shareable [`FrameBuf`].
    pub fn into_frame(self) -> FrameBuf {
        let front = self.front;
        let mut parts = Vec::with_capacity(self.segs.len());
        let mut len = 0;
        for (i, (seg, filled)) in self.segs.into_iter().enumerate() {
            let start = if i == 0 { front } else { 0 };
            if filled > start {
                len += filled - start;
                parts.push(Part {
                    seg: Arc::new(seg),
                    start,
                    end: filled,
                });
            }
        }
        FrameBuf { parts, len }
    }
}

/// An immutable, reference-counted frame: a sequence of borrowed
/// segment regions. `Clone` is refcount bumps; [`slice`](FrameBuf::slice)
/// shares segments. The unit that flows through connection handlers
/// and component relays.
#[derive(Clone, Default)]
pub struct FrameBuf {
    parts: Vec<Part>,
    len: usize,
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameBuf({} bytes in {} parts)",
            self.len,
            self.parts.len()
        )
    }
}

impl FrameBuf {
    /// Wraps an owned `Vec` as a single-part frame (compatibility
    /// constructor for paths that still produce contiguous buffers).
    pub fn from_vec(bytes: Vec<u8>) -> FrameBuf {
        let len = bytes.len();
        if len == 0 {
            return FrameBuf::default();
        }
        FrameBuf {
            parts: vec![Part {
                seg: Arc::new(Seg {
                    buf: bytes.into_boxed_slice(),
                    pool: None,
                }),
                start: 0,
                end: len,
            }],
            len,
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The frame as one contiguous slice, when it happens to live in a
    /// single segment region (the common case for small frames).
    pub fn as_single(&self) -> Option<&[u8]> {
        match self.parts.as_slice() {
            [] => Some(&[]),
            [p] => Some(p.bytes()),
            _ => None,
        }
    }

    /// Borrowed views of every region, in wire order — the input shape
    /// of the in-place CDR decoder and of vectored writes.
    pub fn slices(&self) -> Vec<&[u8]> {
        self.parts.iter().map(Part::bytes).collect()
    }

    /// `IoSlice`s over every region, for `write_vectored`.
    pub fn io_slices(&self) -> Vec<IoSlice<'_>> {
        self.parts.iter().map(|p| IoSlice::new(p.bytes())).collect()
    }

    /// Copies the frame into one `Vec` (compatibility/cold paths).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.parts {
            out.extend_from_slice(p.bytes());
        }
        out
    }

    /// Copies up to `out.len()` bytes starting at `off` into `out`;
    /// returns `false` (leaving `out` unspecified) if the frame ends
    /// before `off + out.len()`.
    pub fn copy_at(&self, off: usize, out: &mut [u8]) -> bool {
        if off + out.len() > self.len {
            return false;
        }
        let mut skip = off;
        let mut done = 0;
        for p in &self.parts {
            let b = p.bytes();
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            let avail = &b[skip..];
            skip = 0;
            let n = avail.len().min(out.len() - done);
            out[done..done + n].copy_from_slice(&avail[..n]);
            done += n;
            if done == out.len() {
                return true;
            }
        }
        false
    }

    /// A sub-frame `[start, end)` sharing the underlying segments.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, start: usize, end: usize) -> FrameBuf {
        assert!(start <= end && end <= self.len, "slice out of range");
        let mut parts = Vec::new();
        let (mut skip, mut want) = (start, end - start);
        for p in &self.parts {
            if want == 0 {
                break;
            }
            let plen = p.len();
            if skip >= plen {
                skip -= plen;
                continue;
            }
            let s = p.start + skip;
            let e = (s + want).min(p.end);
            parts.push(Part {
                seg: Arc::clone(&p.seg),
                start: s,
                end: e,
            });
            want -= e - s;
            skip = 0;
        }
        FrameBuf {
            parts,
            len: end - start,
        }
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(bytes: Vec<u8>) -> FrameBuf {
        FrameBuf::from_vec(bytes)
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.len == other.len && self.to_vec() == other.to_vec()
    }
}
impl Eq for FrameBuf {}

/// Socket-read reassembly without coalescing: bytes land in leased
/// segments and complete frames are carved out as [`FrameBuf`]s that
/// share those segments. The connection loop's pattern is:
///
/// ```text
/// loop {
///     chain.read_from(&mut socket)?;
///     while let Some(len) = frame_len(|buf| chain.peek(0, buf)) {
///         handle(chain.take_frame(len));
///     }
/// }
/// ```
pub struct RecvChain {
    pool: SegPool,
    frozen: VecDeque<Part>,
    tail: Option<(Seg, usize)>, // (segment, filled)
    tail_taken: usize,          // bytes of the tail already consumed
    len: usize,                 // unconsumed bytes total
}

impl std::fmt::Debug for RecvChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecvChain({} bytes buffered, {} frozen parts)",
            self.len,
            self.frozen.len()
        )
    }
}

impl RecvChain {
    /// Creates an empty reassembly chain drawing from `pool`.
    pub fn new(pool: &SegPool) -> RecvChain {
        RecvChain {
            pool: pool.clone(),
            frozen: VecDeque::new(),
            tail: None,
            tail_taken: 0,
            len: 0,
        }
    }

    /// Unconsumed bytes currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads once from `r` directly into segment memory. Returns the
    /// byte count from `r.read` (0 means EOF, as usual).
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        let seg_size = self.pool.seg_size();
        match &self.tail {
            Some((_, filled)) if *filled < seg_size => {}
            Some(_) | None => self.start_fresh_tail(),
        }
        let (seg, filled) = self.tail.as_mut().expect("tail just ensured");
        let n = r.read(&mut seg.bytes_mut()[*filled..])?;
        *filled += n;
        self.len += n;
        Ok(n)
    }

    fn start_fresh_tail(&mut self) {
        self.freeze_tail();
        self.tail = Some((self.pool.lease(), 0));
        self.tail_taken = 0;
    }

    /// Moves the current tail (its unconsumed region) onto the frozen
    /// list, making it shareable.
    fn freeze_tail(&mut self) {
        if let Some((seg, filled)) = self.tail.take() {
            if filled > self.tail_taken {
                self.frozen.push_back(Part {
                    seg: Arc::new(seg),
                    start: self.tail_taken,
                    end: filled,
                });
            }
            self.tail_taken = 0;
        }
    }

    /// Copies `out.len()` bytes starting at unconsumed offset `off`
    /// into `out` without consuming; `false` if not enough is buffered.
    /// Used to peek fixed-size headers that may straddle segments.
    pub fn peek(&self, off: usize, out: &mut [u8]) -> bool {
        if off + out.len() > self.len {
            return false;
        }
        let mut skip = off;
        let mut done = 0;
        // Two-phase copy: frozen parts first, then the live tail.
        for p in &self.frozen {
            let b = p.bytes();
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            let avail = &b[skip..];
            skip = 0;
            let n = avail.len().min(out.len() - done);
            out[done..done + n].copy_from_slice(&avail[..n]);
            done += n;
            if done == out.len() {
                return true;
            }
        }
        if let Some((seg, filled)) = &self.tail {
            let b = &seg.bytes()[self.tail_taken..*filled];
            if skip < b.len() {
                let avail = &b[skip..];
                let n = avail.len().min(out.len() - done);
                out[done..done + n].copy_from_slice(&avail[..n]);
                done += n;
            }
        }
        done == out.len()
    }

    /// Consumes the first `n` buffered bytes as a [`FrameBuf`] sharing
    /// the underlying segments (the tail is frozen if the frame
    /// extends into it).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes are buffered.
    pub fn take_frame(&mut self, n: usize) -> FrameBuf {
        assert!(
            n <= self.len,
            "take_frame({n}) but only {} buffered",
            self.len
        );
        let frozen_avail: usize = self.frozen.iter().map(Part::len).sum();
        if n > frozen_avail {
            // Freeze the tail so the frame can reference it; future
            // reads go to a fresh segment (the remainder of this one
            // is recycled when every referencing frame drops).
            self.freeze_tail();
        }
        let mut parts = Vec::new();
        let mut want = n;
        while want > 0 {
            let p = self.frozen.front_mut().expect("enough frozen bytes");
            let take = p.len().min(want);
            parts.push(Part {
                seg: Arc::clone(&p.seg),
                start: p.start,
                end: p.start + take,
            });
            p.start += take;
            want -= take;
            if p.len() == 0 {
                self.frozen.pop_front();
            }
        }
        self.len -= n;
        FrameBuf { parts, len: n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_lease_release_cycle() {
        let pool = SegPool::new(2, 64);
        assert_eq!(pool.available(), 2);
        let a = pool.try_lease().unwrap();
        let b = pool.try_lease().unwrap();
        assert!(pool.try_lease().is_none(), "pool exhausted");
        assert_ne!(a.id(), b.id());
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.try_lease().unwrap();
        drop((b, c));
        assert_eq!(pool.available(), 2);
        let s = pool.stats();
        assert_eq!(s.leased, 3);
        assert_eq!(s.released, 3);
        assert_eq!(s.heap_fallbacks, 0);
    }

    #[test]
    fn lease_falls_back_to_heap() {
        let pool = SegPool::new(1, 32);
        let a = pool.lease();
        let b = pool.lease(); // pool empty → heap
        assert!(a.is_pooled());
        assert!(!b.is_pooled());
        assert_eq!(b.capacity(), 32);
        drop(b);
        assert_eq!(pool.available(), 0, "heap seg does not enter the pool");
        drop(a);
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.stats().heap_fallbacks, 1);
    }

    #[test]
    fn chain_append_crosses_boundaries() {
        let pool = SegPool::new(8, 16);
        let mut chain = BufChain::with_headroom(&pool, 4);
        let data: Vec<u8> = (0..50).collect();
        chain.put(&data);
        assert_eq!(chain.body_len(), 50);
        chain.prepend(&[0xAA, 0xBB]);
        assert_eq!(chain.frame_len(), 52);
        let flat = chain.to_vec();
        assert_eq!(&flat[..2], &[0xAA, 0xBB]);
        assert_eq!(&flat[2..], &data[..]);
        let frame = chain.into_frame();
        assert_eq!(frame.to_vec(), flat);
        assert!(frame.as_single().is_none(), "50+ bytes span 16-byte segs");
    }

    #[test]
    fn chain_pad_and_full_headroom() {
        let pool = SegPool::new(4, 32);
        let mut chain = BufChain::with_headroom(&pool, 12);
        chain.pad(3);
        chain.put(&[7]);
        chain.prepend(&[1; 12]);
        let flat = chain.to_vec();
        assert_eq!(flat.len(), 16);
        assert_eq!(&flat[..12], &[1; 12]);
        assert_eq!(&flat[12..], &[0, 0, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds remaining headroom")]
    fn prepend_overflow_panics() {
        let pool = SegPool::new(2, 32);
        let mut chain = BufChain::with_headroom(&pool, 2);
        chain.prepend(&[0; 3]);
    }

    #[test]
    fn framebuf_slice_and_copy_at() {
        let pool = SegPool::new(8, 8);
        let mut chain = BufChain::with_headroom(&pool, 0);
        let data: Vec<u8> = (0..30).collect();
        chain.put(&data);
        let frame = chain.into_frame();
        assert_eq!(frame.len(), 30);
        let mid = frame.slice(5, 21);
        assert_eq!(mid.to_vec(), &data[5..21]);
        let mut buf = [0u8; 4];
        assert!(mid.copy_at(2, &mut buf));
        assert_eq!(buf, [7, 8, 9, 10]);
        assert!(!mid.copy_at(14, &mut buf), "past the end");
        // Slicing shares segments: dropping the parent keeps bytes alive.
        drop(frame);
        assert_eq!(mid.to_vec(), &data[5..21]);
    }

    #[test]
    fn framebuf_from_vec_single() {
        let f = FrameBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(f.as_single(), Some(&[1u8, 2, 3][..]));
        assert_eq!(f.slices(), vec![&[1u8, 2, 3][..]]);
        let empty = FrameBuf::default();
        assert_eq!(empty.as_single(), Some(&[][..]));
        assert!(empty.is_empty());
    }

    #[test]
    fn segments_recycle_when_frames_drop() {
        let pool = SegPool::new(2, 16);
        let mut chain = BufChain::with_headroom(&pool, 0);
        chain.put(&[0xFF; 20]); // spans both segments
        assert_eq!(pool.available(), 0);
        let frame = chain.into_frame();
        let clone = frame.clone();
        drop(frame);
        assert_eq!(pool.available(), 0, "clone still references both");
        drop(clone);
        assert_eq!(pool.available(), 2, "all segments back in the pool");
    }

    #[test]
    fn recv_chain_reassembles_across_reads() {
        let pool = SegPool::new(8, 8);
        let mut rc = RecvChain::new(&pool);
        let wire: Vec<u8> = (0..40).collect();
        let mut src = &wire[..];
        // Drip-feed in odd chunks via a limited reader.
        while rc.len() < wire.len() {
            let mut limited = Read::take(&mut src, 7);
            rc.read_from(&mut limited).unwrap();
        }
        let mut hdr = [0u8; 6];
        assert!(rc.peek(0, &mut hdr));
        assert_eq!(hdr, [0, 1, 2, 3, 4, 5]);
        assert!(rc.peek(9, &mut hdr));
        assert_eq!(hdr, [9, 10, 11, 12, 13, 14]);
        let a = rc.take_frame(13);
        let b = rc.take_frame(27);
        assert_eq!(a.to_vec(), &wire[..13]);
        assert_eq!(b.to_vec(), &wire[13..]);
        assert!(rc.is_empty());
        drop((a, b, rc));
        assert_eq!(pool.available(), 8, "every segment recycled");
    }

    #[test]
    fn recv_chain_take_inside_tail_then_continue() {
        let pool = SegPool::new(8, 32);
        let mut rc = RecvChain::new(&pool);
        let mut src: &[u8] = &[1u8; 10];
        rc.read_from(&mut src).unwrap();
        let f = rc.take_frame(4);
        assert_eq!(f.to_vec(), vec![1; 4]);
        assert_eq!(rc.len(), 6);
        // Reading again after a mid-tail carve lands in a fresh segment
        // but the leftover bytes stay readable, in order.
        let mut src2: &[u8] = &[2u8; 5];
        rc.read_from(&mut src2).unwrap();
        let g = rc.take_frame(11);
        let mut expect = vec![1u8; 6];
        expect.extend_from_slice(&[2; 5]);
        assert_eq!(g.to_vec(), expect);
    }

    #[test]
    fn concurrent_lease_release_stress() {
        let iters = if cfg!(miri) { 40 } else { 500 };
        let pool = SegPool::new(16, 64);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..iters {
                        let seg = pool.lease();
                        assert_eq!(seg.capacity(), 64);
                        if i % 3 == 0 {
                            let extra = pool.try_lease();
                            drop(extra);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.available(), 16, "every segment returned");
        let s = pool.stats();
        assert_eq!(s.leased - s.heap_fallbacks, s.released);
    }
}
