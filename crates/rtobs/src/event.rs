//! Typed flight-recorder events.
//!
//! Every event is five 64-bit words in the journal ring: a sequence tag,
//! a packed `(kind, subject)` word, a timestamp, one free payload word,
//! and a packed span-context word (see
//! [`SpanCtx::pack`](crate::SpanCtx::pack); `0` = no trace). The
//! meanings of `subject`/`payload` per kind are documented on
//! [`EventKind`]; subjects are entity ids handed out by
//! [`Observer::register_entity`](crate::Observer::register_entity) so a
//! trace can be rendered with human-readable names.

/// What happened. The numeric values are the wire encoding inside the
/// journal and must stay stable within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum EventKind {
    /// A message was enqueued on an in-port. `subject` = port entity,
    /// `payload` = message priority.
    PortEnqueue = 1,
    /// A message was dequeued for processing. `subject` = port entity,
    /// `payload` = queue wait in nanoseconds.
    PortDequeue = 2,
    /// A handler invocation began. `subject` = port entity.
    HandlerStart = 3,
    /// A handler invocation finished. `subject` = port entity,
    /// `payload` = handler latency in nanoseconds.
    HandlerEnd = 4,
    /// A handler panicked. `subject` = port entity (or pool entity when
    /// raised by the thread pool).
    HandlerPanic = 5,
    /// A message was rejected because the port buffer was full.
    /// `subject` = port entity, `payload` = configured buffer size.
    BufferDrop = 6,
    /// A scoped-memory region was entered. `subject` = region id.
    ScopeEnter = 7,
    /// A scoped-memory region was exited. `subject` = region id.
    ScopeExit = 8,
    /// A scoped-memory region was reclaimed (pin count hit zero).
    /// `subject` = region id, `payload` = bytes freed.
    ScopeReclaim = 9,
    /// A scope was leased from a scope pool. `subject` = pool entity,
    /// `payload` = scopes currently leased.
    PoolAcquire = 10,
    /// A leased scope was returned to its pool. `subject` = pool entity,
    /// `payload` = scopes currently leased.
    PoolRelease = 11,
    /// A GIOP request left the client. `subject` = operation entity,
    /// `payload` = request id.
    GiopRequest = 12,
    /// A GIOP reply was matched to its request. `subject` = operation
    /// entity, `payload` = round-trip nanoseconds.
    GiopReply = 13,
    /// A worker thread inherited a message priority for the duration of
    /// a job. `subject` = pool entity, `payload` = inherited priority.
    PriorityInherit = 14,
    /// A remote send/connect attempt failed and will be retried.
    /// `subject` = remote-link entity, `payload` = backoff delay in
    /// nanoseconds before the next attempt.
    RemoteRetry = 15,
    /// A remote connection was re-established after a failure.
    /// `subject` = remote-link entity, `payload` = reconnects so far.
    RemoteReconnect = 16,
    /// A message was shed by the degradation policy (retry budget
    /// exhausted or resend queue overflow). `subject` = remote-link
    /// entity, `payload` = messages shed so far.
    RemoteShed = 17,
    /// A remote operation missed its deadline. `subject` = remote-link
    /// entity, `payload` = the deadline in nanoseconds.
    RemoteDeadlineMiss = 18,
    /// A traced message was admitted at an ingress port. `subject` =
    /// port entity, `payload` = the span's absolute deadline in
    /// local-epoch nanoseconds (`0` = none). The span word carries the
    /// hop's identity; `t_ns` is the admission time.
    SpanEnqueue = 19,
    /// A traced message left its queue for a worker. `subject` = port
    /// entity, `payload` = queue wait in nanoseconds. Sync-dispatched
    /// hops skip this event (wait is ~0 by construction).
    SpanDequeue = 20,
    /// A traced hop finished. `subject` = port or operation entity,
    /// `payload` = remaining deadline budget as `i64` bits (negative =
    /// overrun; `i64::MIN` when the span carried no deadline).
    SpanEnd = 21,
    /// A traced invocation was shipped across a process boundary.
    /// `subject` = link or operation entity, `payload` = remaining
    /// budget in nanoseconds granted to the peer.
    SpanRemoteSend = 22,
    /// A remote trace context was adopted on the receiving side.
    /// `subject` = link or operation entity, `payload` = budget in
    /// nanoseconds granted by the sender. The span word carries the
    /// newly minted local hop whose `parent` is the sender's span id.
    SpanRemoteRecv = 23,
    /// A message was shed by per-priority-band admission control at a
    /// local port: occupancy was over the band's watermark while the
    /// buffer still had capacity reserved for higher bands. `subject` =
    /// port entity, `payload` = message priority.
    PortShed = 24,
    /// A peer node missed enough consecutive heartbeats to be
    /// suspected. `subject` = member entity, `payload` = consecutive
    /// misses.
    MemberSuspect = 25,
    /// A suspected peer was declared down. `subject` = member entity,
    /// `payload` = nanoseconds since the last good heartbeat.
    MemberDown = 26,
    /// A peer answered a heartbeat again (fresh or recovered).
    /// `subject` = member entity, `payload` = round-trip nanoseconds.
    MemberAlive = 27,
    /// Failover to a replica endpoint began. `subject` = remote-link
    /// entity, `payload` = index of the replica being tried.
    FailoverStart = 28,
    /// Failover completed: traffic flows to the replica. `subject` =
    /// remote-link entity, `payload` = failover latency in nanoseconds.
    FailoverComplete = 29,
    /// A logical name was rebound to a new address in the naming
    /// service. `subject` = member or link entity, `payload` = the
    /// naming shard that served the rebind.
    NamingRebind = 30,
}

impl EventKind {
    /// Decodes the wire value; `None` for unknown values (e.g. from a
    /// torn slot that validation already rejected).
    pub fn from_u32(v: u32) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::PortEnqueue,
            2 => EventKind::PortDequeue,
            3 => EventKind::HandlerStart,
            4 => EventKind::HandlerEnd,
            5 => EventKind::HandlerPanic,
            6 => EventKind::BufferDrop,
            7 => EventKind::ScopeEnter,
            8 => EventKind::ScopeExit,
            9 => EventKind::ScopeReclaim,
            10 => EventKind::PoolAcquire,
            11 => EventKind::PoolRelease,
            12 => EventKind::GiopRequest,
            13 => EventKind::GiopReply,
            14 => EventKind::PriorityInherit,
            15 => EventKind::RemoteRetry,
            16 => EventKind::RemoteReconnect,
            17 => EventKind::RemoteShed,
            18 => EventKind::RemoteDeadlineMiss,
            19 => EventKind::SpanEnqueue,
            20 => EventKind::SpanDequeue,
            21 => EventKind::SpanEnd,
            22 => EventKind::SpanRemoteSend,
            23 => EventKind::SpanRemoteRecv,
            24 => EventKind::PortShed,
            25 => EventKind::MemberSuspect,
            26 => EventKind::MemberDown,
            27 => EventKind::MemberAlive,
            28 => EventKind::FailoverStart,
            29 => EventKind::FailoverComplete,
            30 => EventKind::NamingRebind,
            _ => return None,
        })
    }

    /// Short lowercase label used by the trace renderer.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::PortEnqueue => "port.enqueue",
            EventKind::PortDequeue => "port.dequeue",
            EventKind::HandlerStart => "handler.start",
            EventKind::HandlerEnd => "handler.end",
            EventKind::HandlerPanic => "handler.panic",
            EventKind::BufferDrop => "buffer.drop",
            EventKind::ScopeEnter => "scope.enter",
            EventKind::ScopeExit => "scope.exit",
            EventKind::ScopeReclaim => "scope.reclaim",
            EventKind::PoolAcquire => "pool.acquire",
            EventKind::PoolRelease => "pool.release",
            EventKind::GiopRequest => "giop.request",
            EventKind::GiopReply => "giop.reply",
            EventKind::PriorityInherit => "prio.inherit",
            EventKind::RemoteRetry => "remote.retry",
            EventKind::RemoteReconnect => "remote.reconnect",
            EventKind::RemoteShed => "remote.shed",
            EventKind::RemoteDeadlineMiss => "remote.deadline_miss",
            EventKind::SpanEnqueue => "span.enqueue",
            EventKind::SpanDequeue => "span.dequeue",
            EventKind::SpanEnd => "span.end",
            EventKind::SpanRemoteSend => "span.remote_send",
            EventKind::SpanRemoteRecv => "span.remote_recv",
            EventKind::PortShed => "port.shed",
            EventKind::MemberSuspect => "member.suspect",
            EventKind::MemberDown => "member.down",
            EventKind::MemberAlive => "member.alive",
            EventKind::FailoverStart => "failover.start",
            EventKind::FailoverComplete => "failover.complete",
            EventKind::NamingRebind => "naming.rebind",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotone across all threads).
    pub seq: u64,
    /// Nanoseconds since the observer's epoch.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Entity the event is about (port, region, pool, operation).
    pub subject: u32,
    /// Kind-specific payload word.
    pub payload: u64,
    /// Packed span context ([`SpanCtx::pack`](crate::SpanCtx::pack));
    /// `0` when the event happened outside any trace.
    pub span: u64,
}
