//! Preallocated metrics registry: atomic counters, gauges with
//! high-water marks, and fixed-bucket log-scale latency histograms.
//!
//! All slot storage is allocated once when the registry is built.
//! Registration (name → id) is the cold path and takes a mutex;
//! every hot operation — `add`, `set`, `observe` — is a pure atomic
//! access into a preallocated slice: no locks, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Handle to a monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u16);

/// Handle to a gauge (current value + high-water mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u16);

/// Handle to a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u16);

/// Histogram bucket layout: values below [`LINEAR_CUTOFF`] get one
/// bucket each; above that, each power-of-two major range is split into
/// 8 minor buckets, bounding the relative quantile error at 12.5%.
const LINEAR_CUTOFF: u64 = 8;
/// Major ranges cover 2^3 … 2^63.
const MAJORS: usize = 61;
/// Total bucket count: 8 linear + 61 majors × 8 minors.
pub(crate) const BUCKETS: usize = LINEAR_CUTOFF as usize + MAJORS * 8;

fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let minor = ((v >> (msb - 3)) & 7) as usize;
    let idx = 8 + (msb - 3) * 8 + minor;
    idx.min(BUCKETS - 1)
}

/// Midpoint of the bucket's value range — the representative value
/// reported for percentiles.
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let major = (idx - 8) / 8 + 3;
    let minor = ((idx - 8) % 8) as u64;
    let width = 1u64 << (major - 3);
    let lower = (8 + minor) << (major - 3);
    lower + width / 2
}

struct Hist {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Point-in-time readout of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Median (bucket midpoint; ≤12.5% relative error).
    pub p50: u64,
    /// 99th percentile (bucket midpoint; ≤12.5% relative error).
    pub p99: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

struct Gauge {
    value: AtomicU64,
    hwm: AtomicU64,
}

/// Fixed-capacity registry of counters, gauges, and histograms.
///
/// Index 0 of every kind is the reserved `_overflow` slot: when a
/// registry is asked for more metrics than it preallocated, the extra
/// registrations all alias slot 0 instead of panicking or allocating.
pub struct Registry {
    counters: Box<[AtomicU64]>,
    gauges: Box<[Gauge]>,
    hists: Box<[Hist]>,
    names: Mutex<Names>,
}

struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    hists: Vec<String>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.names.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &n.counters.len())
            .field("gauges", &n.gauges.len())
            .field("hists", &n.hists.len())
            .finish()
    }
}

impl Registry {
    /// Builds a registry with the given slot capacities (each raised by
    /// one for the reserved overflow slot). All storage — including
    /// every histogram's bucket array — is allocated here, once.
    pub fn with_capacity(counters: usize, gauges: usize, hists: usize) -> Registry {
        let overflow = "_overflow".to_string();
        Registry {
            counters: (0..counters + 1).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..gauges + 1)
                .map(|_| Gauge {
                    value: AtomicU64::new(0),
                    hwm: AtomicU64::new(0),
                })
                .collect(),
            hists: (0..hists + 1).map(|_| Hist::new()).collect(),
            names: Mutex::new(Names {
                counters: vec![overflow.clone()],
                gauges: vec![overflow.clone()],
                hists: vec![overflow],
            }),
        }
    }

    fn intern(names: &mut Vec<String>, cap: usize, name: &str) -> u16 {
        if let Some(i) = names.iter().position(|n| n == name) {
            return i as u16;
        }
        if names.len() >= cap {
            return 0; // overflow slot
        }
        names.push(name.to_string());
        (names.len() - 1) as u16
    }

    /// Registers (or finds) a counter by name. Cold path.
    pub fn counter(&self, name: &str) -> CounterId {
        let mut n = self.names.lock().unwrap();
        CounterId(Self::intern(&mut n.counters, self.counters.len(), name))
    }

    /// Registers (or finds) a gauge by name. Cold path.
    pub fn gauge(&self, name: &str) -> GaugeId {
        let mut n = self.names.lock().unwrap();
        GaugeId(Self::intern(&mut n.gauges, self.gauges.len(), name))
    }

    /// Registers (or finds) a histogram by name. Cold path.
    pub fn histogram(&self, name: &str) -> HistId {
        let mut n = self.names.lock().unwrap();
        HistId(Self::intern(&mut n.hists, self.hists.len(), name))
    }

    /// Adds to a counter. Hot path: one atomic add.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].load(Ordering::Relaxed)
    }

    /// Increments a gauge, updating its high-water mark.
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, n: u64) {
        let g = &self.gauges[id.0 as usize];
        let now = g.value.fetch_add(n, Ordering::Relaxed) + n;
        g.hwm.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrements a gauge (saturating at zero in aggregate use).
    #[inline]
    pub fn gauge_sub(&self, id: GaugeId, n: u64) {
        self.gauges[id.0 as usize]
            .value
            .fetch_sub(n, Ordering::Relaxed);
    }

    /// Sets a gauge, updating its high-water mark.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        let g = &self.gauges[id.0 as usize];
        g.value.store(v, Ordering::Relaxed);
        g.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Raises a gauge's high-water mark without touching its value
    /// (for sampled depths where only the peak matters).
    #[inline]
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.gauges[id.0 as usize]
            .hwm
            .fetch_max(v, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0 as usize].value.load(Ordering::Relaxed)
    }

    /// Highest value the gauge has reached.
    pub fn gauge_hwm(&self, id: GaugeId) -> u64 {
        self.gauges[id.0 as usize].hwm.load(Ordering::Relaxed)
    }

    /// Records one observation (typically nanoseconds). Hot path: four
    /// atomic RMWs into preallocated storage.
    #[inline]
    pub fn observe(&self, id: HistId, v: u64) {
        let h = &self.hists[id.0 as usize];
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Computes count/sum/p50/p99/max for a histogram.
    pub fn hist_snapshot(&self, id: HistId) -> HistSnapshot {
        let h = &self.hists[id.0 as usize];
        let count = h.count.load(Ordering::Relaxed);
        let mut snap = HistSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            ..Default::default()
        };
        if count == 0 {
            return snap;
        }
        let rank50 = count.div_ceil(2);
        let rank99 = (count * 99).div_ceil(100);
        let mut seen = 0;
        for (i, b) in h.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if before < rank50 && rank50 <= seen {
                snap.p50 = bucket_mid(i);
            }
            if before < rank99 && rank99 <= seen {
                snap.p99 = bucket_mid(i);
            }
            if seen >= count {
                break;
            }
        }
        // The top bucket's midpoint can overshoot the true maximum;
        // clamp the percentiles to the exact max we tracked.
        snap.p50 = snap.p50.min(snap.max);
        snap.p99 = snap.p99.min(snap.max);
        snap
    }

    /// Visits every registered metric (skipping the reserved overflow
    /// slots unless they were actually hit), in registration order.
    pub fn for_each(
        &self,
        mut on_counter: impl FnMut(&str, u64),
        mut on_gauge: impl FnMut(&str, u64, u64),
        mut on_hist: impl FnMut(&str, HistSnapshot),
    ) {
        let names = self.names.lock().unwrap();
        for (i, name) in names.counters.iter().enumerate() {
            let v = self.counters[i].load(Ordering::Relaxed);
            if i > 0 || v > 0 {
                on_counter(name, v);
            }
        }
        for (i, name) in names.gauges.iter().enumerate() {
            let g = &self.gauges[i];
            let (v, hwm) = (
                g.value.load(Ordering::Relaxed),
                g.hwm.load(Ordering::Relaxed),
            );
            if i > 0 || hwm > 0 {
                on_gauge(name, v, hwm);
            }
        }
        for (i, name) in names.hists.iter().enumerate() {
            let snap = self.hist_snapshot(HistId(i as u16));
            if i > 0 || snap.count > 0 {
                on_hist(name, snap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0;
        for shift in 0..60 {
            let v = 1u64 << shift;
            let b = bucket_of(v);
            assert!(b >= last, "bucket must not decrease");
            assert!(b < BUCKETS);
            last = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(7), 7);
    }

    #[test]
    fn bucket_mid_brackets_the_value() {
        for v in [1u64, 9, 100, 1_000, 123_456, 9_999_999, u64::MAX / 3] {
            let mid = bucket_mid(bucket_of(v));
            let err = mid.abs_diff(v) as f64 / v as f64;
            assert!(err <= 0.125, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn counters_and_gauges() {
        let r = Registry::with_capacity(4, 4, 4);
        let c = r.counter("x");
        assert_eq!(r.counter("x"), c, "registration is idempotent");
        r.add(c, 3);
        r.add(c, 2);
        assert_eq!(r.counter_value(c), 5);

        let g = r.gauge("depth");
        r.gauge_add(g, 4);
        r.gauge_sub(g, 1);
        r.gauge_add(g, 1);
        assert_eq!(r.gauge_value(g), 4);
        assert_eq!(r.gauge_hwm(g), 4);
    }

    #[test]
    fn overflow_aliases_slot_zero() {
        let r = Registry::with_capacity(1, 1, 1);
        let a = r.counter("a");
        let b = r.counter("b"); // over capacity
        assert_ne!(a.0, 0);
        assert_eq!(b.0, 0);
        r.add(b, 1); // must not panic
    }

    #[test]
    fn empty_histogram_snapshot() {
        let r = Registry::with_capacity(1, 1, 1);
        let h = r.histogram("lat");
        let s = r.hist_snapshot(h);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.max, 0);
    }
}
