//! # rtobs — zero-steady-state-allocation observability
//!
//! The Compadres paper (Hu et al., MIDDLEWARE 2007) evaluates the
//! framework purely from the outside — latency and jitter tables. This
//! crate gives the reproduction a view from the *inside* without
//! betraying the property those tables measure: once an [`Observer`] is
//! built, the instrumented hot paths allocate nothing and take no locks,
//! matching the RTSJ no-GC-in-steady-state discipline.
//!
//! Three pieces:
//!
//! * [`Journal`] — a lock-free fixed-capacity ring of typed [`Event`]s
//!   (the "flight recorder"): message lifecycle, scope lifecycle, pool
//!   leases, GIOP round trips, priority inheritance;
//! * [`Registry`] — preallocated atomic counters, gauges with high-water
//!   marks, and log-scale latency histograms with p50/p99/max readouts;
//! * text exporters — [`Observer::metrics_text`] (Prometheus-style
//!   exposition), [`Observer::report`] (human summary), and
//!   [`Observer::trace_text`] (rendered flight-recorder tail).
//!
//! The crate is deliberately `std`-only and dependency-free.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod event;
mod export;
mod journal;
mod metrics;
pub mod span;

pub use event::{Event, EventKind};
pub use export::SpanForest;
pub use journal::Journal;
pub use metrics::{CounterId, GaugeId, HistId, HistSnapshot, Registry};
pub use span::SpanCtx;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Capacity defaults, tuned for a mid-sized assembly. Entities are
/// ports + pools + operations, all registered at build time.
const DEFAULT_EVENTS: usize = 4096;
const DEFAULT_COUNTERS: usize = 128;
const DEFAULT_GAUGES: usize = 128;
const DEFAULT_HISTS: usize = 64;

/// One observability domain: a flight recorder plus a metrics registry
/// sharing an epoch and an entity-name table.
///
/// Build one per [`App`](../compadres_core) (the builder does this),
/// share it by `Arc`, and read it whenever — readers never disturb
/// writers. [`Observer::set_enabled`] gates the journal and histogram
/// writes so overhead can be measured against a disabled baseline.
pub struct Observer {
    enabled: AtomicBool,
    verbose: AtomicBool,
    tracing: AtomicBool,
    epoch: Instant,
    journal: Journal,
    registry: Registry,
    entities: Mutex<Vec<String>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled())
            .field("journal", &self.journal)
            .field("registry", &self.registry)
            .finish()
    }
}

impl Observer {
    /// Builds an observer with default capacities.
    pub fn new() -> Arc<Observer> {
        Observer::with_capacity(
            DEFAULT_EVENTS,
            DEFAULT_COUNTERS,
            DEFAULT_GAUGES,
            DEFAULT_HISTS,
        )
    }

    /// Builds an observer sized explicitly: `events` journal slots and
    /// per-kind metric capacities. Every byte of hot-path storage is
    /// allocated here.
    pub fn with_capacity(
        events: usize,
        counters: usize,
        gauges: usize,
        hists: usize,
    ) -> Arc<Observer> {
        Arc::new(Observer {
            enabled: AtomicBool::new(true),
            verbose: AtomicBool::new(false),
            tracing: AtomicBool::new(true),
            epoch: Instant::now(),
            journal: Journal::with_capacity(events),
            registry: Registry::with_capacity(counters, gauges, hists),
            entities: Mutex::new(vec!["?".to_string()]),
        })
    }

    /// Nanoseconds since this observer was created. Saturates at
    /// `u64::MAX` (584 years of uptime).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Whether journal and histogram writes are currently recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event/histogram recording on or off. Counters and gauges
    /// keep counting either way — they back `AppStats`-style
    /// accounting that must stay truthful.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether high-frequency detail events (per-entry scope
    /// enter/exit, per-exit scope reclaims) are recorded. Off by
    /// default: a scope entry costs a few hundred nanoseconds of real
    /// work, so stamping and journaling every one would not fit the <5%
    /// overhead budget on the message-passing hot path. Cold lifecycle
    /// events (scope destruction, pool leases, port and handler events)
    /// are always recorded.
    #[inline]
    pub fn verbose(&self) -> bool {
        self.enabled() && self.verbose.load(Ordering::Relaxed)
    }

    /// Opts into high-frequency detail events ([`Observer::verbose`]).
    pub fn set_verbose(&self, on: bool) {
        self.verbose.store(on, Ordering::Relaxed);
    }

    /// Whether causal tracing is active: new root spans are minted at
    /// ingress and span events are journaled. On by default; gated
    /// behind [`Observer::enabled`] like every journal write.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.enabled() && self.tracing.load(Ordering::Relaxed)
    }

    /// Turns causal tracing on or off independently of the journal.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    // ---- entities ------------------------------------------------------

    /// Interns a named entity (port, pool, region group, operation) and
    /// returns its id for use as an event subject. Cold path.
    pub fn register_entity(&self, name: &str) -> u32 {
        let mut e = self.entities.lock().unwrap();
        if let Some(i) = e.iter().position(|n| n == name) {
            return i as u32;
        }
        e.push(name.to_string());
        (e.len() - 1) as u32
    }

    /// Resolves an entity id back to its name (`"?"` if unknown).
    pub fn entity_name(&self, id: u32) -> String {
        let e = self.entities.lock().unwrap();
        e.get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{id}"))
    }

    // ---- flight recorder ----------------------------------------------

    /// Records an event stamped with [`Observer::now_ns`] and the
    /// thread's current span context (so retries, sheds and drops that
    /// happen mid-trace come out attributable). Lock-free and
    /// allocation-free; a no-op when disabled.
    #[inline]
    pub fn record(&self, kind: EventKind, subject: u32, payload: u64) {
        if self.enabled() {
            self.journal.record_with_span(
                kind,
                subject,
                payload,
                self.now_ns(),
                span::current().pack(),
            );
        }
    }

    /// Records an event with an explicit timestamp (for callers that
    /// already read the clock); span-stamped like [`Observer::record`].
    #[inline]
    pub fn record_at(&self, kind: EventKind, subject: u32, payload: u64, t_ns: u64) {
        if self.enabled() {
            self.journal
                .record_with_span(kind, subject, payload, t_ns, span::current().pack());
        }
    }

    /// Records an event about a specific span (rather than whatever is
    /// installed on the current thread). Used by the dispatch layer
    /// where the envelope carries the authoritative context.
    #[inline]
    pub fn record_span(&self, kind: EventKind, subject: u32, payload: u64, span: SpanCtx) {
        if self.enabled() {
            self.journal
                .record_with_span(kind, subject, payload, self.now_ns(), span.pack());
        }
    }

    /// Records a high-frequency detail event; a no-op unless
    /// [`Observer::set_verbose`] opted in.
    #[inline]
    pub fn record_verbose(&self, kind: EventKind, subject: u32, payload: u64) {
        if self.verbose() {
            self.journal.record_with_span(
                kind,
                subject,
                payload,
                self.now_ns(),
                span::current().pack(),
            );
        }
    }

    // ---- causal tracing ------------------------------------------------

    /// Mints a root span for a fresh trace. `budget_ns` converts to an
    /// absolute deadline against this observer's clock (`None` = no
    /// deadline). Allocation-free: two atomic `fetch_add`s.
    #[inline]
    pub fn new_trace(&self, budget_ns: Option<u64>) -> SpanCtx {
        SpanCtx {
            trace_id: span::alloc_trace_id(),
            span_id: span::alloc_span_id(),
            parent: 0,
            deadline_ns: budget_ns.map_or(0, |b| self.now_ns().saturating_add(b)),
        }
    }

    /// Mints a child span of `parent`: same trace, same deadline, new
    /// hop id. Returns [`SpanCtx::NONE`] if the parent is inactive.
    #[inline]
    pub fn child_span(&self, parent: SpanCtx) -> SpanCtx {
        if !parent.is_active() {
            return SpanCtx::NONE;
        }
        SpanCtx {
            trace_id: parent.trace_id,
            span_id: span::alloc_span_id(),
            parent: parent.span_id,
            deadline_ns: parent.deadline_ns,
        }
    }

    /// Adopts a trace context received from a remote peer: keeps the
    /// sender's `trace_id` and parent span id, mints a local hop id,
    /// and re-anchors the remaining `budget_ns` against this
    /// observer's clock (`0` = no deadline). Clocks never cross the
    /// wire — only budgets do.
    #[inline]
    pub fn adopt_remote(&self, trace_id: u32, parent_span: u16, budget_ns: u64) -> SpanCtx {
        if trace_id == 0 {
            return SpanCtx::NONE;
        }
        SpanCtx {
            trace_id,
            span_id: span::alloc_span_id(),
            parent: parent_span,
            deadline_ns: if budget_ns == 0 {
                0
            } else {
                self.now_ns().saturating_add(budget_ns)
            },
        }
    }

    /// Remaining deadline budget of `span` as of now, as `i64` bits:
    /// negative = overrun, `i64::MIN` = the span carries no deadline.
    #[inline]
    pub fn budget_remaining(&self, span: SpanCtx) -> i64 {
        if span.deadline_ns == 0 {
            return i64::MIN;
        }
        let now = self.now_ns();
        if span.deadline_ns >= now {
            (span.deadline_ns - now).min(i64::MAX as u64) as i64
        } else {
            -((now - span.deadline_ns).min(i64::MAX as u64) as i64)
        }
    }

    /// Consistent snapshot of the journal, oldest event first.
    pub fn events(&self) -> Vec<Event> {
        self.journal.snapshot()
    }

    /// The underlying journal (capacity, drop counts).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    // ---- metrics -------------------------------------------------------

    /// Registers (or finds) a counter. Cold path.
    pub fn counter(&self, name: &str) -> CounterId {
        self.registry.counter(name)
    }

    /// Registers (or finds) a gauge. Cold path.
    pub fn gauge(&self, name: &str) -> GaugeId {
        self.registry.gauge(name)
    }

    /// Registers (or finds) a histogram. Cold path.
    pub fn histogram(&self, name: &str) -> HistId {
        self.registry.histogram(name)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.registry.add(id, 1);
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.registry.add(id, n);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.registry.counter_value(id)
    }

    /// Increments a gauge (tracks the high-water mark).
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, n: u64) {
        self.registry.gauge_add(id, n);
    }

    /// Decrements a gauge.
    #[inline]
    pub fn gauge_sub(&self, id: GaugeId, n: u64) {
        self.registry.gauge_sub(id, n);
    }

    /// Sets a gauge (tracks the high-water mark).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        self.registry.gauge_set(id, v);
    }

    /// Raises a gauge's high-water mark only.
    #[inline]
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.registry.gauge_max(id, v);
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.registry.gauge_value(id)
    }

    /// Gauge high-water mark.
    pub fn gauge_hwm(&self, id: GaugeId) -> u64 {
        self.registry.gauge_hwm(id)
    }

    /// Records a histogram observation; a no-op when disabled.
    #[inline]
    pub fn observe(&self, id: HistId, v: u64) {
        if self.enabled() {
            self.registry.observe(id, v);
        }
    }

    /// Histogram readout (count, sum, p50, p99, max).
    pub fn hist_snapshot(&self, id: HistId) -> HistSnapshot {
        self.registry.hist_snapshot(id)
    }

    /// The underlying registry, for bulk export.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entities_intern_idempotently() {
        let obs = Observer::new();
        let a = obs.register_entity("station.acq.in");
        let b = obs.register_entity("station.acq.in");
        assert_eq!(a, b);
        assert_eq!(obs.entity_name(a), "station.acq.in");
        assert_eq!(obs.entity_name(9999), "#9999");
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = Observer::new();
        obs.set_enabled(false);
        obs.record(EventKind::PortEnqueue, 1, 0);
        let h = obs.histogram("x");
        obs.observe(h, 100);
        assert!(obs.events().is_empty());
        assert_eq!(obs.hist_snapshot(h).count, 0);
        // Counters stay truthful even when disabled.
        let c = obs.counter("sent");
        obs.inc(c);
        assert_eq!(obs.counter_value(c), 1);
    }

    #[test]
    fn verbose_events_are_opt_in() {
        let obs = Observer::new();
        obs.record_verbose(EventKind::ScopeEnter, 3, 0);
        assert!(obs.events().is_empty(), "verbose events off by default");
        obs.set_verbose(true);
        obs.record_verbose(EventKind::ScopeEnter, 3, 0);
        assert_eq!(obs.events().len(), 1);
        // Disabling the observer overrides verbose.
        obs.set_enabled(false);
        obs.record_verbose(EventKind::ScopeExit, 3, 0);
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn clock_is_monotone() {
        let obs = Observer::new();
        let a = obs.now_ns();
        let b = obs.now_ns();
        assert!(b >= a);
    }
}
