//! Lock-free fixed-capacity event journal (the "flight recorder").
//!
//! A power-of-two ring of slots, each slot five `AtomicU64` words. The
//! write path is wait-free in the common case and never blocks, never
//! allocates, and never takes a lock — honoring the paper's RTSJ
//! no-allocation-in-steady-state discipline for the instrumented hot
//! paths:
//!
//! 1. claim a global sequence number with `fetch_add`;
//! 2. CAS the slot's tag from its previous *published* (even) value to
//!    the odd in-progress value `2·seq + 1`;
//! 3. write the three payload words;
//! 4. publish with a release store of the even tag `2·seq + 2`.
//!
//! A writer that finds the slot still odd (the previous-lap writer is
//! mid-write) retries the CAS a bounded number of times and then drops
//! the event, incrementing [`Journal::dropped`] — losing a trace event
//! under extreme contention is acceptable; stalling a real-time thread
//! is not. Because claims come from `fetch_add`, two writers never hold
//! the same sequence, and because a claim only succeeds from an *even*
//! tag, a published event can never be half-overwritten: readers
//! validate with the classic seqlock check (tag even and unchanged
//! across the payload reads), so torn events are impossible to observe.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{Event, EventKind};

/// How many times a writer retries the claim CAS before dropping.
const CLAIM_SPINS: u32 = 64;

struct Slot {
    /// `0` = never written; odd = write in progress; even `2·seq+2` =
    /// event `seq` published.
    tag: AtomicU64,
    /// `(kind as u64) << 32 | subject`.
    kind_subject: AtomicU64,
    /// Nanoseconds since the observer epoch.
    t_ns: AtomicU64,
    /// Kind-specific payload.
    payload: AtomicU64,
    /// Packed span context (`SpanCtx::pack`); `0` = no trace.
    span: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            kind_subject: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            payload: AtomicU64::new(0),
            span: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity lock-free ring of typed events.
pub struct Journal {
    slots: Box<[Slot]>,
    mask: u64,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Journal {
    /// Creates a journal holding the most recent `capacity` events.
    /// `capacity` is rounded up to a power of two (minimum 8). All
    /// storage is allocated here, once.
    pub fn with_capacity(capacity: usize) -> Journal {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        Journal {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events successfully recorded (monotone; includes events
    /// since overwritten by newer laps).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - self.dropped()
    }

    /// Events abandoned because a slot stayed contended past the retry
    /// budget.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event with no span attribution. Lock-free,
    /// allocation-free; drops the event (and counts the drop) rather
    /// than ever blocking.
    pub fn record(&self, kind: EventKind, subject: u32, payload: u64, t_ns: u64) {
        self.record_with_span(kind, subject, payload, t_ns, 0);
    }

    /// Records one event carrying a packed span word
    /// ([`SpanCtx::pack`](crate::SpanCtx::pack); `0` = no trace).
    /// Lock-free, allocation-free; drops the event (and counts the
    /// drop) rather than ever blocking.
    pub fn record_with_span(
        &self,
        kind: EventKind,
        subject: u32,
        payload: u64,
        t_ns: u64,
        span: u64,
    ) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let claim = 2 * seq + 1;

        let mut spins = 0;
        loop {
            let cur = slot.tag.load(Ordering::Acquire);
            // Even and older than our claim: the slot is quiescent and
            // ours to take (any even value, so a slot whose previous
            // writer dropped is not poisoned for later laps). Anything
            // >= our claim means a full lap overtook us while we
            // stalled — our event is stale, drop it.
            if cur >= claim {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if cur & 1 == 0
                && slot
                    .tag
                    .compare_exchange_weak(cur, claim, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            spins += 1;
            if spins > CLAIM_SPINS {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            std::hint::spin_loop();
        }

        slot.kind_subject
            .store((kind as u64) << 32 | u64::from(subject), Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.span.store(span, Ordering::Relaxed);
        slot.tag.store(claim + 1, Ordering::Release);
    }

    /// Takes a consistent snapshot of every currently-published event,
    /// oldest first. This is the cold read path: it allocates and may
    /// retry slots that are being rewritten while it looks.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // Seqlock read: valid iff the tag is even, nonzero, and
            // unchanged across the payload reads.
            for _ in 0..CLAIM_SPINS {
                let t1 = slot.tag.load(Ordering::SeqCst);
                if t1 == 0 {
                    break; // never written
                }
                if t1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress, retry
                }
                let ks = slot.kind_subject.load(Ordering::SeqCst);
                let t_ns = slot.t_ns.load(Ordering::SeqCst);
                let payload = slot.payload.load(Ordering::SeqCst);
                let span = slot.span.load(Ordering::SeqCst);
                let t2 = slot.tag.load(Ordering::SeqCst);
                if t1 != t2 {
                    continue; // overwritten under us, retry
                }
                if let Some(kind) = EventKind::from_u32((ks >> 32) as u32) {
                    out.push(Event {
                        seq: (t1 - 2) / 2,
                        t_ns,
                        kind,
                        subject: ks as u32,
                        payload,
                        span,
                    });
                }
                break;
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Journal::with_capacity(0).capacity(), 8);
        assert_eq!(Journal::with_capacity(100).capacity(), 128);
        assert_eq!(Journal::with_capacity(256).capacity(), 256);
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let j = Journal::with_capacity(16);
        for i in 0..10u64 {
            j.record(EventKind::PortEnqueue, i as u32, i * 10, i);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.subject, i as u32);
            assert_eq!(e.payload, i as u64 * 10);
            assert_eq!(e.kind, EventKind::PortEnqueue);
        }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let j = Journal::with_capacity(8);
        for i in 0..20u64 {
            j.record(EventKind::ScopeEnter, 0, i, i);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(j.dropped(), 0);
    }
}
