//! Text exporters: Prometheus-style exposition, a human-readable
//! report, and a rendered flight-recorder trace. All of these are cold
//! read paths and may allocate freely.

use std::fmt::Write as _;

use crate::{EventKind, Observer};

impl Observer {
    /// Prometheus-style exposition of every registered metric.
    ///
    /// Counters export as `name value`; gauges as `name` plus
    /// `name_hwm`; histograms as `name_count`, `name_sum`,
    /// `name{quantile="0.5"|"0.99"}`, and `name_max`.
    pub fn metrics_text(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        self.registry().for_each(
            |name, v| {
                let _ = writeln!(counters, "# TYPE {name} counter\n{name} {v}");
            },
            |name, v, hwm| {
                let _ = writeln!(gauges, "# TYPE {name} gauge\n{name} {v}\n{name}_hwm {hwm}");
            },
            |name, s| {
                let _ = writeln!(
                    hists,
                    "# TYPE {name} summary\n\
                     {name}_count {}\n\
                     {name}_sum {}\n\
                     {name}{{quantile=\"0.5\"}} {}\n\
                     {name}{{quantile=\"0.99\"}} {}\n\
                     {name}_max {}",
                    s.count, s.sum, s.p50, s.p99, s.max
                );
            },
        );
        let mut out = counters;
        out.push_str(&gauges);
        out.push_str(&hists);
        let _ = writeln!(
            out,
            "# TYPE rtobs_journal_recorded counter\nrtobs_journal_recorded {}",
            self.journal().recorded()
        );
        let _ = writeln!(
            out,
            "# TYPE rtobs_journal_dropped counter\nrtobs_journal_dropped {}",
            self.journal().dropped()
        );
        out
    }

    /// Human-readable summary of every registered metric — the
    /// replacement for the old ad-hoc `memory_report` string.
    pub fn report(&self) -> String {
        let mut out = String::from("== observer report ==\n");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        self.registry().for_each(
            |name, v| {
                let _ = writeln!(counters, "  {name:<44} {v}");
            },
            |name, v, hwm| {
                let _ = writeln!(gauges, "  {name:<44} {v} (hwm {hwm})");
            },
            |name, s| {
                let _ = writeln!(
                    hists,
                    "  {name:<44} n={} p50={}ns p99={}ns max={}ns mean={}ns",
                    s.count,
                    s.p50,
                    s.p99,
                    s.max,
                    s.mean()
                );
            },
        );
        if !counters.is_empty() {
            out.push_str("counters:\n");
            out.push_str(&counters);
        }
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            out.push_str(&gauges);
        }
        if !hists.is_empty() {
            out.push_str("histograms:\n");
            out.push_str(&hists);
        }
        let _ = writeln!(
            out,
            "journal: {} recorded, {} dropped, capacity {}",
            self.journal().recorded(),
            self.journal().dropped(),
            self.journal().capacity()
        );
        out
    }

    /// Renders the newest `n` flight-recorder events, oldest first:
    /// `[t_ns] kind subject payload`.
    pub fn trace_text(&self, n: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(n);
        let mut out = String::new();
        for e in &events[skip..] {
            // Scope events carry a raw region index, not an entity id.
            let subject = match e.kind {
                EventKind::ScopeEnter | EventKind::ScopeExit | EventKind::ScopeReclaim => {
                    format!("region:{}", e.subject)
                }
                _ => self.entity_name(e.subject),
            };
            let payload = match e.kind {
                EventKind::PortDequeue | EventKind::HandlerEnd | EventKind::GiopReply => {
                    format!("{}ns", e.payload)
                }
                _ => e.payload.to_string(),
            };
            let _ = writeln!(
                out,
                "[{:>12}ns] #{:<6} {:<14} {:<28} {payload}",
                e.t_ns,
                e.seq,
                e.kind.label(),
                subject
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{EventKind, Observer};

    #[test]
    fn metrics_text_has_all_kinds() {
        let obs = Observer::new();
        let c = obs.counter("demo_total");
        obs.add(c, 7);
        let g = obs.gauge("demo_depth");
        obs.gauge_add(g, 3);
        let h = obs.histogram("demo_lat_ns");
        obs.observe(h, 1000);
        obs.observe(h, 2000);
        let text = obs.metrics_text();
        assert!(text.contains("demo_total 7"));
        assert!(text.contains("demo_depth 3"));
        assert!(text.contains("demo_depth_hwm 3"));
        assert!(text.contains("demo_lat_ns_count 2"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("rtobs_journal_recorded"));
    }

    #[test]
    fn trace_renders_entity_names() {
        let obs = Observer::new();
        let port = obs.register_entity("station.acq.readings");
        obs.record(EventKind::PortEnqueue, port, 5);
        obs.record(EventKind::PortDequeue, port, 1234);
        let trace = obs.trace_text(10);
        assert!(trace.contains("port.enqueue"));
        assert!(trace.contains("station.acq.readings"));
        assert!(trace.contains("1234ns"));
    }

    #[test]
    fn report_mentions_journal() {
        let obs = Observer::new();
        assert!(obs.report().contains("journal:"));
    }
}
