//! Text exporters: Prometheus-style exposition, a human-readable
//! report, a rendered flight-recorder trace, and the cold-path span
//! reconstructor ([`SpanForest`]) that stitches journal entries into
//! causal trees with per-hop queue-wait/run splits and deadline-budget
//! accounting. All of these are cold read paths and may allocate
//! freely.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Event, EventKind, Observer, SpanCtx};

impl Observer {
    /// Prometheus-style exposition of every registered metric.
    ///
    /// Counters export as `name value`; gauges as `name` plus
    /// `name_hwm`; histograms as `name_count`, `name_sum`,
    /// `name{quantile="0.5"|"0.99"}`, and `name_max`.
    pub fn metrics_text(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        self.registry().for_each(
            |name, v| {
                let _ = writeln!(counters, "# TYPE {name} counter\n{name} {v}");
            },
            |name, v, hwm| {
                let _ = writeln!(gauges, "# TYPE {name} gauge\n{name} {v}\n{name}_hwm {hwm}");
            },
            |name, s| {
                let _ = writeln!(
                    hists,
                    "# TYPE {name} summary\n\
                     {name}_count {}\n\
                     {name}_sum {}\n\
                     {name}{{quantile=\"0.5\"}} {}\n\
                     {name}{{quantile=\"0.99\"}} {}\n\
                     {name}_max {}",
                    s.count, s.sum, s.p50, s.p99, s.max
                );
            },
        );
        let mut out = counters;
        out.push_str(&gauges);
        out.push_str(&hists);
        let _ = writeln!(
            out,
            "# TYPE rtobs_journal_recorded counter\nrtobs_journal_recorded {}",
            self.journal().recorded()
        );
        let _ = writeln!(
            out,
            "# TYPE rtobs_journal_dropped counter\nrtobs_journal_dropped {}",
            self.journal().dropped()
        );
        out
    }

    /// Human-readable summary of every registered metric — the
    /// replacement for the old ad-hoc `memory_report` string.
    pub fn report(&self) -> String {
        let mut out = String::from("== observer report ==\n");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        self.registry().for_each(
            |name, v| {
                let _ = writeln!(counters, "  {name:<44} {v}");
            },
            |name, v, hwm| {
                let _ = writeln!(gauges, "  {name:<44} {v} (hwm {hwm})");
            },
            |name, s| {
                let _ = writeln!(
                    hists,
                    "  {name:<44} n={} p50={}ns p99={}ns max={}ns mean={}ns",
                    s.count,
                    s.p50,
                    s.p99,
                    s.max,
                    s.mean()
                );
            },
        );
        if !counters.is_empty() {
            out.push_str("counters:\n");
            out.push_str(&counters);
        }
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            out.push_str(&gauges);
        }
        if !hists.is_empty() {
            out.push_str("histograms:\n");
            out.push_str(&hists);
        }
        let _ = writeln!(
            out,
            "journal: {} recorded, {} dropped, capacity {}",
            self.journal().recorded(),
            self.journal().dropped(),
            self.journal().capacity()
        );
        out
    }

    /// Renders the newest `n` flight-recorder events in strict
    /// sequence-number order (oldest first), prefixed by a header
    /// stating how much of the record survives: total recorded, how
    /// many are shown, and the drop count. A lapped ring therefore
    /// never interleaves old and new entries, and a seq gap between
    /// adjacent lines is called out explicitly.
    pub fn trace_text(&self, n: usize) -> String {
        let events = self.events(); // snapshot() sorts by seq
        let skip = events.len().saturating_sub(n);
        let shown = &events[skip..];
        let mut out = format!(
            "== trace tail: showing {} of {} recorded ({} dropped) ==\n",
            shown.len(),
            self.journal().recorded(),
            self.journal().dropped()
        );
        let mut prev_seq: Option<u64> = None;
        for e in shown {
            if let Some(p) = prev_seq {
                if e.seq > p + 1 {
                    let _ = writeln!(out, "  ... {} event(s) overwritten ...", e.seq - p - 1);
                }
            }
            prev_seq = Some(e.seq);
            // Scope events carry a raw region index, not an entity id.
            let subject = match e.kind {
                EventKind::ScopeEnter | EventKind::ScopeExit | EventKind::ScopeReclaim => {
                    format!("region:{}", e.subject)
                }
                _ => self.entity_name(e.subject),
            };
            let payload = match e.kind {
                EventKind::PortDequeue
                | EventKind::HandlerEnd
                | EventKind::GiopReply
                | EventKind::SpanDequeue => {
                    format!("{}ns", e.payload)
                }
                EventKind::SpanEnd => format!("left={}ns", fmt_budget(e.payload as i64)),
                _ => e.payload.to_string(),
            };
            let span = if e.span != 0 {
                let s = SpanCtx::unpack(e.span);
                format!("  T{:08x}/S{}<-{}", s.trace_id, s.span_id, s.parent)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "[{:>12}ns] #{:<6} {:<16} {:<28} {payload}{span}",
                e.t_ns,
                e.seq,
                e.kind.label(),
                subject
            );
        }
        out
    }

    /// Reconstructs the span forest from this observer's journal and
    /// renders it as a human-readable tree (see [`SpanForest::render`]).
    pub fn trace_tree(&self) -> String {
        SpanForest::from_observer(self).render()
    }

    /// Reconstructs the span forest and emits chrome-trace JSON
    /// (`chrome://tracing` / Perfetto `traceEvents` format).
    pub fn trace_json(&self) -> String {
        SpanForest::from_observer(self).chrome_json()
    }
}

/// Budget word → human string: `i64::MIN` is "no deadline".
fn fmt_budget(b: i64) -> String {
    if b == i64::MIN {
        "-".to_string()
    } else {
        b.to_string()
    }
}

/// Nanoseconds → compact human duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One reconstructed hop of a trace.
///
/// Fields are optional because the flight recorder is a lossy ring: a
/// span may surface with only its end event (enqueue overwritten) or
/// only its admission (still in flight).
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Index into [`SpanForest::sources`] — which journal this hop was
    /// recorded in (client process vs. server process, say).
    pub source: usize,
    /// The trace this hop belongs to.
    pub trace_id: u32,
    /// This hop's span id.
    pub span_id: u16,
    /// The causing hop's span id (`0` = root).
    pub parent: u16,
    /// Entity the hop ran at (port, operation, link), if known.
    pub entity: String,
    /// Admission time (local to `source`'s epoch), if recorded.
    pub start_ns: Option<u64>,
    /// Queue wait before a worker picked the hop up; `None` for
    /// sync-dispatched hops (wait ~0) or if the event was lost.
    pub wait_ns: Option<u64>,
    /// Completion time (local to `source`'s epoch), if recorded.
    pub end_ns: Option<u64>,
    /// Deadline budget left at completion (negative = overrun);
    /// `None` if unfinished or the span carried no deadline.
    pub budget_left_ns: Option<i64>,
    /// Budget granted to a remote peer, if this hop crossed a link.
    pub remote_budget_ns: Option<u64>,
    /// Non-span events (retries, sheds, panics, drops) that happened
    /// while this hop was the current context.
    pub notes: Vec<String>,
    /// Indexes of child hops within the forest.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// Total observed duration: end − start when both are known.
    pub fn duration_ns(&self) -> Option<u64> {
        match (self.start_ns, self.end_ns) {
            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
            _ => None,
        }
    }

    /// Handler-run share of the duration (duration minus queue wait).
    pub fn run_ns(&self) -> Option<u64> {
        self.duration_ns()
            .map(|d| d.saturating_sub(self.wait_ns.unwrap_or(0)))
    }

    /// Whether this hop finished past its deadline.
    pub fn overrun(&self) -> bool {
        matches!(self.budget_left_ns, Some(b) if b < 0)
    }
}

/// A forest of reconstructed spans, stitched from one or more journals
/// (cold path — the hot path only ever appends journal words).
///
/// Multi-journal stitching keys spans by `(source, trace_id, span_id)`
/// and resolves parents same-source first, then across sources sharing
/// the `trace_id` — which is exactly how a client-side ORB span links
/// to the server-side handler span it caused.
#[derive(Debug, Default)]
pub struct SpanForest {
    /// Human labels for the stitched journals ("client", "server", …).
    pub sources: Vec<String>,
    nodes: Vec<SpanNode>,
    /// Root node indexes, in first-seen order.
    roots: Vec<usize>,
}

impl SpanForest {
    /// Builds the forest from a single observer's journal.
    pub fn from_observer(obs: &Observer) -> SpanForest {
        SpanForest::from_journals(&[("local", obs)])
    }

    /// Builds the forest by stitching several observers' journals, each
    /// labelled with a node name. Timestamps stay local to each source
    /// (epochs are never compared across sources); causality comes from
    /// the `(trace_id, parent)` links carried on the wire.
    pub fn from_journals(parts: &[(&str, &Observer)]) -> SpanForest {
        let mut forest = SpanForest::default();
        let mut index: HashMap<(usize, u32, u16), usize> = HashMap::new();

        for (source, (label, obs)) in parts.iter().enumerate() {
            forest.sources.push((*label).to_string());
            for e in obs.events() {
                if e.span == 0 {
                    continue;
                }
                let ctx = SpanCtx::unpack(e.span);
                let idx = *index
                    .entry((source, ctx.trace_id, ctx.span_id))
                    .or_insert_with(|| {
                        forest.nodes.push(SpanNode {
                            source,
                            trace_id: ctx.trace_id,
                            span_id: ctx.span_id,
                            parent: ctx.parent,
                            entity: String::new(),
                            start_ns: None,
                            wait_ns: None,
                            end_ns: None,
                            budget_left_ns: None,
                            remote_budget_ns: None,
                            notes: Vec::new(),
                            children: Vec::new(),
                        });
                        forest.nodes.len() - 1
                    });
                forest.apply(idx, &e, obs);
            }
        }

        forest.link(&index);
        forest
    }

    fn apply(&mut self, idx: usize, e: &Event, obs: &Observer) {
        let node = &mut self.nodes[idx];
        match e.kind {
            EventKind::SpanEnqueue => {
                node.start_ns = Some(e.t_ns);
                node.entity = obs.entity_name(e.subject);
            }
            EventKind::SpanDequeue => node.wait_ns = Some(e.payload),
            EventKind::SpanEnd => {
                node.end_ns = Some(e.t_ns);
                if node.entity.is_empty() {
                    node.entity = obs.entity_name(e.subject);
                }
                let left = e.payload as i64;
                if left != i64::MIN {
                    node.budget_left_ns = Some(left);
                }
            }
            EventKind::SpanRemoteSend => {
                node.remote_budget_ns = Some(e.payload);
                node.notes
                    .push(format!("sent remote, granted {}", fmt_ns(e.payload)));
            }
            EventKind::SpanRemoteRecv => {
                if node.entity.is_empty() {
                    node.entity = obs.entity_name(e.subject);
                }
                node.start_ns.get_or_insert(e.t_ns);
                node.notes
                    .push(format!("adopted remote, budget {}", fmt_ns(e.payload)));
            }
            // Any other event stamped with this span context becomes an
            // annotation: this is how fault-layer retries and sheds stay
            // attributable to the invocation that suffered them.
            other => node
                .notes
                .push(format!("{} @{}", other.label(), obs.entity_name(e.subject))),
        }
    }

    /// Resolves parent links: same source first, then any source
    /// sharing the trace id (the cross-process case).
    fn link(&mut self, index: &HashMap<(usize, u32, u16), usize>) {
        let n = self.nodes.len();
        for i in 0..n {
            let (source, trace, parent) = (
                self.nodes[i].source,
                self.nodes[i].trace_id,
                self.nodes[i].parent,
            );
            let parent_idx = if parent == 0 {
                None
            } else if let Some(&p) = index.get(&(source, trace, parent)) {
                Some(p)
            } else {
                (0..self.sources.len())
                    .filter(|&s| s != source)
                    .find_map(|s| index.get(&(s, trace, parent)).copied())
            };
            match parent_idx {
                Some(p) if p != i => self.nodes[p].children.push(i),
                _ => self.roots.push(i),
            }
        }
    }

    /// The reconstructed hops.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Whether no traced activity was found.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Trace ids that contain at least one overrun hop.
    pub fn overrun_traces(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.overrun())
            .map(|n| n.trace_id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Critical path of one trace: the root-to-leaf chain maximizing
    /// cumulative observed duration. Returns node indexes, root first.
    pub fn critical_path(&self, trace_id: u32) -> Vec<usize> {
        let mut best: (u64, Vec<usize>) = (0, Vec::new());
        for &r in &self.roots {
            if self.nodes[r].trace_id != trace_id {
                continue;
            }
            let mut path = Vec::new();
            self.walk_critical(r, 0, &mut path, &mut best);
        }
        best.1
    }

    fn walk_critical(
        &self,
        i: usize,
        cost: u64,
        path: &mut Vec<usize>,
        best: &mut (u64, Vec<usize>),
    ) {
        path.push(i);
        let cost = cost + self.nodes[i].duration_ns().unwrap_or(0);
        if self.nodes[i].children.is_empty() {
            if cost >= best.0 {
                *best = (cost, path.clone());
            }
        } else {
            for &c in &self.nodes[i].children {
                self.walk_critical(c, cost, path, best);
            }
        }
        path.pop();
    }

    /// Time a hop spent in its own handler: observed duration minus the
    /// durations of its child hops. With synchronous dispatch a parent's
    /// duration *contains* its children's, so raw duration would always
    /// blame the outermost hop; self time isolates each hop's share.
    /// (Durations are clock-free intervals, so subtracting a remote
    /// child's duration from a local parent's is sound.)
    pub fn self_ns(&self, i: usize) -> u64 {
        let d = self.nodes[i].duration_ns().unwrap_or(0);
        let kids: u64 = self.nodes[i]
            .children
            .iter()
            .map(|&c| self.nodes[c].duration_ns().unwrap_or(0))
            .sum();
        d.saturating_sub(kids)
    }

    /// On the critical path of `trace_id`, the hop that consumed the
    /// largest share of the trace's time (by [`SpanForest::self_ns`]) —
    /// the first place to look when the trace overran its deadline.
    pub fn dominant_hop(&self, trace_id: u32) -> Option<usize> {
        self.critical_path(trace_id)
            .into_iter()
            .max_by_key(|&i| self.self_ns(i))
    }

    /// Renders the forest as an indented human-readable tree, one
    /// trace at a time, with per-hop wait/run splits, budget remaining
    /// and an `OVERRUN` flag naming the dominant hop.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "== span forest: no traced activity ==\n".to_string();
        }
        let mut traces: Vec<u32> = self.roots.iter().map(|&r| self.nodes[r].trace_id).collect();
        traces.dedup();
        let mut out = format!(
            "== span forest: {} span(s) across {} source(s) ==\n",
            self.nodes.len(),
            self.sources.len()
        );
        let mut seen: Vec<u32> = Vec::new();
        for t in traces {
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            self.render_trace_into(t, &mut out);
        }
        out
    }

    /// Renders one trace's tree in the same format as
    /// [`SpanForest::render`] — the per-trace view for logs that only
    /// care about a single invocation.
    pub fn render_trace(&self, trace_id: u32) -> String {
        if !self
            .roots
            .iter()
            .any(|&r| self.nodes[r].trace_id == trace_id)
        {
            return format!("trace {trace_id:08x}: no spans recorded\n");
        }
        let mut out = String::new();
        self.render_trace_into(trace_id, &mut out);
        out
    }

    fn render_trace_into(&self, t: u32, out: &mut String) {
        let overrun = self.overrun_traces().contains(&t);
        let _ = write!(out, "trace {t:08x}");
        if overrun {
            if let Some(d) = self.dominant_hop(t) {
                let n = &self.nodes[d];
                let _ = write!(
                    out,
                    " OVERRUN — dominant hop {} [{}] ({})",
                    n.entity,
                    self.sources[n.source],
                    fmt_ns(self.self_ns(d))
                );
            } else {
                let _ = write!(out, " OVERRUN");
            }
        }
        out.push('\n');
        for &r in &self.roots {
            if self.nodes[r].trace_id == t {
                self.render_node(r, 1, out);
            }
        }
    }

    fn render_node(&self, i: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[i];
        let indent = "  ".repeat(depth);
        let entity = if n.entity.is_empty() { "?" } else { &n.entity };
        let _ = write!(
            out,
            "{indent}{entity} [{}] span {}",
            self.sources[n.source], n.span_id
        );
        if let Some(w) = n.wait_ns {
            let _ = write!(out, " wait={}", fmt_ns(w));
        }
        if let Some(r) = n.run_ns() {
            let _ = write!(out, " run={}", fmt_ns(r));
        }
        if let Some(b) = n.budget_left_ns {
            if b < 0 {
                let _ = write!(out, " left=-{} OVERRUN", fmt_ns(b.unsigned_abs()));
            } else {
                let _ = write!(out, " left={}", fmt_ns(b as u64));
            }
        }
        for note in &n.notes {
            let _ = write!(out, " ({note})");
        }
        out.push('\n');
        for &c in &n.children {
            self.render_node(c, depth + 1, out);
        }
    }

    /// Emits chrome-trace (`traceEvents`) JSON: one complete event per
    /// finished hop, `pid` = source, `tid` = trace id, timestamps in
    /// microseconds local to each source's epoch.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for n in &self.nodes {
            let (Some(start), Some(dur)) = (n.start_ns, n.duration_ns()) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\
                 \"wait_ns\":{},\"budget_left_ns\":{}}}}}",
                json_string(if n.entity.is_empty() { "?" } else { &n.entity }),
                start / 1_000,
                (dur / 1_000).max(1),
                n.source,
                n.trace_id,
                n.trace_id,
                n.span_id,
                n.parent,
                n.wait_ns.unwrap_or(0),
                n.budget_left_ns.unwrap_or(0),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::{EventKind, Observer};

    #[test]
    fn metrics_text_has_all_kinds() {
        let obs = Observer::new();
        let c = obs.counter("demo_total");
        obs.add(c, 7);
        let g = obs.gauge("demo_depth");
        obs.gauge_add(g, 3);
        let h = obs.histogram("demo_lat_ns");
        obs.observe(h, 1000);
        obs.observe(h, 2000);
        let text = obs.metrics_text();
        assert!(text.contains("demo_total 7"));
        assert!(text.contains("demo_depth 3"));
        assert!(text.contains("demo_depth_hwm 3"));
        assert!(text.contains("demo_lat_ns_count 2"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("rtobs_journal_recorded"));
    }

    #[test]
    fn trace_renders_entity_names() {
        let obs = Observer::new();
        let port = obs.register_entity("station.acq.readings");
        obs.record(EventKind::PortEnqueue, port, 5);
        obs.record(EventKind::PortDequeue, port, 1234);
        let trace = obs.trace_text(10);
        assert!(trace.contains("port.enqueue"));
        assert!(trace.contains("station.acq.readings"));
        assert!(trace.contains("1234ns"));
    }

    #[test]
    fn report_mentions_journal() {
        let obs = Observer::new();
        assert!(obs.report().contains("journal:"));
    }

    #[test]
    fn trace_text_header_counts_shown_and_dropped() {
        let obs = Observer::new();
        let port = obs.register_entity("p.in");
        for i in 0..5 {
            obs.record(EventKind::PortEnqueue, port, i);
        }
        let trace = obs.trace_text(3);
        assert!(
            trace.starts_with("== trace tail: showing 3 of 5 recorded (0 dropped) =="),
            "got header: {}",
            trace.lines().next().unwrap_or("")
        );
    }

    #[test]
    fn trace_text_is_strictly_seq_ordered_after_lap() {
        // A tiny journal lapped several times: the rendered tail must
        // come out in strictly increasing seq order, never interleaved
        // ring order.
        let obs = Observer::with_capacity(8, 8, 8, 8);
        let port = obs.register_entity("p.in");
        for i in 0..37 {
            obs.record(EventKind::PortEnqueue, port, i);
        }
        let trace = obs.trace_text(100);
        let seqs: Vec<u64> = trace
            .lines()
            .filter_map(|l| l.split('#').nth(1))
            .filter_map(|r| r.split_whitespace().next())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert_eq!(seqs.len(), 8, "full ring rendered");
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "seq order violated: {seqs:?}");
        }
        assert!(trace.contains("of 37 recorded"));
    }

    #[test]
    fn span_forest_builds_tree_with_budget_accounting() {
        let obs = Observer::new();
        let port_a = obs.register_entity("a.in");
        let port_b = obs.register_entity("b.in");

        let root = obs.new_trace(Some(1_000_000));
        obs.record_span(EventKind::SpanEnqueue, port_a, root.deadline_ns, root);
        let child = obs.child_span(root);
        obs.record_span(EventKind::SpanEnqueue, port_b, child.deadline_ns, child);
        obs.record_span(EventKind::SpanDequeue, port_b, 250, child);
        obs.record_span(EventKind::SpanEnd, port_b, 400_000u64, child);
        // Root overruns its budget.
        obs.record_span(EventKind::SpanEnd, port_a, (-5_000i64) as u64, root);

        let forest = crate::SpanForest::from_observer(&obs);
        assert_eq!(forest.nodes().len(), 2);
        let rn = forest
            .nodes()
            .iter()
            .find(|n| n.span_id == root.span_id)
            .unwrap();
        let cn = forest
            .nodes()
            .iter()
            .find(|n| n.span_id == child.span_id)
            .unwrap();
        assert!(rn.overrun());
        assert!(!cn.overrun());
        assert_eq!(cn.parent, root.span_id);
        assert_eq!(cn.wait_ns, Some(250));
        assert_eq!(forest.overrun_traces(), vec![root.trace_id]);
        let path = forest.critical_path(root.trace_id);
        assert_eq!(path.len(), 2, "root -> child critical path");

        let tree = forest.render();
        assert!(tree.contains("OVERRUN"), "tree flags the overrun:\n{tree}");
        assert!(tree.contains("a.in"));
        assert!(tree.contains("b.in"));
        assert!(tree.contains("wait=250ns"));

        let json = forest.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn span_forest_stitches_across_journals() {
        // Client and server observers with different epochs; the server
        // hop adopts the client span id as its parent — the stitched
        // forest must parent it under the client node.
        let client = Observer::new();
        let server = Observer::new();
        let op = client.register_entity("giop:echo");
        let poa = server.register_entity("ThePoa.Incoming");

        let root = client.new_trace(Some(2_000_000));
        client.record_span(EventKind::SpanEnqueue, op, root.deadline_ns, root);
        client.record_span(EventKind::SpanRemoteSend, op, 1_500_000, root);

        let adopted = server.adopt_remote(root.trace_id, root.span_id, 1_500_000);
        server.record_span(EventKind::SpanRemoteRecv, poa, 1_500_000, adopted);
        server.record_span(EventKind::SpanEnqueue, poa, adopted.deadline_ns, adopted);
        server.record_span(EventKind::SpanEnd, poa, 900_000u64, adopted);

        client.record_span(EventKind::SpanEnd, op, 300_000u64, root);

        let forest = crate::SpanForest::from_journals(&[("client", &client), ("server", &server)]);
        assert_eq!(forest.nodes().len(), 2);
        let rn = forest
            .nodes()
            .iter()
            .position(|n| n.span_id == root.span_id)
            .unwrap();
        let sn = forest
            .nodes()
            .iter()
            .find(|n| n.span_id == adopted.span_id)
            .unwrap();
        assert_eq!(sn.parent, root.span_id, "server hop parents to client span");
        assert!(
            forest.nodes()[rn].children.contains(
                &forest
                    .nodes()
                    .iter()
                    .position(|n| n.span_id == adopted.span_id)
                    .unwrap()
            ),
            "cross-source link resolved"
        );
        let tree = forest.render();
        assert!(tree.contains("[client]"));
        assert!(tree.contains("[server]"));
    }
}
