//! Causal trace contexts: a few `Copy` words that follow an invocation
//! through ports, thread pools and remote links.
//!
//! A [`SpanCtx`] identifies one *hop* of one *trace*: `trace_id` names
//! the end-to-end invocation, `span_id` names this hop, `parent` links
//! back to the hop that caused it, and `deadline_ns` carries the
//! absolute deadline (in the local observer's epoch) the whole trace
//! must meet. The context is 16 bytes, `Copy`, and allocation-free to
//! create or propagate — it rides inside the core's message envelope
//! and is packed into a single journal word per event, keeping the
//! paper's no-allocation-in-steady-state discipline intact on the
//! instrumented hot paths.
//!
//! Propagation uses a thread-local *current span* ([`current`] /
//! [`with_span`]): the dispatcher installs the envelope's context
//! around the handler invocation, so anything the handler does — send
//! another message, invoke through the ORB, retry a remote link —
//! inherits the trace without any plumbing in user code.
//!
//! Identifiers are allocated from process-global atomics so that two
//! [`Observer`](crate::Observer) domains in one process (a client app
//! and a server app in the same test binary, say) never collide; span
//! ids are 16-bit and may wrap, which is harmless because stitching is
//! per-trace and traces are short-lived.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Trace context for one hop: identity plus the deadline budget.
///
/// `trace_id == 0` means "no trace" ([`SpanCtx::NONE`]); every real
/// trace gets a nonzero id. `deadline_ns == 0` means the trace carries
/// no deadline. The deadline is *absolute*, in nanoseconds of the local
/// observer's epoch; when a trace crosses a process boundary the wire
/// carries the *remaining budget* and the receiver re-anchors it
/// against its own clock (see `Observer::adopt_remote`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx {
    /// End-to-end invocation id; `0` = inactive.
    pub trace_id: u32,
    /// This hop's id, unique within the process while the trace lives.
    pub span_id: u16,
    /// The causing hop's `span_id` (`0` = root).
    pub parent: u16,
    /// Absolute deadline in local-epoch nanoseconds; `0` = none.
    pub deadline_ns: u64,
}

impl SpanCtx {
    /// The inactive context: not part of any trace.
    pub const NONE: SpanCtx = SpanCtx {
        trace_id: 0,
        span_id: 0,
        parent: 0,
        deadline_ns: 0,
    };

    /// Whether this context belongs to a live trace.
    #[inline]
    pub fn is_active(self) -> bool {
        self.trace_id != 0
    }

    /// Packs the identity (not the deadline) into one journal word:
    /// `trace_id << 32 | span_id << 16 | parent`.
    #[inline]
    pub fn pack(self) -> u64 {
        (u64::from(self.trace_id) << 32) | (u64::from(self.span_id) << 16) | u64::from(self.parent)
    }

    /// Reverses [`SpanCtx::pack`]; the deadline is not part of the
    /// packed word and comes back as `0`.
    #[inline]
    pub fn unpack(word: u64) -> SpanCtx {
        SpanCtx {
            trace_id: (word >> 32) as u32,
            span_id: (word >> 16) as u16,
            parent: word as u16,
            deadline_ns: 0,
        }
    }
}

/// Process-global trace-id allocator. Starts at 1; 0 is reserved for
/// "no trace". Wrapping after 4 billion traces would alias, which we
/// accept for a flight recorder holding a few thousand events.
static NEXT_TRACE: AtomicU32 = AtomicU32::new(1);

/// Process-global span-id allocator. 16-bit ids wrap; uniqueness only
/// matters within a live trace, which spans a handful of hops.
static NEXT_SPAN: AtomicU32 = AtomicU32::new(1);

/// Allocates a fresh trace id (nonzero).
#[inline]
pub(crate) fn alloc_trace_id() -> u32 {
    loop {
        let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        if id != 0 {
            return id;
        }
    }
}

/// Allocates a fresh span id (nonzero).
#[inline]
pub(crate) fn alloc_span_id() -> u16 {
    loop {
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) as u16;
        if id != 0 {
            return id;
        }
    }
}

thread_local! {
    static CURRENT: Cell<SpanCtx> = const { Cell::new(SpanCtx::NONE) };
}

/// The span context installed on this thread, or [`SpanCtx::NONE`].
///
/// Hot-path cheap: one thread-local read of a `Copy` value.
#[inline]
pub fn current() -> SpanCtx {
    CURRENT.with(|c| c.get())
}

/// Runs `f` with `span` installed as the thread's current context,
/// restoring the previous context afterwards (panic-safe).
#[inline]
pub fn with_span<R>(span: SpanCtx, f: impl FnOnce() -> R) -> R {
    struct Restore(SpanCtx);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(span)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_identity() {
        let s = SpanCtx {
            trace_id: 0xDEAD_BEEF,
            span_id: 0x1234,
            parent: 0x5678,
            deadline_ns: 999, // not packed
        };
        let back = SpanCtx::unpack(s.pack());
        assert_eq!(back.trace_id, s.trace_id);
        assert_eq!(back.span_id, s.span_id);
        assert_eq!(back.parent, s.parent);
        assert_eq!(back.deadline_ns, 0);
    }

    #[test]
    fn none_is_inactive_and_packs_to_zero() {
        assert!(!SpanCtx::NONE.is_active());
        assert_eq!(SpanCtx::NONE.pack(), 0);
        assert_eq!(SpanCtx::unpack(0), SpanCtx::NONE);
    }

    #[test]
    fn with_span_installs_and_restores() {
        assert_eq!(current(), SpanCtx::NONE);
        let s = SpanCtx {
            trace_id: 7,
            span_id: 3,
            parent: 0,
            deadline_ns: 100,
        };
        let inner = with_span(s, || {
            assert_eq!(current(), s);
            let nested = SpanCtx {
                trace_id: 7,
                span_id: 4,
                parent: 3,
                deadline_ns: 100,
            };
            with_span(nested, || assert_eq!(current(), nested));
            current()
        });
        assert_eq!(inner, s);
        assert_eq!(current(), SpanCtx::NONE);
    }

    #[test]
    fn with_span_restores_on_panic() {
        let s = SpanCtx {
            trace_id: 9,
            span_id: 1,
            parent: 0,
            deadline_ns: 0,
        };
        let r = std::panic::catch_unwind(|| with_span(s, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current(), SpanCtx::NONE);
    }

    #[test]
    fn allocators_hand_out_nonzero_ids() {
        for _ in 0..100 {
            assert_ne!(alloc_trace_id(), 0);
            assert_ne!(alloc_span_id(), 0);
        }
    }
}
