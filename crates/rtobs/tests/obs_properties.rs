//! Satellite coverage for rtobs: multi-threaded ring wraparound (no
//! torn events, monotone sequence numbers) and histogram percentile
//! correctness against a sorted-sample oracle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtobs::{EventKind, Journal, Observer};

/// Writers encode `(thread, i)` redundantly across the payload words;
/// any torn event would decode inconsistently.
#[test]
fn multithread_wraparound_no_torn_events() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let journal = Arc::new(Journal::with_capacity(1024));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // A concurrent reader hammers snapshots while writers wrap the
        // ring many times over; every event it sees must decode
        // consistently (t_ns carries the full token; subject and
        // payload are derived from it, so a torn slot cannot satisfy
        // both checks).
        let reader_journal = Arc::clone(&journal);
        let reader_stop = Arc::clone(&stop);
        s.spawn(move || {
            while !reader_stop.load(Ordering::Relaxed) {
                for e in reader_journal.snapshot() {
                    assert_eq!(e.t_ns as u32, e.subject, "torn event at seq {}", e.seq);
                    assert_eq!(
                        e.payload,
                        e.t_ns.wrapping_mul(3),
                        "torn payload at seq {}",
                        e.seq
                    );
                }
            }
        });
        let mut writers = Vec::new();
        for t in 0..THREADS {
            let journal = Arc::clone(&journal);
            writers.push(s.spawn(move || {
                for i in 0..PER_THREAD {
                    let token = t * PER_THREAD + i;
                    journal.record(
                        EventKind::PortEnqueue,
                        token as u32,
                        token.wrapping_mul(3),
                        token,
                    );
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let events = journal.snapshot();
    assert_eq!(
        events.len(),
        journal.capacity(),
        "ring is full after wraparound"
    );

    // Monotone, duplicate-free sequence numbers.
    for pair in events.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "sequence numbers must strictly increase"
        );
    }
    // Everything still present decodes consistently.
    for e in &events {
        assert_eq!(e.t_ns as u32, e.subject);
        assert_eq!(e.payload, e.t_ns.wrapping_mul(3));
    }
    let total = THREADS * PER_THREAD;
    assert_eq!(journal.recorded() + journal.dropped(), total);
    // The surviving events must be recent: a slot can only lag one lap
    // per drop it absorbed.
    let min_seq = events.first().unwrap().seq;
    let cap = journal.capacity() as u64;
    assert!(
        min_seq + cap * (journal.dropped() + 1) >= total,
        "min_seq {min_seq} too old (dropped {})",
        journal.dropped()
    );
}

/// Percentiles from the log-scale buckets must land within the bucket
/// scheme's documented 12.5% relative error of the exact
/// sorted-sample answer.
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    let obs = Observer::new();
    let h = obs.histogram("oracle_ns");

    // Deterministic log-uniform-ish samples spanning ns..seconds.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut samples: Vec<u64> = Vec::with_capacity(50_000);
    for _ in 0..50_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let magnitude = 1u64 << (state >> 58); // 2^0 .. 2^63 skewed low bits
        let v = (state & 0xFFFF) % magnitude.max(1) + magnitude.min(1 << 30);
        samples.push(v);
        obs.observe(h, v);
    }

    let mut sorted = samples.clone();
    sorted.sort_unstable();
    let exact = |q: f64| -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };

    let snap = obs.hist_snapshot(h);
    assert_eq!(snap.count, samples.len() as u64);
    assert_eq!(snap.max, *sorted.last().unwrap(), "max is tracked exactly");
    assert_eq!(
        snap.sum,
        samples.iter().sum::<u64>(),
        "sum is tracked exactly"
    );

    for (q, got) in [(0.5, snap.p50), (0.99, snap.p99)] {
        let want = exact(q);
        let err = got.abs_diff(want) as f64 / want.max(1) as f64;
        assert!(
            err <= 0.125,
            "q={q}: histogram said {got}, oracle said {want} (err {err:.4})"
        );
    }
}

/// Tiny histograms: percentile of a single sample is that sample's
/// bucket, never past the exact max.
#[test]
fn histogram_single_sample() {
    let obs = Observer::new();
    let h = obs.histogram("single");
    obs.observe(h, 777);
    let s = obs.hist_snapshot(h);
    assert_eq!(s.count, 1);
    assert_eq!(s.max, 777);
    assert!(
        s.p50 <= 777 && s.p50 >= 700,
        "p50 {} within bucket of 777",
        s.p50
    );
    assert_eq!(s.p99, s.p50);
}
