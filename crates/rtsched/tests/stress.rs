//! Stress and property tests for the scheduling substrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtplatform::rng::SplitMix64;
use rtsched::{BoundedBuffer, OverflowPolicy, PoolConfig, Priority, PushOutcome, ThreadPool};

#[test]
fn pool_survives_thousands_of_jobs_across_priorities() {
    let pool = ThreadPool::new(
        PoolConfig {
            min_threads: 2,
            max_threads: 6,
            idle_priority: Priority::MIN,
        },
        || 0u64,
    );
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..5_000u64 {
        let done = Arc::clone(&done);
        pool.execute(Priority::new((i % 90) as u8 + 1), move |state, _| {
            *state += 1;
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert!(pool.wait_idle(Duration::from_secs(30)));
    assert_eq!(done.load(Ordering::Relaxed), 5_000);
    assert_eq!(pool.executed(), 5_000);
    assert!(pool.live_threads() <= 6);
}

#[test]
fn producer_consumer_through_bounded_buffer() {
    let buf = Arc::new(BoundedBuffer::new(32, OverflowPolicy::Block));
    let consumed = Arc::new(AtomicU64::new(0));
    let mut consumers = Vec::new();
    for _ in 0..3 {
        let buf = Arc::clone(&buf);
        let consumed = Arc::clone(&consumed);
        consumers.push(std::thread::spawn(move || {
            while let Some(v) = buf.pop() {
                consumed.fetch_add(v, Ordering::Relaxed);
            }
        }));
    }
    let mut producers = Vec::new();
    for _ in 0..4 {
        let buf = Arc::clone(&buf);
        producers.push(std::thread::spawn(move || {
            for _ in 0..1_000u64 {
                assert_eq!(buf.push(1), PushOutcome::Enqueued);
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    // Drain then close.
    while !buf.is_empty() {
        std::thread::yield_now();
    }
    buf.close();
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::Relaxed), 4_000);
}

/// Whatever mix of pushes and pops, a Reject buffer never holds more
/// than its capacity and never loses an accepted element. (Formerly a
/// proptest; now a seeded randomized sweep so the suite builds offline.)
#[test]
fn bounded_buffer_accounting() {
    let mut rng = SplitMix64::new(0xB0F);
    for _case in 0..64 {
        let capacity = rng.range_usize(1, 16);
        let n_ops = rng.range_usize(1, 200);
        let buf = BoundedBuffer::new(capacity, OverflowPolicy::Reject);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if rng.chance(0.5) {
                let outcome = buf.push(next);
                if model.len() < capacity {
                    assert_eq!(outcome, PushOutcome::Enqueued);
                    model.push_back(next);
                } else {
                    assert_eq!(outcome, PushOutcome::Rejected);
                }
                next += 1;
            } else {
                assert_eq!(buf.try_pop(), model.pop_front());
            }
            assert_eq!(buf.len(), model.len());
            assert!(buf.len() <= capacity);
        }
    }
}

/// DropOldest keeps exactly the most recent `capacity` elements.
#[test]
fn drop_oldest_keeps_newest() {
    let mut rng = SplitMix64::new(0xD20);
    for _case in 0..64 {
        let capacity = rng.range_usize(1, 8);
        let n = rng.range_usize(1, 64);
        let buf = BoundedBuffer::new(capacity, OverflowPolicy::DropOldest);
        for i in 0..n {
            buf.push(i);
        }
        let kept: Vec<usize> = std::iter::from_fn(|| buf.try_pop()).collect();
        let expected: Vec<usize> = (n.saturating_sub(capacity)..n).collect();
        assert_eq!(kept, expected);
    }
}

/// Latency summaries are order-independent and internally consistent.
#[test]
fn latency_summary_consistency() {
    use rtsched::LatencyRecorder;
    let mut rng = SplitMix64::new(0x1A7);
    for _case in 0..64 {
        let mut samples: Vec<u64> = (0..rng.range_usize(1, 200))
            .map(|_| rng.range_usize(1, 1_000_000) as u64)
            .collect();
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_nanos(s));
        }
        let a = rec.summary();
        samples.reverse();
        let mut rec2 = LatencyRecorder::new();
        for &s in &samples {
            rec2.record(Duration::from_nanos(s));
        }
        let b = rec2.summary();
        assert_eq!(a, b);
        assert!(a.min <= a.median && a.median <= a.max);
        assert!(a.min <= a.mean && a.mean <= a.max);
        assert!(a.p90 <= a.p99 && a.p99 <= a.p999 && a.p999 <= a.max);
        assert_eq!(a.jitter(), a.max - a.min);
    }
}
