//! Stress and property tests for the scheduling substrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtplatform::rng::SplitMix64;
use rtsched::{
    BoundedBuffer, OverflowPolicy, PoolConfig, Priority, PriorityFifo, PushOutcome, ThreadPool,
};

#[test]
fn pool_survives_thousands_of_jobs_across_priorities() {
    let pool = ThreadPool::new(
        PoolConfig {
            min_threads: 2,
            max_threads: 6,
            idle_priority: Priority::MIN,
            ..PoolConfig::default()
        },
        || 0u64,
    );
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..5_000u64 {
        let done = Arc::clone(&done);
        pool.execute(Priority::new((i % 90) as u8 + 1), move |state, _| {
            *state += 1;
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert!(pool.wait_idle(Duration::from_secs(30)));
    assert_eq!(done.load(Ordering::Relaxed), 5_000);
    assert_eq!(pool.executed(), 5_000);
    assert!(pool.live_threads() <= 6);
}

#[test]
fn producer_consumer_through_bounded_buffer() {
    let buf = Arc::new(BoundedBuffer::new(32, OverflowPolicy::Block));
    let consumed = Arc::new(AtomicU64::new(0));
    let mut consumers = Vec::new();
    for _ in 0..3 {
        let buf = Arc::clone(&buf);
        let consumed = Arc::clone(&consumed);
        consumers.push(std::thread::spawn(move || {
            while let Some(v) = buf.pop() {
                consumed.fetch_add(v, Ordering::Relaxed);
            }
        }));
    }
    let mut producers = Vec::new();
    for _ in 0..4 {
        let buf = Arc::clone(&buf);
        producers.push(std::thread::spawn(move || {
            for _ in 0..1_000u64 {
                assert_eq!(buf.push(1), PushOutcome::Enqueued);
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    // Drain then close.
    while !buf.is_empty() {
        std::thread::yield_now();
    }
    buf.close();
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::Relaxed), 4_000);
}

/// N producers × M consumers against a DropOldest buffer while
/// evictions interleave with pops: every pushed element is either
/// delivered exactly once or counted evicted — nothing lost, nothing
/// duplicated.
#[test]
fn eviction_interleaving_loses_nothing_duplicates_nothing() {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 5_000;
    let buf = Arc::new(BoundedBuffer::new(16, OverflowPolicy::DropOldest));
    let delivered = Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let buf = Arc::clone(&buf);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut local = Vec::new();
                while let Some(v) = buf.pop() {
                    local.push(v);
                }
                delivered.lock().unwrap().extend(local);
            })
        })
        .collect();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let outcome = buf.push(p * PER + i);
                    assert!(
                        matches!(outcome, PushOutcome::Enqueued | PushOutcome::EvictedOldest),
                        "unexpected outcome {outcome:?}"
                    );
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    buf.close();
    for c in consumers {
        c.join().unwrap();
    }
    let mut seen = delivered.lock().unwrap().clone();
    let total = seen.len() as u64;
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, total, "an element was delivered twice");
    assert_eq!(
        total + buf.evicted(),
        PRODUCERS * PER,
        "delivered + evicted must cover every accepted push"
    );
}

/// FIFO per priority band survives contended batched dequeue: consumers
/// drain with `pop_batch` while producers each flood their own band.
#[test]
fn fifo_per_priority_under_contention() {
    const PER: u64 = 10_000;
    let q = Arc::new(PriorityFifo::new());
    let outputs = Arc::new(std::sync::Mutex::new(Vec::<(u8, u64)>::new()));
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let q = Arc::clone(&q);
            let outputs = Arc::clone(&outputs);
            std::thread::spawn(move || loop {
                let batch = q.pop_batch(8);
                if batch.is_empty() {
                    break;
                }
                let mut guard = outputs.lock().unwrap();
                for (p, v) in batch {
                    guard.push((p.value(), v));
                }
            })
        })
        .collect();
    let producers: Vec<_> = (0..4u8)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let prio = Priority::new(20 + p);
                for i in 0..PER {
                    assert!(q.push(prio, i));
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    q.close();
    for c in consumers {
        c.join().unwrap();
    }
    let all = outputs.lock().unwrap();
    assert_eq!(all.len() as u64, 4 * PER, "no message lost");
    // Within each band, the interleaving as appended under the output
    // lock preserves... nothing across consumers — but each *consumer
    // batch* is contiguous under the lock, and within one batch a band's
    // items must be in order; globally, check sequence monotonicity per
    // band per contiguous run is too weak, so instead check the strong
    // per-band property end-to-end via counting: each band delivered
    // exactly PER distinct items.
    for band in 0..4u8 {
        let mut vals: Vec<u64> = all
            .iter()
            .filter(|&&(p, _)| p == 20 + band)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(vals.len() as u64, PER);
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len() as u64, PER, "band {band} duplicated an item");
    }
}

/// A single consumer preserves exact FIFO order per band (the paper's
/// in-port dispatch-order guarantee) even when producers contend.
#[test]
fn single_consumer_sees_exact_band_fifo() {
    const PER: u64 = 20_000;
    let q = Arc::new(PriorityFifo::new());
    let producers: Vec<_> = (0..4u8)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let prio = Priority::new(30 + p);
                for i in 0..PER {
                    assert!(q.push(prio, (p, i)));
                }
            })
        })
        .collect();
    let mut next = [0u64; 4];
    let mut seen = 0u64;
    while seen < 4 * PER {
        for (_, (p, i)) in q.pop_batch(16) {
            assert_eq!(
                i, next[p as usize],
                "band {p} out of order: got {i}, expected {}",
                next[p as usize]
            );
            next[p as usize] += 1;
            seen += 1;
        }
    }
    for p in producers {
        p.join().unwrap();
    }
    assert!(q.is_empty());
}

/// `close()` must wake every parked waiter — consumers parked on empty
/// buffers/queues and producers parked on a full Block buffer.
#[test]
fn close_wakes_every_parked_waiter() {
    // Queue side.
    let q: Arc<PriorityFifo<u8>> = Arc::new(PriorityFifo::new());
    let q_waiters: Vec<_> = (0..4)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        })
        .collect();
    // Buffer side: consumers on empty + producers on full.
    let buf = Arc::new(BoundedBuffer::<u8>::new(1, OverflowPolicy::Block));
    let b_consumers: Vec<_> = (0..2)
        .map(|_| {
            let b = Arc::clone(&buf);
            std::thread::spawn(move || b.pop())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    buf.push(1);
    let b_producers: Vec<_> = (0..2)
        .map(|_| {
            let b = Arc::clone(&buf);
            std::thread::spawn(move || b.push(2))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    q.close();
    buf.close();
    for w in q_waiters {
        assert_eq!(w.join().unwrap(), None);
    }
    for c in b_consumers {
        let _ = c.join().unwrap();
    }
    for p in b_producers {
        let outcome = p.join().unwrap();
        assert!(
            matches!(outcome, PushOutcome::Closed | PushOutcome::Enqueued),
            "parked producer neither enqueued nor saw close: {outcome:?}"
        );
    }
    assert!(
        q.park_transitions() + buf.park_transitions() >= 1,
        "waiters actually parked"
    );
}

/// Whatever mix of pushes and pops, a Reject buffer never holds more
/// than its capacity and never loses an accepted element. (Formerly a
/// proptest; now a seeded randomized sweep so the suite builds offline.)
#[test]
fn bounded_buffer_accounting() {
    let mut rng = SplitMix64::new(0xB0F);
    for _case in 0..64 {
        let capacity = rng.range_usize(1, 16);
        let n_ops = rng.range_usize(1, 200);
        let buf = BoundedBuffer::new(capacity, OverflowPolicy::Reject);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if rng.chance(0.5) {
                let outcome = buf.push(next);
                if model.len() < capacity {
                    assert_eq!(outcome, PushOutcome::Enqueued);
                    model.push_back(next);
                } else {
                    assert_eq!(outcome, PushOutcome::Rejected);
                }
                next += 1;
            } else {
                assert_eq!(buf.try_pop(), model.pop_front());
            }
            assert_eq!(buf.len(), model.len());
            assert!(buf.len() <= capacity);
        }
    }
}

/// DropOldest keeps exactly the most recent `capacity` elements.
#[test]
fn drop_oldest_keeps_newest() {
    let mut rng = SplitMix64::new(0xD20);
    for _case in 0..64 {
        let capacity = rng.range_usize(1, 8);
        let n = rng.range_usize(1, 64);
        let buf = BoundedBuffer::new(capacity, OverflowPolicy::DropOldest);
        for i in 0..n {
            buf.push(i);
        }
        let kept: Vec<usize> = std::iter::from_fn(|| buf.try_pop()).collect();
        let expected: Vec<usize> = (n.saturating_sub(capacity)..n).collect();
        assert_eq!(kept, expected);
    }
}

/// Latency summaries are order-independent and internally consistent.
#[test]
fn latency_summary_consistency() {
    use rtsched::LatencyRecorder;
    let mut rng = SplitMix64::new(0x1A7);
    for _case in 0..64 {
        let mut samples: Vec<u64> = (0..rng.range_usize(1, 200))
            .map(|_| rng.range_usize(1, 1_000_000) as u64)
            .collect();
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_nanos(s));
        }
        let a = rec.summary();
        samples.reverse();
        let mut rec2 = LatencyRecorder::new();
        for &s in &samples {
            rec2.record(Duration::from_nanos(s));
        }
        let b = rec2.summary();
        assert_eq!(a, b);
        assert!(a.min <= a.median && a.median <= a.max);
        assert!(a.min <= a.mean && a.mean <= a.max);
        assert!(a.p90 <= a.p99 && a.p99 <= a.p999 && a.p999 <= a.max);
        assert_eq!(a.jitter(), a.max - a.min);
    }
}
