//! Bounded message buffers.
//!
//! Every Compadres in-port owns a bounded buffer whose size comes from the
//! CCL `PortAttributes/BufferSize` element. This module implements that
//! buffer with a configurable overflow policy.
//!
//! Since the lock-free conversion (DESIGN.md §5e) the buffer is a
//! [`rtplatform::ring::MpmcRing`] plus an atomic credit counter for the
//! exact logical capacity: `push`/`try_pop` never take a lock, stat
//! reads (`len`, `rejected`, `evicted`) are single atomic loads, and
//! only the *blocking* paths (`pop`, `pop_timeout`, and `push` under
//! [`OverflowPolicy::Block`]) fall back to spin-then-park on a
//! [`rtplatform::park::Gate`] once their spin budget is exhausted.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use rtplatform::atomic::{Backoff, CachePadded};
use rtplatform::fault::AdmissionPolicy;
use rtplatform::park::{Gate, WaitOutcome};
use rtplatform::ring::MpmcRing;

/// What to do when a bounded buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until space is available (default).
    #[default]
    Block,
    /// Reject the new element; `push` returns [`PushOutcome::Rejected`].
    Reject,
    /// Drop the oldest queued element to make room.
    DropOldest,
}

/// Result of a non-blocking or policy-driven push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The element was enqueued.
    Enqueued,
    /// The element was enqueued after evicting the oldest one.
    EvictedOldest,
    /// The buffer was full and the element was rejected.
    Rejected,
    /// The element's priority band was over its admission watermark
    /// while the buffer still had capacity
    /// ([`BoundedBuffer::push_with_priority`]).
    Shed,
    /// The buffer is closed.
    Closed,
}

/// A bounded FIFO buffer with overflow policy and close semantics.
///
/// # Examples
///
/// ```
/// use rtsched::{BoundedBuffer, OverflowPolicy, PushOutcome};
///
/// let buf = BoundedBuffer::new(2, OverflowPolicy::Reject);
/// assert_eq!(buf.push(1), PushOutcome::Enqueued);
/// assert_eq!(buf.push(2), PushOutcome::Enqueued);
/// assert_eq!(buf.push(3), PushOutcome::Rejected);
/// assert_eq!(buf.try_pop(), Some(1));
/// ```
pub struct BoundedBuffer<T> {
    ring: MpmcRing<T>,
    /// Credits taken against the logical capacity. Incremented before
    /// the ring insert (a claim), decremented after a successful pop —
    /// so `credits >= ring occupancy` always, and a claim admitted by
    /// a pre-close `push` is always drained.
    credits: CachePadded<AtomicUsize>,
    capacity: usize,
    policy: OverflowPolicy,
    closed: AtomicBool,
    rejected: AtomicU64,
    evicted: AtomicU64,
    shed: AtomicU64,
    spins: AtomicU64,
    /// Consumers park here when empty.
    not_empty: Gate,
    /// Blocked producers park here when full (Block policy only).
    not_full: Gate,
}

impl<T> std::fmt::Debug for BoundedBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedBuffer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("policy", &self.policy)
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> BoundedBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BoundedBuffer {
            ring: MpmcRing::new(capacity),
            credits: CachePadded::new(AtomicUsize::new(0)),
            capacity,
            policy,
            closed: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            spins: AtomicU64::new(0),
            not_empty: Gate::new(),
            not_full: Gate::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Tries to take one admission credit; fails when the buffer is
    /// logically full.
    fn try_claim(&self) -> bool {
        self.try_claim_below(self.capacity)
    }

    /// Tries to take one admission credit while occupancy is below
    /// `limit` (a band watermark ≤ capacity); fails otherwise.
    fn try_claim_below(&self, limit: usize) -> bool {
        let mut cur = self.credits.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return false;
            }
            match self.credits.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
    }

    /// Completes an admission: the claim is held, so the ring (whose
    /// physical capacity is at least the logical one) must have room.
    fn complete_push(&self, item: T) {
        let mut backoff = Backoff::new();
        let mut item = item;
        loop {
            match self.ring.push(item) {
                Ok(()) => break,
                // Unreachable in theory (credits bound occupancy), but
                // never spin-loop forever on a logic error.
                Err(back) => {
                    item = back;
                    backoff.snooze();
                }
            }
        }
        self.not_empty.notify_one();
    }

    /// Pops from the ring and releases the credit.
    fn take_one(&self) -> Option<T> {
        let item = self.ring.pop()?;
        self.credits.fetch_sub(1, Ordering::SeqCst);
        if self.policy == OverflowPolicy::Block {
            self.not_full.notify_one();
        }
        Some(item)
    }

    /// Enqueues `item` according to the overflow policy.
    pub fn push(&self, item: T) -> PushOutcome {
        if self.closed.load(Ordering::SeqCst) {
            return PushOutcome::Closed;
        }
        if self.try_claim() {
            self.complete_push(item);
            return PushOutcome::Enqueued;
        }
        match self.policy {
            OverflowPolicy::Reject => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                PushOutcome::Rejected
            }
            OverflowPolicy::DropOldest => {
                let mut evicted_any = false;
                loop {
                    // Make room by consuming the oldest element; if a
                    // concurrent pop made room first, the claim wins
                    // without evicting.
                    if let Some(old) = self.take_one() {
                        drop(old);
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                        evicted_any = true;
                    }
                    if self.try_claim() {
                        self.complete_push(item);
                        return if evicted_any {
                            PushOutcome::EvictedOldest
                        } else {
                            PushOutcome::Enqueued
                        };
                    }
                    if self.closed.load(Ordering::SeqCst) {
                        return PushOutcome::Closed;
                    }
                }
            }
            OverflowPolicy::Block => {
                let mut backoff = Backoff::new();
                self.spins.fetch_add(1, Ordering::Relaxed);
                loop {
                    if self.closed.load(Ordering::SeqCst) {
                        return PushOutcome::Closed;
                    }
                    if self.try_claim() {
                        self.complete_push(item);
                        return PushOutcome::Enqueued;
                    }
                    if backoff.is_completed() {
                        self.not_full.wait(None, || {
                            self.credits.load(Ordering::SeqCst) < self.capacity
                                || self.closed.load(Ordering::SeqCst)
                        });
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// Enqueues `item` subject to `admission`'s per-priority-band
    /// watermarks: a band over its watermark gets [`PushOutcome::Shed`]
    /// *immediately* — even under [`OverflowPolicy::Block`], a
    /// non-admitted producer is never blocked (blocking low-priority
    /// producers on a full buffer is exactly the priority inversion the
    /// bands exist to prevent). Pushes admitted by the watermark follow
    /// the configured overflow policy at hard capacity.
    pub fn push_with_priority(
        &self,
        item: T,
        priority: u8,
        admission: &AdmissionPolicy,
    ) -> PushOutcome {
        let limit = admission
            .watermark(priority, self.capacity)
            .min(self.capacity);
        if limit < self.capacity {
            if self.closed.load(Ordering::SeqCst) {
                return PushOutcome::Closed;
            }
            if self.try_claim_below(limit) {
                self.complete_push(item);
                return PushOutcome::Enqueued;
            }
            self.shed.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::Shed;
        }
        self.push(item)
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.take_one()
    }

    /// Dequeues, blocking until an element arrives or the buffer closes.
    /// Returns `None` once closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        self.pop_deadline(None)
    }

    /// Dequeues, blocking for at most `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        self.pop_deadline(Some(std::time::Instant::now() + timeout))
    }

    fn pop_deadline(&self, deadline: Option<std::time::Instant>) -> Option<T> {
        if let Some(item) = self.take_one() {
            return Some(item);
        }
        let mut backoff = Backoff::new();
        self.spins.fetch_add(1, Ordering::Relaxed);
        loop {
            if let Some(item) = self.take_one() {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                // Drain any claim admitted before the close finished:
                // credits > 0 means an in-flight push will materialize.
                return match self.credits.load(Ordering::SeqCst) {
                    0 => None,
                    _ => {
                        std::thread::yield_now();
                        continue;
                    }
                };
            }
            if backoff.is_completed() {
                let woke = self.not_empty.wait(deadline, || {
                    self.credits.load(Ordering::SeqCst) > 0 || self.closed.load(Ordering::SeqCst)
                });
                if woke == WaitOutcome::TimedOut {
                    return self.take_one();
                }
                backoff.reset();
            } else {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return self.take_one();
                    }
                }
                backoff.snooze();
            }
        }
    }

    /// Closes the buffer: producers fail, consumers drain then get `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the buffer is closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Current number of queued elements (including in-flight pushes
    /// that already claimed a slot). A single atomic load — never
    /// blocks, even while producers are mid-insert.
    pub fn len(&self) -> usize {
        self.credits.load(Ordering::SeqCst)
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements rejected (Reject policy) so far. Wait-free.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of elements evicted (DropOldest policy) so far. Wait-free.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of elements shed by per-band admission
    /// ([`BoundedBuffer::push_with_priority`]) so far. Wait-free.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Times a blocking path entered its spin phase (ran out of work
    /// and started burning its spin budget).
    pub fn spin_transitions(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// Times a blocking path exhausted its spin budget and parked.
    pub fn park_transitions(&self) -> u64 {
        self.not_empty.park_count() + self.not_full.park_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedBuffer::<u8>::new(0, OverflowPolicy::Block);
    }

    #[test]
    fn fifo_order() {
        let b = BoundedBuffer::new(4, OverflowPolicy::Reject);
        for i in 0..4 {
            assert_eq!(b.push(i), PushOutcome::Enqueued);
        }
        for i in 0..4 {
            assert_eq!(b.try_pop(), Some(i));
        }
        assert_eq!(b.try_pop(), None);
    }

    #[test]
    fn drop_oldest_policy() {
        let b = BoundedBuffer::new(2, OverflowPolicy::DropOldest);
        b.push(1);
        b.push(2);
        assert_eq!(b.push(3), PushOutcome::EvictedOldest);
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.try_pop(), Some(2));
        assert_eq!(b.try_pop(), Some(3));
    }

    #[test]
    fn reject_policy_counts() {
        let b = BoundedBuffer::new(1, OverflowPolicy::Reject);
        b.push(1);
        assert_eq!(b.push(2), PushOutcome::Rejected);
        assert_eq!(b.push(3), PushOutcome::Rejected);
        assert_eq!(b.rejected(), 2);
    }

    #[test]
    fn logical_capacity_is_exact_despite_pow2_ring() {
        // 5 rounds up to 8 physical slots; admission must stop at 5.
        let b = BoundedBuffer::new(5, OverflowPolicy::Reject);
        for i in 0..5 {
            assert_eq!(b.push(i), PushOutcome::Enqueued);
        }
        assert_eq!(b.push(9), PushOutcome::Rejected);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn priority_push_sheds_low_band_without_blocking() {
        // Block policy, capacity 4, banded admission: the low band must
        // be shed immediately (never parked) once half full, while the
        // high band blocks only at true capacity.
        let admission = AdmissionPolicy::banded(20, 50);
        let b = BoundedBuffer::new(4, OverflowPolicy::Block);
        assert_eq!(
            b.push_with_priority(1, 5, &admission),
            PushOutcome::Enqueued
        );
        assert_eq!(
            b.push_with_priority(2, 5, &admission),
            PushOutcome::Enqueued
        );
        // Low watermark (2) reached: shed, and promptly.
        let t = std::time::Instant::now();
        assert_eq!(b.push_with_priority(3, 5, &admission), PushOutcome::Shed);
        assert!(t.elapsed() < Duration::from_millis(50), "shed never blocks");
        assert_eq!(b.shed(), 1);
        // Mid watermark is 3: one more mid fits, then shed.
        assert_eq!(
            b.push_with_priority(4, 30, &admission),
            PushOutcome::Enqueued
        );
        assert_eq!(b.push_with_priority(5, 30, &admission), PushOutcome::Shed);
        // High band fills to capacity.
        assert_eq!(
            b.push_with_priority(6, 90, &admission),
            PushOutcome::Enqueued
        );
        assert_eq!(b.len(), 4);
        assert_eq!(b.shed(), 2);
        // FIFO of admitted elements preserved.
        assert_eq!(b.try_pop(), Some(1));
        assert_eq!(b.try_pop(), Some(2));
        assert_eq!(b.try_pop(), Some(4));
        assert_eq!(b.try_pop(), Some(6));
    }

    #[test]
    fn priority_push_disabled_matches_plain_push() {
        let admission = AdmissionPolicy::disabled();
        let b = BoundedBuffer::new(2, OverflowPolicy::Reject);
        assert_eq!(
            b.push_with_priority(1, 0, &admission),
            PushOutcome::Enqueued
        );
        assert_eq!(
            b.push_with_priority(2, 0, &admission),
            PushOutcome::Enqueued
        );
        assert_eq!(
            b.push_with_priority(3, 0, &admission),
            PushOutcome::Rejected
        );
        assert_eq!(b.shed(), 0);
        assert_eq!(b.rejected(), 1);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let b = Arc::new(BoundedBuffer::new(1, OverflowPolicy::Block));
        b.push(1);
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.try_pop(), Some(1));
        assert_eq!(h.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(b.pop(), Some(2));
    }

    #[test]
    fn close_unblocks_everyone() {
        let b = Arc::new(BoundedBuffer::<u8>::new(1, OverflowPolicy::Block));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.pop());
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(h.join().unwrap(), None);
        assert_eq!(b.push(9), PushOutcome::Closed);
    }

    #[test]
    fn close_wakes_all_parked_waiters() {
        // Several consumers parked on empty + several producers parked
        // on full must all return promptly after close().
        let consumers_buf = Arc::new(BoundedBuffer::<u8>::new(1, OverflowPolicy::Block));
        let mut waiters = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&consumers_buf);
            waiters.push(std::thread::spawn(move || b.pop()));
        }
        consumers_buf.push(7); // fill, so producers below block
        for _ in 0..2 {
            let b = Arc::clone(&consumers_buf);
            waiters.push(std::thread::spawn(move || {
                b.push(8);
                Some(0u8)
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        consumers_buf.close();
        for w in waiters {
            // A wedged waiter hangs the test; outcomes themselves vary
            // (one consumer may drain the 7).
            let _ = w.join().unwrap();
        }
    }

    #[test]
    fn stat_reads_never_block_while_consumers_are_parked() {
        let b = Arc::new(BoundedBuffer::<u8>::new(4, OverflowPolicy::Reject));
        let mut parked = Vec::new();
        for _ in 0..2 {
            let b2 = Arc::clone(&b);
            parked.push(std::thread::spawn(move || b2.pop()));
        }
        std::thread::sleep(Duration::from_millis(30));
        // With parked consumers (previously: condvar waiters sharing
        // the stat mutex), every stat read must return immediately.
        let t = std::time::Instant::now();
        for _ in 0..10_000 {
            let _ = b.len();
            let _ = b.rejected();
            let _ = b.evicted();
            let _ = b.is_closed();
        }
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "stat reads are plain atomic loads"
        );
        b.close();
        for p in parked {
            assert_eq!(p.join().unwrap(), None);
        }
        assert!(b.park_transitions() >= 2, "consumers really parked");
    }

    #[test]
    fn pop_timeout_expires_empty() {
        let b: BoundedBuffer<u8> = BoundedBuffer::new(2, OverflowPolicy::Reject);
        let start = std::time::Instant::now();
        assert_eq!(b.pop_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn mpmc_no_loss_with_eviction_interleaving() {
        // N producers × M consumers against a DropOldest buffer:
        // accepted == consumed + evicted + left-over, nothing lost or
        // duplicated.
        const PRODUCERS: u64 = 4;
        let per: u64 = if cfg!(miri) { 50 } else { 5_000 };
        let b = Arc::new(BoundedBuffer::<u64>::new(8, OverflowPolicy::DropOldest));
        let consumed = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            let consumed = Arc::clone(&consumed);
            let stop = Arc::clone(&stop);
            consumers.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match b.try_pop() {
                        Some(v) => local.push(v),
                        None if stop.load(Ordering::SeqCst) => break,
                        None => std::thread::yield_now(),
                    }
                }
                consumed.lock().unwrap().extend(local);
            }));
        }
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let outcome = b.push(p * per + i);
                        assert!(matches!(
                            outcome,
                            PushOutcome::Enqueued | PushOutcome::EvictedOldest
                        ));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        while let Some(v) = b.try_pop() {
            got.push(v);
        }
        got.sort_unstable();
        let dupes = got.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(dupes, 0, "no element delivered twice");
        assert_eq!(
            got.len() as u64 + b.evicted(),
            PRODUCERS * per,
            "accepted == consumed + evicted"
        );
    }
}
