//! Bounded message buffers.
//!
//! Every Compadres in-port owns a bounded buffer whose size comes from the
//! CCL `PortAttributes/BufferSize` element. This module implements that
//! buffer with a configurable overflow policy.

use std::collections::VecDeque;
use std::time::Duration;

use rtplatform::sync::{Condvar, Mutex};

/// What to do when a bounded buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until space is available (default).
    #[default]
    Block,
    /// Reject the new element; `push` returns [`PushOutcome::Rejected`].
    Reject,
    /// Drop the oldest queued element to make room.
    DropOldest,
}

/// Result of a non-blocking or policy-driven push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The element was enqueued.
    Enqueued,
    /// The element was enqueued after evicting the oldest one.
    EvictedOldest,
    /// The buffer was full and the element was rejected.
    Rejected,
    /// The buffer is closed.
    Closed,
}

struct Shared<T> {
    queue: VecDeque<T>,
    closed: bool,
    rejected: u64,
    evicted: u64,
}

/// A bounded FIFO buffer with overflow policy and close semantics.
///
/// # Examples
///
/// ```
/// use rtsched::{BoundedBuffer, OverflowPolicy, PushOutcome};
///
/// let buf = BoundedBuffer::new(2, OverflowPolicy::Reject);
/// assert_eq!(buf.push(1), PushOutcome::Enqueued);
/// assert_eq!(buf.push(2), PushOutcome::Enqueued);
/// assert_eq!(buf.push(3), PushOutcome::Rejected);
/// assert_eq!(buf.try_pop(), Some(1));
/// ```
pub struct BoundedBuffer<T> {
    shared: Mutex<Shared<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
}

impl<T> std::fmt::Debug for BoundedBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.shared.lock();
        f.debug_struct("BoundedBuffer")
            .field("capacity", &self.capacity)
            .field("len", &g.queue.len())
            .field("policy", &self.policy)
            .field("closed", &g.closed)
            .finish()
    }
}

impl<T> BoundedBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BoundedBuffer {
            shared: Mutex::new(Shared {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                rejected: 0,
                evicted: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Enqueues `item` according to the overflow policy.
    pub fn push(&self, item: T) -> PushOutcome {
        let mut g = self.shared.lock();
        loop {
            if g.closed {
                return PushOutcome::Closed;
            }
            if g.queue.len() < self.capacity {
                g.queue.push_back(item);
                drop(g);
                self.not_empty.notify_one();
                return PushOutcome::Enqueued;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    self.not_full.wait(&mut g);
                }
                OverflowPolicy::Reject => {
                    g.rejected += 1;
                    return PushOutcome::Rejected;
                }
                OverflowPolicy::DropOldest => {
                    g.queue.pop_front();
                    g.evicted += 1;
                    g.queue.push_back(item);
                    drop(g);
                    self.not_empty.notify_one();
                    return PushOutcome::EvictedOldest;
                }
            }
        }
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.shared.lock();
        let item = g.queue.pop_front();
        if item.is_some() {
            drop(g);
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues, blocking until an element arrives or the buffer closes.
    /// Returns `None` once closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.shared.lock();
        loop {
            if let Some(item) = g.queue.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Dequeues, blocking for at most `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.shared.lock();
        loop {
            if let Some(item) = g.queue.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            if self.not_empty.wait_until(&mut g, deadline).timed_out() {
                return g.queue.pop_front();
            }
        }
    }

    /// Closes the buffer: producers fail, consumers drain then get `None`.
    pub fn close(&self) {
        self.shared.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the buffer is closed.
    pub fn is_closed(&self) -> bool {
        self.shared.lock().closed
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements rejected (Reject policy) so far.
    pub fn rejected(&self) -> u64 {
        self.shared.lock().rejected
    }

    /// Number of elements evicted (DropOldest policy) so far.
    pub fn evicted(&self) -> u64 {
        self.shared.lock().evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedBuffer::<u8>::new(0, OverflowPolicy::Block);
    }

    #[test]
    fn fifo_order() {
        let b = BoundedBuffer::new(4, OverflowPolicy::Reject);
        for i in 0..4 {
            assert_eq!(b.push(i), PushOutcome::Enqueued);
        }
        for i in 0..4 {
            assert_eq!(b.try_pop(), Some(i));
        }
        assert_eq!(b.try_pop(), None);
    }

    #[test]
    fn drop_oldest_policy() {
        let b = BoundedBuffer::new(2, OverflowPolicy::DropOldest);
        b.push(1);
        b.push(2);
        assert_eq!(b.push(3), PushOutcome::EvictedOldest);
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.try_pop(), Some(2));
        assert_eq!(b.try_pop(), Some(3));
    }

    #[test]
    fn reject_policy_counts() {
        let b = BoundedBuffer::new(1, OverflowPolicy::Reject);
        b.push(1);
        assert_eq!(b.push(2), PushOutcome::Rejected);
        assert_eq!(b.push(3), PushOutcome::Rejected);
        assert_eq!(b.rejected(), 2);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let b = Arc::new(BoundedBuffer::new(1, OverflowPolicy::Block));
        b.push(1);
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.try_pop(), Some(1));
        assert_eq!(h.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(b.pop(), Some(2));
    }

    #[test]
    fn close_unblocks_everyone() {
        let b = Arc::new(BoundedBuffer::<u8>::new(1, OverflowPolicy::Block));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.pop());
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(h.join().unwrap(), None);
        assert_eq!(b.push(9), PushOutcome::Closed);
    }
}
