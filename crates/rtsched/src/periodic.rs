//! Periodic releases — the RTSJ `PeriodicParameters` analog.
//!
//! DRE workloads (the paper's motivating domain) are dominated by periodic
//! tasks: sample a sensor every T, refresh an actuator every T. A
//! [`PeriodicTimer`] releases a closure on a drift-free absolute schedule
//! (release *n* happens at `start + n·T`, not `previous + T`) at a fixed
//! priority, and records per-release jitter — the deviation between the
//! ideal and actual release instant.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rtplatform::sync::Mutex;

use crate::priority::Priority;
use crate::thread::with_priority;
use crate::time::{LatencyRecorder, LatencySummary};

struct TimerShared {
    stop: AtomicBool,
    releases: AtomicU64,
    overruns: AtomicU64,
    jitter: Mutex<LatencyRecorder>,
}

/// A drift-free periodic release source.
///
/// # Examples
///
/// ```
/// use rtsched::{PeriodicTimer, Priority};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let n = Arc::new(AtomicU32::new(0));
/// let n2 = Arc::clone(&n);
/// let timer = PeriodicTimer::spawn(
///     "sampler",
///     Duration::from_millis(5),
///     Priority::new(20),
///     move || { n2.fetch_add(1, Ordering::SeqCst); },
/// );
/// std::thread::sleep(Duration::from_millis(60));
/// timer.stop();
/// assert!(n.load(Ordering::SeqCst) >= 5);
/// ```
pub struct PeriodicTimer {
    shared: Arc<TimerShared>,
    handle: Mutex<Option<JoinHandle<()>>>,
    period: Duration,
}

impl std::fmt::Debug for PeriodicTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeriodicTimer")
            .field("period", &self.period)
            .field("releases", &self.releases())
            .finish()
    }
}

impl PeriodicTimer {
    /// Spawns a releaser thread firing `task` every `period` at
    /// `priority`, starting one period from now.
    ///
    /// If a release overruns its period, subsequent releases are *skipped*
    /// (not batched) and counted as overruns — the deadline-miss policy
    /// appropriate for sensor-style tasks where stale work is worthless.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or the thread cannot be spawned.
    pub fn spawn(
        name: impl Into<String>,
        period: Duration,
        priority: Priority,
        mut task: impl FnMut() + Send + 'static,
    ) -> PeriodicTimer {
        assert!(!period.is_zero(), "period must be positive");
        let shared = Arc::new(TimerShared {
            stop: AtomicBool::new(false),
            releases: AtomicU64::new(0),
            overruns: AtomicU64::new(0),
            jitter: Mutex::new(LatencyRecorder::new()),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || {
                with_priority(priority, || {
                    let start = Instant::now();
                    let mut n: u32 = 1;
                    'run: while !shared2.stop.load(Ordering::SeqCst) {
                        let ideal = start + period * n;
                        // Sleep in bounded chunks so stop() is responsive
                        // even for long periods.
                        loop {
                            if shared2.stop.load(Ordering::SeqCst) {
                                break 'run;
                            }
                            let now = Instant::now();
                            if now >= ideal {
                                break;
                            }
                            std::thread::sleep((ideal - now).min(Duration::from_millis(5)));
                        }
                        let release_error = Instant::now().saturating_duration_since(ideal);
                        shared2.jitter.lock().record(release_error);
                        task();
                        shared2.releases.fetch_add(1, Ordering::SeqCst);
                        // Drift-free schedule: compute the next ideal
                        // release strictly after "now", skipping missed
                        // ones.
                        let elapsed = start.elapsed();
                        let next = (elapsed.as_nanos() / period.as_nanos()) as u32 + 1;
                        if next > n + 1 {
                            shared2
                                .overruns
                                .fetch_add(u64::from(next - n - 1), Ordering::SeqCst);
                        }
                        n = next.max(n + 1);
                    }
                });
            })
            .expect("spawn periodic releaser");
        PeriodicTimer {
            shared,
            handle: Mutex::new(Some(handle)),
            period,
        }
    }

    /// The configured period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Number of completed releases.
    pub fn releases(&self) -> u64 {
        self.shared.releases.load(Ordering::SeqCst)
    }

    /// Number of releases skipped because the task overran its period.
    pub fn overruns(&self) -> u64 {
        self.shared.overruns.load(Ordering::SeqCst)
    }

    /// Release-jitter summary (deviation of actual from ideal release
    /// instants), if any releases happened.
    pub fn jitter_summary(&self) -> Option<LatencySummary> {
        let rec = self.shared.jitter.lock();
        if rec.is_empty() {
            None
        } else {
            Some(rec.summary())
        }
    }

    /// Stops the releaser and joins its thread. Statistics remain
    /// queryable afterwards.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for PeriodicTimer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn fires_approximately_on_schedule() {
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        let timer =
            PeriodicTimer::spawn("t", Duration::from_millis(10), Priority::NORM, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        std::thread::sleep(Duration::from_millis(105));
        timer.stop();
        let n = count.load(Ordering::SeqCst);
        assert!((5..=12).contains(&n), "expected ~10 releases, got {n}");
    }

    #[test]
    fn records_release_jitter() {
        let timer = PeriodicTimer::spawn("t", Duration::from_millis(5), Priority::new(30), || {});
        std::thread::sleep(Duration::from_millis(40));
        timer.stop();
        let s = timer.jitter_summary().expect("releases happened");
        assert!(s.count >= 3);
        // Release error is non-negative by construction and small on an
        // idle host.
        assert!(s.max < Duration::from_millis(50));
        // A loaded test host can miss whole 5 ms periods (counted as
        // overruns, not jitter); only a timer that overruns on most
        // releases is broken.
        assert!(timer.overruns() <= 4, "overruns = {}", timer.overruns());
    }

    #[test]
    fn overruns_are_skipped_not_batched() {
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        let timer =
            PeriodicTimer::spawn("t", Duration::from_millis(5), Priority::NORM, move || {
                c.fetch_add(1, Ordering::SeqCst);
                // Overrun two periods on the first release.
                if c.load(Ordering::SeqCst) == 1 {
                    std::thread::sleep(Duration::from_millis(14));
                }
            });
        std::thread::sleep(Duration::from_millis(60));
        timer.stop();
        assert!(
            timer.overruns() >= 1,
            "the long release skipped at least one period"
        );
        // No burst of catch-up releases: total stays near the ideal count.
        assert!(count.load(Ordering::SeqCst) <= 12);
    }

    #[test]
    fn stop_joins_quickly() {
        let timer = PeriodicTimer::spawn("t", Duration::from_secs(5), Priority::NORM, || {
            panic!("must never fire");
        });
        let t = Instant::now();
        timer.stop();
        // The releaser sleeps in bounded chunks, so stopping never waits
        // out the 5 s period.
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = PeriodicTimer::spawn("t", Duration::ZERO, Priority::NORM, || {});
    }
}
