//! # rtsched — real-time scheduling substrate for the Compadres reproduction
//!
//! Provides the threading machinery the Compadres component framework
//! (Hu et al., MIDDLEWARE 2007) attaches to every in-port:
//!
//! * [`Priority`] — message/thread priorities (messages are prioritized at
//!   `send()`, paper Section 2.2);
//! * [`PriorityFifo`] — priority-ordered FIFO dispatch queues;
//! * [`BoundedBuffer`] — the per-port bounded message buffer
//!   (CCL `BufferSize`);
//! * [`ThreadPool`] — dynamic min/max thread pools whose workers inherit
//!   the priority of the message they process;
//! * [`RtThreadBuilder`] / [`current_priority`] — prioritized threads;
//! * [`LatencyRecorder`] / [`SteadyState`] — the paper's measurement
//!   protocol (steady state, 10 000 observations, median + jitter).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod buffer;
mod periodic;
mod pool;
mod priority;
mod queue;
mod thread;
mod time;

pub use buffer::{BoundedBuffer, OverflowPolicy, PushOutcome};
pub use periodic::PeriodicTimer;
pub use pool::{Job, PoolConfig, ThreadPool};
pub use priority::Priority;
pub use queue::{PriorityFifo, PushRefusal};
pub use thread::{current_priority, with_priority, RtThreadBuilder};
pub use time::{LatencyRecorder, LatencySummary, SteadyState};
