//! Message and thread priorities.
//!
//! Compadres assigns a priority to every message at `send()` time; the
//! thread that processes the message inherits that priority (paper
//! Section 2.2). This module provides the priority type shared by queues,
//! pools and threads.

use std::fmt;

/// A real-time priority. Higher values are more urgent, matching RTSJ
/// `PriorityParameters`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Lowest real-time priority.
    pub const MIN: Priority = Priority(1);
    /// Default priority for unmarked messages.
    pub const NORM: Priority = Priority(5);
    /// Highest real-time priority.
    pub const MAX: Priority = Priority(99);

    /// Creates a priority, clamping into `[MIN, MAX]`.
    pub fn new(value: u8) -> Priority {
        Priority(value.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// The raw priority value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// A priority one level higher (saturating at [`Priority::MAX`]).
    pub fn boosted(self) -> Priority {
        Priority::new(self.0.saturating_add(1))
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORM
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u8> for Priority {
    fn from(v: u8) -> Self {
        Priority::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(Priority::new(0), Priority::MIN);
        assert_eq!(Priority::new(255), Priority::MAX);
        assert_eq!(Priority::new(7).value(), 7);
    }

    #[test]
    fn ordering_is_by_urgency() {
        assert!(Priority::new(10) > Priority::new(2));
        assert!(Priority::MIN < Priority::NORM);
        assert!(Priority::NORM < Priority::MAX);
    }

    #[test]
    fn boost_saturates() {
        assert_eq!(Priority::new(5).boosted().value(), 6);
        assert_eq!(Priority::MAX.boosted(), Priority::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Priority::new(42).to_string(), "p42");
    }
}
